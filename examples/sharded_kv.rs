//! The sharded store's async client surface, with no async runtime.
//!
//! `rsb-store` partitions a keyspace over shards of per-key register
//! emulations, executed by a pool of work-stealing driver threads off
//! per-shard ready queues. `StoreClient::read/write` return plain
//! `std::future::Future`s backed by condvar completion slots, so they
//! work from any executor — here the bundled `block_on` / `join_all` —
//! and each future also has a blocking `.wait()`.
//!
//! ```sh
//! cargo run --example sharded_kv
//! ```

use reliable_storage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 shards, every one running the paper's adaptive protocol with
    // f = 1 tolerated crash and a k = 2 code over 64-byte values.
    let reg = RegisterConfig::paper(1, 2, 64)?;
    let store = Store::start(
        // Bound each key's op-record history; quiescent keys keep only
        // their frontier write between bursts. The eviction governor
        // makes the driver pool itself snapshot keys idle past 256
        // shard ticks — bounded memory with zero dedicated threads.
        StoreConfig::uniform(8, ProtocolSpec::Adaptive, reg)
            .with_history(HistoryPolicy::TruncateOnQuiescence)
            .with_eviction(EvictionPolicy::IdleAfter(256)),
    )?;
    let client = store.client();

    // One async write, awaited by the bundled executor.
    block_on(client.write("user:alice", Value::seeded(1, 64)))?;

    // A pipelined batch: 32 writes in flight at once on one thread —
    // the shard drivers work them concurrently.
    let writes: Vec<_> = (0..32u64)
        .map(|i| client.write(&format!("user:{i:03}"), Value::seeded(i + 10, 64)))
        .collect();
    for result in join_all(writes) {
        result?;
    }

    // Mixed read batch (reads of unwritten keys return v₀, all zeroes).
    let reads: Vec<_> = (0..4u64)
        .map(|i| client.read(&format!("user:{i:03}")))
        .collect();
    for (i, result) in join_all(reads).into_iter().enumerate() {
        let v = result?;
        println!("user:{i:03} -> {:?}…", &v.as_bytes()[..4]);
    }

    // The blocking facade is the same futures, parked on their slots.
    assert_eq!(
        client.read_blocking("user:alice")?,
        Value::seeded(1, 64),
        "regular register: the write is visible"
    );

    // Live storage occupancy — the paper's space bounds on a service —
    // plus the scheduler's steal and history-compaction counters.
    let m = store.metrics();
    println!(
        "{} keys over {} shards, {} ops completed, occupancy {} KiB, \
         {} steals, {} records compacted",
        m.keys(),
        m.shards.len(),
        m.totals().completed(),
        m.occupancy_bits() / 8 / 1024,
        m.totals().steals,
        m.totals().truncated_records,
    );

    // Idle keys can also be evicted on demand (the governor would get
    // there on its own once they age past the policy threshold).
    let evicted = store.evict_quiescent();
    let back = client.read_blocking("user:alice")?;
    assert_eq!(back, Value::seeded(1, 64), "rematerialized intact");
    let m = store.metrics();
    println!(
        "evicted {evicted} quiescent keys; user:alice rematerialized on read \
         (hit reads recorded: {}, rematerializing reads: {})",
        m.read_hit_latency().count(),
        m.read_remat_latency().count(),
    );

    store.shutdown();
    Ok(())
}
