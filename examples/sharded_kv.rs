//! The sharded store's async client surface, with no async runtime.
//!
//! `rsb-store` partitions a keyspace over shards, each shard a driver
//! thread over per-key register emulations. `StoreClient::read/write`
//! return plain `std::future::Future`s backed by condvar completion
//! slots, so they work from any executor — here the bundled `block_on` /
//! `join_all` — and each future also has a blocking `.wait()`.
//!
//! ```sh
//! cargo run --example sharded_kv
//! ```

use reliable_storage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 shards, every one running the paper's adaptive protocol with
    // f = 1 tolerated crash and a k = 2 code over 64-byte values.
    let reg = RegisterConfig::paper(1, 2, 64)?;
    let store = Store::start(StoreConfig::uniform(8, ProtocolSpec::Adaptive, reg))?;
    let client = store.client();

    // One async write, awaited by the bundled executor.
    block_on(client.write("user:alice", Value::seeded(1, 64)))?;

    // A pipelined batch: 32 writes in flight at once on one thread —
    // the shard drivers work them concurrently.
    let writes: Vec<_> = (0..32u64)
        .map(|i| client.write(&format!("user:{i:03}"), Value::seeded(i + 10, 64)))
        .collect();
    for result in join_all(writes) {
        result?;
    }

    // Mixed read batch (reads of unwritten keys return v₀, all zeroes).
    let reads: Vec<_> = (0..4u64)
        .map(|i| client.read(&format!("user:{i:03}")))
        .collect();
    for (i, result) in join_all(reads).into_iter().enumerate() {
        let v = result?;
        println!("user:{i:03} -> {:?}…", &v.as_bytes()[..4]);
    }

    // The blocking facade is the same futures, parked on their slots.
    assert_eq!(
        client.read_blocking("user:alice")?,
        Value::seeded(1, 64),
        "regular register: the write is visible"
    );

    // Live storage occupancy — the paper's space bounds on a service.
    let m = store.metrics();
    println!(
        "{} keys over {} shards, {} ops completed, occupancy {} KiB",
        m.keys(),
        m.shards.len(),
        m.totals().completed(),
        m.occupancy_bits() / 8 / 1024,
    );

    store.shutdown();
    Ok(())
}
