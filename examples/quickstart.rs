//! Quickstart: emulate a fault-tolerant register over simulated storage
//! nodes with the paper's adaptive algorithm, write a value, crash `f`
//! nodes, and read it back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use reliable_storage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tolerate f = 2 storage-node crashes using a k = 2 erasure code over
    // 1 KiB values; the paper's canonical deployment has n = 2f + k = 6
    // base objects.
    let config = RegisterConfig::paper(2, 2, 1024)?;
    let register = Adaptive::new(config);
    let mut sim = register.new_sim();
    let writer = register.add_client(&mut sim);
    let reader = register.add_client(&mut sim);

    println!(
        "deployment: n = {}, f = {}, k = {}, D = {} bits",
        config.n,
        config.f,
        config.k,
        config.data_bits()
    );

    // Write.
    let v = Value::seeded(2016, 1024);
    sim.invoke(writer, OpRequest::Write(v.clone()))?;
    assert!(run_to_completion(&mut sim, 1_000_000));
    println!("write completed; storage now: {}", sim.storage_cost());

    // Drain straggler RMWs, then observe the garbage-collected steady
    // state: one D/k piece per node (Lemma 8).
    let mut fair = FairScheduler::new();
    run(&mut sim, &mut fair, 1_000_000);
    println!(
        "resting storage after GC: {} bits (bound {} bits = n·D/k)",
        sim.storage_cost().object_bits,
        experiments::resting_bound_bits(&config),
    );

    // Crash any f nodes.
    sim.crash_object(ObjectId(0));
    sim.crash_object(ObjectId(4));
    println!("crashed bo0 and bo4");

    // Read — still succeeds, and returns the written value.
    sim.invoke(reader, OpRequest::Read)?;
    assert!(run_to_completion(&mut sim, 1_000_000));
    let got = sim.history().last().unwrap().result.clone().unwrap();
    assert_eq!(got, OpResult::Read(v));
    println!(
        "read returned the written value despite {} crashed nodes",
        config.f
    );
    Ok(())
}
