//! Fault-injection walkthrough: storage nodes crash mid-operation, a
//! writer crashes mid-write, and the register keeps serving reads with
//! its advertised consistency.
//!
//! ```sh
//! cargo run --example failure_recovery
//! ```

use reliable_storage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RegisterConfig::paper(2, 3, 512)?; // n = 7, f = 2, k = 3
    let proto = Adaptive::new(cfg);

    // Scenario: 3 writers x 3 writes, 2 readers x 3 reads, with two
    // storage nodes crashing mid-run.
    let mut scenario = Scenario::mixed(3, 2, 3, 42);
    scenario.failures = FailurePlan {
        object_crashes: vec![(50, ObjectId(1)), (200, ObjectId(5))],
        client_crashes: vec![(120, 0)], // writer 0 dies mid-write
    };
    let out = run_scenario(&proto, &scenario);
    println!(
        "scenario finished: {} ops, {} events, {} crashed clients, completed = {}",
        out.sim.history().len(),
        out.steps,
        out.crashed_clients.len(),
        out.completed
    );
    println!(
        "peak storage: {} bits; final: {}",
        out.peak_bits,
        out.sim.storage_cost()
    );

    // Verify the run: strong regularity + FW-termination (crashed writer
    // excused).
    verify::check_outcome(
        &proto,
        &out,
        Guarantee::StronglyRegular,
        LivenessLevel::FwTerminating,
    )?;
    println!("history verified: strongly regular, FW-terminating");

    // The same scenario on the safe register is wait-free but only safe.
    let safe = Safe::new(cfg);
    let out = run_scenario(&safe, &scenario);
    verify::check_outcome(
        &safe,
        &out,
        Guarantee::StronglySafe,
        LivenessLevel::WaitFree,
    )?;
    println!("safe register verified: strongly safe, wait-free");
    Ok(())
}
