//! The Θ(min(f, c)·D) crossover, measured: peak base-object storage as
//! the number of concurrent writers grows, for replication (flat, O(fD)),
//! pure coding (linear, O(cD)), and the paper's adaptive algorithm
//! (tracks the minimum of the two).
//!
//! ```sh
//! cargo run --release --example crossover
//! ```

use reliable_storage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = 4;
    let k = f; // the paper's choice k = f makes the crossover land at c ≈ f
    let value_len = 256; // D = 2048 bits
    let abd = Abd::new(RegisterConfig::new(2 * f + 1, f, 1, value_len)?);
    let coded = Coded::new(RegisterConfig::paper(f, k, value_len)?);
    let adaptive = Adaptive::new(RegisterConfig::paper(f, k, value_len)?);

    let cs: Vec<usize> = vec![1, 2, 3, 4, 6, 8, 12, 16];
    println!(
        "peak base-object storage (bits), f = {f}, k = {k}, D = {} bits",
        8 * value_len
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "c", "abd", "coded", "adaptive"
    );
    for &c in &cs {
        let a = experiments::measure_storage(&abd, c, 2, 100 + c as u64);
        let o = experiments::measure_storage(&coded, c, 2, 200 + c as u64);
        let d = experiments::measure_storage(&adaptive, c, 2, 300 + c as u64);
        println!(
            "{:>4} {:>12} {:>12} {:>12}",
            c, a.peak_object_bits, o.peak_object_bits, d.peak_object_bits
        );
    }
    println!();
    println!("expected shape: 'abd' flat at (2f+1)·D; 'coded' grows ~linearly in c;");
    println!("'adaptive' follows 'coded' while c ≲ k and flattens afterwards.");
    Ok(())
}
