//! A tiny fault-tolerant configuration store built on the public API,
//! exercised by genuinely concurrent threads through the threaded
//! runtime.
//!
//! Each configuration key is one emulated register (the paper's object of
//! study is a single register; a KV store is the natural composition).
//! Several writer threads race on the same key; reader threads observe a
//! regular view throughout.
//!
//! ```sh
//! cargo run --example kv_store
//! ```

use reliable_storage::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A fixed-schema configuration store: one adaptive register per key.
struct ConfigStore {
    registers: HashMap<&'static str, Arc<ThreadedRegister<Adaptive>>>,
    value_len: usize,
}

impl ConfigStore {
    fn open(keys: &[&'static str], f: usize, k: usize, value_len: usize) -> Self {
        let registers = keys
            .iter()
            .map(|&key| {
                let cfg = RegisterConfig::paper(f, k, value_len).expect("valid parameters");
                (key, Arc::new(ThreadedRegister::start(Adaptive::new(cfg))))
            })
            .collect();
        ConfigStore {
            registers,
            value_len,
        }
    }

    fn put(&self, key: &str, payload: &[u8]) {
        let mut bytes = payload.to_vec();
        bytes.resize(self.value_len, 0);
        let reg = &self.registers[key];
        reg.client()
            .write(Value::from_bytes(bytes))
            .expect("store is live");
    }

    fn get(&self, key: &str) -> Vec<u8> {
        let reg = &self.registers[key];
        reg.client()
            .read()
            .expect("store is live")
            .as_bytes()
            .to_vec()
    }
}

fn main() {
    let store = Arc::new(ConfigStore::open(
        &["feature-flags", "rate-limits", "routing"],
        1, // tolerate one storage-node crash per key
        2, // 2-of-4 erasure coding
        64,
    ));

    // Four writer threads race updates to the same keys.
    let handles: Vec<_> = (0..4u8)
        .map(|id| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for round in 0..10u8 {
                    store.put("feature-flags", &[id, round, 0xff]);
                    store.put("rate-limits", &[round, id]);
                }
            })
        })
        .collect();

    // A reader thread polls concurrently.
    let reader_store = Arc::clone(&store);
    let reader = std::thread::spawn(move || {
        let mut observations = 0u32;
        for _ in 0..20 {
            let flags = reader_store.get("feature-flags");
            assert_eq!(flags.len(), 64);
            observations += 1;
        }
        observations
    });

    for h in handles {
        h.join().expect("writer thread");
    }
    let observations = reader.join().expect("reader thread");

    // Inject a fault and keep serving.
    let reg = &store.registers["routing"];
    reg.crash_object(ObjectId(0));
    store.put("routing", b"primary=eu-west");
    let routing = store.get("routing");
    assert!(routing.starts_with(b"primary=eu-west"));

    println!("kv-store demo complete:");
    println!(
        "  4 writers x 10 rounds raced on 2 keys; reader made {observations} consistent reads"
    );
    println!(
        "  'routing' survived a storage-node crash: {:?}…",
        &routing[..15]
    );
    for (key, reg) in &store.registers {
        println!("  {key:>14}: storage {}", reg.storage_cost());
    }
}
