//! Watch the paper's lower-bound adversary `Ad` (Definition 7) drive each
//! protocol into the Lemma-3 dichotomy: either `f + 1` base objects fill
//! up with `ℓ = D/2` bits each, or all `c` concurrent writes are stuck
//! having contributed more than `D − ℓ` bits apiece.
//!
//! ```sh
//! cargo run --example storage_blowup
//! ```

use reliable_storage::prelude::*;

fn demo<P: RegisterProtocol>(proto: &P, c: usize) {
    let cfg = *proto.config();
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
    let report = experiments::adversary_blowup(proto, c, params, 5_000_000);
    println!(
        "  {:>9}  c={c:<2}  outcome: {:<22}  |F|={:<2} |C+|={:<2}  certified {:>7} bits (arm bound {:>6}, Θ-bound {:>6})",
        proto.name(),
        format!("{:?}", report.outcome),
        report.frozen_count,
        report.cplus_count,
        report.certified_bits,
        report
            .winning_side_bound().map_or_else(|| "-".into(), |b| b.to_string()),
        report.guaranteed_bits,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Adversary Ad with ℓ = D/2 (Theorem 1). D = 1024 bits, f = 2.");
    println!();

    println!("Replication (ABD) — always on the frozen-objects arm:");
    let abd = Abd::new(RegisterConfig::new(5, 2, 1, 128)?);
    for c in [1, 2, 4, 8] {
        demo(&abd, c);
    }
    println!();

    println!("Pure erasure coding (k = 8) — pays per concurrent write:");
    let coded = Coded::new(RegisterConfig::paper(2, 8, 128)?);
    for c in [1, 2, 4, 8] {
        demo(&coded, c);
    }
    println!();

    println!("Adaptive (paper, k = 4) — whichever arm is cheaper:");
    let adaptive = Adaptive::new(RegisterConfig::paper(2, 4, 128)?);
    for c in [1, 2, 4, 8] {
        demo(&adaptive, c);
    }
    println!();

    println!("Safe register (Appendix E) — escapes the dichotomy entirely:");
    let safe = Safe::new(RegisterConfig::paper(2, 4, 128)?);
    let params = AdversaryParams {
        ell_bits: 600, // one D/4-piece (256 bits) can never freeze an object
        data_bits: 1024,
        f: 2,
        concurrency: 4,
    };
    let report = experiments::adversary_blowup(&safe, 4, params, 5_000_000);
    println!(
        "  {:>9}  c=4   outcome: {:<22}  storage stays at n·D/k = {} bits",
        safe.name(),
        format!("{:?}", report.outcome),
        report.storage_at_stop.object_bits,
    );
    Ok(())
}
