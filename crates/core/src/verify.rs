//! Glue between scenario runs and the consistency checkers: assert that a
//! finished run upholds the protocol's advertised guarantee.

use rsb_consistency::{
    check_liveness, check_strong_regularity, check_strong_safety, check_weak_regularity, History,
    LivenessLevel,
};
use rsb_registers::RegisterProtocol;
use rsb_workloads::ScenarioOutcome;

/// The safety level a protocol advertises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guarantee {
    /// MWRegWeak — what the lower bound assumes.
    WeaklyRegular,
    /// MWRegWO — what the adaptive, ABD, and pure-coded protocols provide.
    StronglyRegular,
    /// Strong safety — what the Appendix-E register provides.
    StronglySafe,
}

/// A verification failure, with the failing check named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Checks a scenario outcome against a guarantee and the liveness level.
///
/// # Errors
///
/// Returns a [`VerifyError`] naming the violated condition.
pub fn check_outcome<P: RegisterProtocol>(
    proto: &P,
    outcome: &ScenarioOutcome<P>,
    guarantee: Guarantee,
    liveness: LivenessLevel,
) -> Result<(), VerifyError> {
    let history = History::from_fpsm(proto.config().initial_value(), outcome.sim.history())
        .map_err(|e| VerifyError(format!("malformed history: {e}")))?;
    match guarantee {
        Guarantee::WeaklyRegular => check_weak_regularity(&history)
            .map_err(|e| VerifyError(format!("weak regularity: {e}")))?,
        Guarantee::StronglyRegular => check_strong_regularity(&history)
            .map_err(|e| VerifyError(format!("strong regularity: {e}")))?,
        Guarantee::StronglySafe => {
            check_strong_safety(&history)
                .map_err(|e| VerifyError(format!("strong safety: {e}")))?;
        }
    }
    check_liveness(&history, liveness, &outcome.crashed_clients)
        .map_err(|e| VerifyError(format!("liveness: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_registers::{Adaptive, RegisterConfig, Safe};
    use rsb_workloads::{run_scenario, Scenario};

    #[test]
    fn adaptive_scenario_verifies_strong_regularity() {
        let proto = Adaptive::new(RegisterConfig::paper(1, 2, 16).unwrap());
        let out = run_scenario(&proto, &Scenario::mixed(2, 2, 2, 3));
        assert!(out.completed);
        check_outcome(
            &proto,
            &out,
            Guarantee::StronglyRegular,
            LivenessLevel::FwTerminating,
        )
        .unwrap();
    }

    #[test]
    fn safe_scenario_verifies_safety() {
        let proto = Safe::new(RegisterConfig::paper(1, 2, 16).unwrap());
        let out = run_scenario(&proto, &Scenario::mixed(2, 2, 2, 8));
        assert!(out.completed);
        check_outcome(
            &proto,
            &out,
            Guarantee::StronglySafe,
            LivenessLevel::WaitFree,
        )
        .unwrap();
    }
}
