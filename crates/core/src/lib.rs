//! **reliable-storage** — a reproduction of *"Space Bounds for Reliable
//! Storage: Fundamental Limits of Coding"* (Spiegelman, Cassuto, Chockler,
//! Keidar; PODC 2016).
//!
//! The paper proves that any lock-free emulation of a regular MWMR
//! register over `n > 2f` crash-prone base objects using symmetric
//! black-box coding costs `Ω(min(f, c)·D)` bits of storage, and matches
//! the bound with an adaptive algorithm combining erasure coding and
//! replication. This workspace implements, from scratch:
//!
//! * [`coding`] — GF(2⁸), Reed–Solomon / replication / rateless codes,
//!   and the paper's encoder/decoder oracles;
//! * [`fpsm`] — the asynchronous fault-prone shared-memory model with the
//!   paper's storage-cost accounting;
//! * [`registers`] — four protocols: the paper's adaptive algorithm, its
//!   Appendix-E safe register, ABD replication, and a pure-coded
//!   `O(cD)` baseline;
//! * [`lowerbound`] — the adversary `Ad`, source-function tracking,
//!   executable pigeonhole collisions, and black-box substitution;
//! * [`consistency`] — regularity/safety/liveness checkers;
//! * [`workloads`] — seeded scenarios (single- and multi-key) and
//!   failure injection;
//! * [`store`] — the sharded multi-register storage service with a
//!   transport-generic async client surface (in-process loopback or a
//!   real TCP wire), live storage metrics, and an open-/closed-loop
//!   load harness;
//! * [`experiments`] — the drivers regenerating every quantitative claim
//!   (see `EXPERIMENTS.md` at the repository root);
//! * [`verify`] — glue tying scenarios to the checkers.
//!
//! # Quickstart
//!
//! ```
//! use reliable_storage::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Tolerate f = 2 base-object crashes with a k = 2 code over 1 KiB
//! // values; n = 2f + k = 6 base objects.
//! let proto = Adaptive::new(RegisterConfig::paper(2, 2, 1024)?);
//! let mut sim = proto.new_sim();
//! let writer = proto.add_client(&mut sim);
//! let reader = proto.add_client(&mut sim);
//!
//! let v = Value::seeded(7, 1024);
//! sim.invoke(writer, OpRequest::Write(v.clone()))?;
//! assert!(run_to_completion(&mut sim, 100_000));
//! sim.invoke(reader, OpRequest::Read)?;
//! assert!(run_to_completion(&mut sim, 100_000));
//! assert_eq!(sim.history().last().unwrap().result, Some(OpResult::Read(v)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rsb_coding as coding;
pub use rsb_consistency as consistency;
pub use rsb_fpsm as fpsm;
pub use rsb_lowerbound as lowerbound;
pub use rsb_registers as registers;
pub use rsb_store as store;
pub use rsb_workloads as workloads;

pub mod experiments;
pub mod verify;

/// The common imports for applications and experiments.
pub mod prelude {
    pub use rsb_coding::{Block, Code, Rateless, ReedSolomon, Replication, Value};
    pub use rsb_consistency::{
        check_atomicity, check_liveness, check_strong_regularity, check_strong_safety,
        check_weak_regularity, History, LivenessLevel,
    };
    pub use rsb_fpsm::{
        run, run_to_completion, run_until, ClientId, FairScheduler, ObjectId, OpRequest, OpResult,
        RandomScheduler, Simulation, StorageCost,
    };
    pub use rsb_lowerbound::{run_blowup, AdOutcome, AdversaryAd, AdversaryParams, Snapshot};
    pub use rsb_registers::{
        threaded::ThreadedRegister, Abd, Adaptive, Coded, RegisterConfig, RegisterProtocol, Safe,
    };
    pub use rsb_store::{
        block_on, frame, join_all, EvictionPolicy, FlightEvent, FlightEventKind, FlightRecorder,
        HistoryPolicy, KeyMeta, LatencyHistogram, ListenSpec, Loopback, OpTicket, ProtocolSpec,
        Store, StoreClient, StoreConfig, StoreError, StoreMetrics, StoreServer, TcpTransport,
        Transport,
    };
    pub use rsb_workloads::{
        key_rank, run_scenario, FailurePlan, KeyDist, KeyedAction, KeyedScenario, Scenario,
        ScenarioOutcome, ValueSizeDist, ValueStream,
    };

    pub use crate::experiments;
    pub use crate::verify::{self, Guarantee};
}
