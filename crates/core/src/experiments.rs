//! Experiment drivers regenerating the paper's quantitative claims.
//!
//! Each function here backs one experiment id in `DESIGN.md` §4 /
//! `EXPERIMENTS.md`; the `rsb-bench` binaries print the resulting rows.

use rsb_coding::Value;
use rsb_fpsm::{run, FairScheduler, OpRequest, StorageCost};
use rsb_lowerbound::{run_blowup, AdversaryParams, BlowupReport};
use rsb_registers::{RegisterConfig, RegisterProtocol};
use rsb_workloads::{run_scenario, Scenario};

/// One row of a storage-vs-concurrency sweep (experiments E2/E4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageRow {
    /// The concurrency level `c` (concurrent writers).
    pub c: usize,
    /// Peak bits stored in base objects over the run — the quantity
    /// Theorem 2 bounds.
    pub peak_object_bits: u64,
    /// Peak total storage (Definition 2: objects + clients + channels).
    pub peak_total_bits: u64,
    /// Steady-state object bits after quiescence and drain.
    pub resting_object_bits: u64,
    /// Scheduler events executed.
    pub steps: u64,
}

/// Runs a write-burst at concurrency `c` and measures storage peaks plus
/// the post-quiescence resting state.
pub fn measure_storage<P: RegisterProtocol>(
    proto: &P,
    c: usize,
    writes_each: usize,
    seed: u64,
) -> StorageRow {
    let scenario = Scenario::write_burst(c, writes_each, seed);
    let mut out = run_scenario(proto, &scenario);
    // Drain stragglers so the resting state is the true steady state.
    let mut fair = FairScheduler::new();
    run(&mut out.sim, &mut fair, 10_000_000);
    StorageRow {
        c,
        peak_object_bits: out.peak_cost.object_bits,
        peak_total_bits: out.peak_bits,
        resting_object_bits: out.sim.storage_cost().object_bits,
        steps: out.steps,
    }
}

/// Sweeps the concurrency level (experiment E4's x-axis).
pub fn storage_sweep<P: RegisterProtocol>(
    proto: &P,
    concurrencies: &[usize],
    writes_each: usize,
    seed: u64,
) -> Vec<StorageRow> {
    concurrencies
        .iter()
        .map(|&c| measure_storage(proto, c, writes_each, seed ^ (c as u64)))
        .collect()
}

/// The Theorem-2 storage formula for the adaptive algorithm's base-object
/// storage: `(c+1)·n·D/k` when `c < k − 1` (Lemma 6: each object holds at
/// most `c+1` pieces and `Vf` stays empty), else `2·n·D` (each object
/// holds at most `k` pieces in `Vp` plus `k` in `Vf` — the tight form of
/// Lemma 7's `(2f+k)²·D`). With `k = Θ(f)` both sides are
/// `O(min(f, c)·D)`.
pub fn theorem2_bound_bits(cfg: &RegisterConfig, c: usize) -> u64 {
    let n = cfg.n as u64;
    let piece_bits = 8 * (cfg.value_len.div_ceil(cfg.k) as u64);
    if c + 1 < cfg.k {
        (c as u64 + 1) * n * piece_bits
    } else {
        n * 2 * cfg.k as u64 * piece_bits
    }
}

/// The Lemma-8 resting storage: `(2f+k)·D/k` (one piece per object).
pub fn resting_bound_bits(cfg: &RegisterConfig) -> u64 {
    let piece_bits = 8 * (cfg.value_len.div_ceil(cfg.k) as u64);
    cfg.n as u64 * piece_bits
}

/// Invokes `c` concurrent writes on a fresh simulation and unleashes the
/// adversary `Ad` (experiment E1).
pub fn adversary_blowup<P: RegisterProtocol>(
    proto: &P,
    c: usize,
    params: AdversaryParams,
    max_steps: u64,
) -> BlowupReport {
    let mut sim = proto.new_sim();
    let len = proto.config().value_len;
    for i in 0..c {
        let w = proto.add_client(&mut sim);
        sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, len)))
            .expect("fresh clients accept writes");
    }
    run_blowup(&mut sim, params, max_steps)
}

/// One row of the garbage-collection experiment (E3): storage before and
/// after quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcRow {
    /// Concurrency during the burst.
    pub c: usize,
    /// Peak object bits during the burst.
    pub peak_object_bits: u64,
    /// Object bits after all writes completed and all RMWs landed.
    pub resting_object_bits: u64,
    /// The Lemma-8 bound `(2f+k)·D/k`.
    pub bound_bits: u64,
}

/// Runs the E3 garbage-collection experiment.
pub fn gc_experiment<P: RegisterProtocol>(proto: &P, c: usize, seed: u64) -> GcRow {
    let row = measure_storage(proto, c, 2, seed);
    GcRow {
        c,
        peak_object_bits: row.peak_object_bits,
        resting_object_bits: row.resting_object_bits,
        bound_bits: resting_bound_bits(proto.config()),
    }
}

/// Storage snapshot formatted for tables.
pub fn fmt_cost(cost: &StorageCost) -> String {
    format!(
        "{} (obj {}, cli {}, ch {})",
        cost.total(),
        cost.object_bits,
        cost.client_bits,
        cost.inflight_param_bits + cost.inflight_resp_bits
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_registers::{Abd, Adaptive, RegisterConfig};

    #[test]
    fn adaptive_peak_respects_theorem2() {
        for (f, k) in [(2usize, 2usize), (1, 4)] {
            let cfg = RegisterConfig::paper(f, k, 64).unwrap();
            let proto = Adaptive::new(cfg);
            for c in [1usize, 2, 4] {
                let row = measure_storage(&proto, c, 2, 17);
                let bound = theorem2_bound_bits(&cfg, c);
                assert!(
                    row.peak_object_bits <= bound,
                    "f={f} k={k} c={c}: peak {} > bound {bound}",
                    row.peak_object_bits
                );
                // Lemma 8: storage shrinks to one piece per object. Up to
                // f straggler objects may have had the write's own GC
                // overtake its update (the update is then ignored as
                // stale), leaving them empty — still within the bound.
                let piece_bits = 8 * (cfg.value_len.div_ceil(cfg.k) as u64);
                let bound = resting_bound_bits(&cfg);
                assert!(row.resting_object_bits <= bound);
                assert!(
                    row.resting_object_bits >= bound - cfg.f as u64 * piece_bits,
                    "resting {} below the (n−f)-object floor",
                    row.resting_object_bits
                );
            }
        }
    }

    #[test]
    fn abd_storage_is_flat_in_c() {
        let cfg = RegisterConfig::new(5, 2, 1, 64).unwrap();
        let proto = Abd::new(cfg);
        let rows = storage_sweep(&proto, &[1, 3, 5], 2, 3);
        let first = rows[0].peak_object_bits;
        assert!(rows.iter().all(|r| r.peak_object_bits == first));
        assert_eq!(first, 5 * 512); // n replicas of D bits
    }

    #[test]
    fn bounds_formulae() {
        let cfg = RegisterConfig::paper(1, 4, 64).unwrap(); // n=6, D=512
                                                            // piece = 128 bits; coded side (c=1 < k−1): 2·6·128 = 1536.
        assert_eq!(theorem2_bound_bits(&cfg, 1), 1536);
        // Saturated side (c ≥ k−1): 2·n·D = 6144.
        assert_eq!(theorem2_bound_bits(&cfg, 5), 6144);
        assert_eq!(resting_bound_bits(&cfg), 6 * 128);
    }
}
