//! Integration tests of the Lemma-3 dichotomy: under the adversary `Ad`
//! every protocol ends with `|F| > f` (replication-priced) or `|C⁺| = c`
//! (concurrency-priced), and the measured storage certifies Theorem 1.

use rsb_coding::Value;
use rsb_fpsm::OpRequest;
use rsb_lowerbound::{run_blowup, AdOutcome, AdversaryParams, Snapshot};
use rsb_registers::{Abd, Adaptive, Coded, RegisterConfig, RegisterProtocol, Safe};

const MAX_STEPS: u64 = 2_000_000;

fn invoke_writers<P: RegisterProtocol>(
    proto: &P,
    c: usize,
) -> rsb_fpsm::Simulation<P::Object, P::Client> {
    let mut sim = proto.new_sim();
    let len = proto.config().value_len;
    for i in 0..c {
        let w = proto.add_client(&mut sim);
        sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, len)))
            .expect("fresh clients accept writes");
    }
    sim
}

#[test]
fn abd_exceeds_f_frozen_objects_when_c_is_large() {
    // Replication: every applied store freezes its object (D ≥ ℓ).
    let cfg = RegisterConfig::new(5, 2, 1, 64).unwrap(); // D = 512
    let proto = Abd::new(cfg);
    let c = 5; // > f + 1 writers available to freeze f + 1 objects
    let mut sim = invoke_writers(&proto, c);
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
    let report = run_blowup(&mut sim, params, MAX_STEPS);
    assert_eq!(report.outcome, AdOutcome::FrozenExceedsF, "{report:?}");
    assert!(report.certifies_bound(), "{report:?}");
    // (f+1) full replicas stored: at least (f+1)·D bits on frozen objects.
    assert!(report.certified_bits >= 3 * 512);
}

#[test]
fn abd_is_frozen_from_the_start() {
    // Corollary 2's flip side: replication stores D bits (a full replica)
    // in every object from the initial configuration, so |F| > f holds at
    // time 0 for any ℓ ≤ D — replication always pays ≥ (f+1)·ℓ, which is
    // why its cost never grows with concurrency.
    let cfg = RegisterConfig::new(7, 3, 1, 64).unwrap();
    let proto = Abd::new(cfg);
    let c = 2;
    let mut sim = invoke_writers(&proto, c);
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
    let report = run_blowup(&mut sim, params, MAX_STEPS);
    assert_eq!(report.outcome, AdOutcome::FrozenExceedsF, "{report:?}");
    assert_eq!(report.steps, 0, "the initial state already certifies");
    assert!(report.certified_bits >= (cfg.f as u64 + 1) * params.ell_bits);
}

#[test]
fn coded_pays_concurrency_with_fine_pieces() {
    // k = 8 pieces of D/8 bits: objects freeze slowly, writers saturate
    // C⁺ first when c is small relative to f.
    let cfg = RegisterConfig::paper(4, 8, 128).unwrap(); // n = 16, D = 1024
    let proto = Coded::new(cfg);
    let c = 3;
    let mut sim = invoke_writers(&proto, c);
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
    let report = run_blowup(&mut sim, params, MAX_STEPS);
    assert_eq!(
        report.outcome,
        AdOutcome::ConcurrencySaturated,
        "{report:?}"
    );
    assert!(report.certifies_bound(), "{report:?}");
    // Each of the c writers contributed > D − ℓ = D/2 bits.
    assert!(report.certified_bits >= 3 * 513);
}

#[test]
fn adaptive_hits_one_arm_and_certifies() {
    for (f, k, c) in [(2usize, 2usize, 2usize), (2, 2, 6), (3, 4, 3)] {
        let cfg = RegisterConfig::paper(f, k, 96).unwrap();
        let proto = Adaptive::new(cfg);
        let mut sim = invoke_writers(&proto, c);
        let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
        let report = run_blowup(&mut sim, params, MAX_STEPS);
        assert!(
            matches!(
                report.outcome,
                AdOutcome::FrozenExceedsF | AdOutcome::ConcurrencySaturated
            ),
            "f={f} k={k} c={c}: {report:?}"
        );
        assert!(report.certifies_bound(), "f={f} k={k} c={c}: {report:?}");
    }
}

#[test]
fn safe_register_escapes_the_dichotomy() {
    // Appendix E: the safe register is NOT a regular register, and indeed
    // the adversary cannot drive it to either arm — writes complete (the
    // run stalls with all writes returned) while object storage stays at
    // exactly n·D/k bits. This is Corollary 7 made visible.
    let cfg = RegisterConfig::paper(2, 2, 64).unwrap(); // n = 6, D = 512
    let proto = Safe::new(cfg);
    let c = 4;
    let mut sim = invoke_writers(&proto, c);
    // Use ℓ larger than one piece so single pieces never freeze objects.
    let params = AdversaryParams {
        ell_bits: 300, // piece = 256 bits < ℓ
        data_bits: 512,
        f: cfg.f,
        concurrency: c,
    };
    let report = run_blowup(&mut sim, params, MAX_STEPS);
    // The adversary gives up: neither |F| > f nor |C⁺| = c is reachable
    // (timestamp overwrites keep bouncing writers back into C⁻, and one
    // piece per object can never reach ℓ).
    assert_eq!(report.outcome, AdOutcome::Stalled, "{report:?}");
    assert!(!report.certifies_bound());
    // Object storage stayed at the constant n·D/k throughout.
    assert_eq!(sim.storage_cost().object_bits, 6 * 256);
    assert_eq!(sim.peak_storage_cost().object_bits, 6 * 256);
}

#[test]
fn snapshot_quantities_are_consistent() {
    let cfg = RegisterConfig::paper(2, 4, 64).unwrap();
    let proto = Coded::new(cfg);
    let c = 3;
    let mut sim = invoke_writers(&proto, c);
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
    // Take snapshots along the run and check invariants.
    let mut ad = rsb_lowerbound::AdversaryAd::new(params);
    for _ in 0..200 {
        let snap = Snapshot::capture(&sim, &params);
        // C⁺ and C⁻ partition the outstanding writes.
        let outstanding = rsb_lowerbound::outstanding_writes(&sim);
        let union: std::collections::HashSet<_> = snap.cplus.union(&snap.cminus).copied().collect();
        assert_eq!(union, outstanding.into_iter().collect());
        // Frozen objects hold at least ℓ bits.
        for o in &snap.frozen {
            assert!(snap.object_bits[o] >= params.ell_bits);
        }
        match rsb_fpsm::Scheduler::<_, _>::next_event(&mut ad, &sim) {
            Some(ev) => sim.step(ev).unwrap(),
            None => break,
        }
    }
}

#[test]
fn frozen_objects_stay_frozen_under_ad() {
    // Observation 2: under Ad the frozen set only grows.
    let cfg = RegisterConfig::new(5, 2, 1, 32).unwrap();
    let proto = Abd::new(cfg);
    let mut sim = invoke_writers(&proto, 4);
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, 4);
    let mut ad = rsb_lowerbound::AdversaryAd::new(params);
    let mut prev: std::collections::BTreeSet<_> = std::collections::BTreeSet::default();
    for _ in 0..500 {
        let snap = Snapshot::capture(&sim, &params);
        assert!(
            prev.is_subset(&snap.frozen),
            "a frozen object thawed: {prev:?} → {:?}",
            snap.frozen
        );
        prev = snap.frozen;
        match rsb_fpsm::Scheduler::<_, _>::next_event(&mut ad, &sim) {
            Some(ev) => sim.step(ev).unwrap(),
            None => break,
        }
    }
}
