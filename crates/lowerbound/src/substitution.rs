//! The black-box substitution experiment (the paper's Definition 5 and
//! Figure 2): replacing the value of one write yields a run with the same
//! trace and the same storage *structure* — only the contents of blocks
//! sourced to that write change.
//!
//! All four protocols in this repository are black-box coding algorithms:
//! their control flow depends on timestamps and counts, never on block
//! contents. This module verifies that property empirically by running
//! the same seeded schedule against two value assignments and comparing
//! structural traces (per-component block instances — source, index, size
//! — at every step) and operation histories.

use rsb_coding::Value;
use rsb_fpsm::{
    ClientId, ClientLogic, ObjectState, OpRequest, RandomScheduler, Scheduler, Simulation,
};
use rsb_registers::RegisterProtocol;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The outcome of a substitution experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionReport {
    /// Steps executed in each run (always equal if `structural_match`).
    pub steps: u64,
    /// Whether the two runs had identical structural traces: the same
    /// events, and at every step the same per-component block instances
    /// (source op, block index, bit size) and metadata-level history.
    pub structural_match: bool,
    /// Whether the two runs produced identical invocation/return traces
    /// (operation ids, clients, kinds, times).
    pub trace_match: bool,
    /// Structure hash of the original run.
    pub original_hash: u64,
    /// Structure hash of the substituted run.
    pub substituted_hash: u64,
}

fn structure_hash<S, L>(sim: &Simulation<S, L>, hasher: &mut DefaultHasher)
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    for (component, instances) in sim.component_blocks() {
        format!("{component:?}").hash(hasher);
        for inst in instances {
            inst.source_op.0.hash(hasher);
            inst.index.hash(hasher);
            inst.bits.hash(hasher);
        }
    }
}

fn trace_fingerprint<S, L>(sim: &Simulation<S, L>) -> Vec<(u64, usize, bool, u64, Option<u64>)>
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    sim.history()
        .iter()
        .map(|r| {
            (
                r.op.0,
                r.client.0,
                r.request.is_write(),
                r.invoked_at,
                r.returned_at,
            )
        })
        .collect()
}

/// Runs the substitution experiment for a protocol.
///
/// `values` are the per-writer values of run `r`; run `r_v` replaces
/// `values[replace]` with `new_value`. Both runs invoke one write per
/// writer concurrently and execute the same seeded schedule for up to
/// `max_steps` events (the schedule is replayed move-for-move: black-box
/// algorithms make identical control decisions, so every event enabled in
/// one run is enabled in the other — asserted here).
///
/// # Panics
///
/// Panics if `replace` is out of range or values have mismatched lengths.
pub fn substitution_experiment<P: RegisterProtocol>(
    proto: &P,
    values: &[Value],
    replace: usize,
    new_value: Value,
    seed: u64,
    max_steps: u64,
) -> SubstitutionReport {
    assert!(replace < values.len(), "replace index out of range");
    let mut substituted: Vec<Value> = values.to_vec();
    substituted[replace] = new_value;

    let mut sim_a = proto.new_sim();
    let mut sim_b = proto.new_sim();
    let clients_a: Vec<ClientId> = values
        .iter()
        .map(|_| proto.add_client(&mut sim_a))
        .collect();
    let clients_b: Vec<ClientId> = values
        .iter()
        .map(|_| proto.add_client(&mut sim_b))
        .collect();
    for (i, (&ca, &cb)) in clients_a.iter().zip(&clients_b).enumerate() {
        sim_a
            .invoke(ca, OpRequest::Write(values[i].clone()))
            .expect("fresh client accepts an invocation");
        sim_b
            .invoke(cb, OpRequest::Write(substituted[i].clone()))
            .expect("fresh client accepts an invocation");
    }

    let mut sched = RandomScheduler::new(seed);
    let mut hash_a = DefaultHasher::new();
    let mut hash_b = DefaultHasher::new();
    let mut steps = 0u64;
    let mut structural_match = true;
    while steps < max_steps {
        // The schedule is chosen against run A and replayed on run B.
        let Some(ev) = Scheduler::<P::Object, P::Client>::next_event(&mut sched, &sim_a) else {
            break;
        };
        sim_a.step(ev).expect("enabled in run A");
        if sim_b.step(ev).is_err() {
            // The substituted run diverged — a black-box violation.
            structural_match = false;
            break;
        }
        structure_hash(&sim_a, &mut hash_a);
        structure_hash(&sim_b, &mut hash_b);
        steps += 1;
    }
    let (oh, sh) = (hash_a.finish(), hash_b.finish());
    let trace_match = trace_fingerprint(&sim_a) == trace_fingerprint(&sim_b);
    SubstitutionReport {
        steps,
        structural_match: structural_match && oh == sh,
        trace_match,
        original_hash: oh,
        substituted_hash: sh,
    }
}

/// A deliberately non-black-box scheduler stand-in used by tests to show
/// the experiment *can* detect divergence: it steps run B only when a
/// content-dependent predicate holds. Exposed for the bench harness's
/// negative control.
#[derive(Debug, Clone, Copy)]
pub struct NegativeControl;

impl NegativeControl {
    /// Compares two runs driven with *different* value counts — the
    /// histories differ, so the experiment must report a mismatch.
    pub fn run<P: RegisterProtocol>(proto: &P, seed: u64) -> SubstitutionReport {
        let len = proto.config().value_len;
        let values = vec![Value::seeded(1, len), Value::seeded(2, len)];
        // Deliberately compare against a run with a different schedule.
        let report_ab = substitution_experiment(proto, &values, 0, Value::seeded(3, len), seed, 5);
        let report_ab2 =
            substitution_experiment(proto, &values, 0, Value::seeded(3, len), seed + 1, 500);
        SubstitutionReport {
            steps: report_ab.steps,
            structural_match: report_ab.original_hash == report_ab2.original_hash,
            trace_match: false,
            original_hash: report_ab.original_hash,
            substituted_hash: report_ab2.original_hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_registers::{Abd, Adaptive, Coded, RegisterConfig, Safe};

    #[test]
    fn adaptive_is_black_box() {
        let proto = Adaptive::new(RegisterConfig::paper(1, 2, 24).unwrap());
        let values: Vec<Value> = (1..=3).map(|s| Value::seeded(s, 24)).collect();
        for seed in 0..3 {
            let report =
                substitution_experiment(&proto, &values, 1, Value::seeded(99, 24), seed, 50_000);
            assert!(report.structural_match, "seed {seed}: {report:?}");
            assert!(report.trace_match, "seed {seed}");
        }
    }

    #[test]
    fn abd_safe_coded_are_black_box() {
        let cfg = RegisterConfig::paper(1, 2, 16).unwrap();
        let values: Vec<Value> = (1..=2).map(|s| Value::seeded(s, 16)).collect();
        let r =
            substitution_experiment(&Abd::new(cfg), &values, 0, Value::seeded(50, 16), 7, 20_000);
        assert!(r.structural_match && r.trace_match, "abd: {r:?}");
        let r = substitution_experiment(
            &Safe::new(cfg),
            &values,
            0,
            Value::seeded(50, 16),
            7,
            20_000,
        );
        assert!(r.structural_match && r.trace_match, "safe: {r:?}");
        let r = substitution_experiment(
            &Coded::new(cfg),
            &values,
            1,
            Value::seeded(50, 16),
            7,
            20_000,
        );
        assert!(r.structural_match && r.trace_match, "coded: {r:?}");
    }

    #[test]
    fn negative_control_differs() {
        let proto = Abd::new(RegisterConfig::paper(1, 1, 8).unwrap());
        let r = NegativeControl::run(&proto, 3);
        assert!(!r.structural_match || !r.trace_match);
    }

    #[test]
    fn substituting_with_same_value_is_identity() {
        let proto = Adaptive::new(RegisterConfig::paper(1, 2, 16).unwrap());
        let values = vec![Value::seeded(1, 16)];
        let r = substitution_experiment(&proto, &values, 0, Value::seeded(1, 16), 0, 10_000);
        assert!(r.structural_match && r.trace_match);
        assert_eq!(r.original_hash, r.substituted_hash);
    }
}
