//! Executable lower-bound machinery for *"Space Bounds for Reliable
//! Storage: Fundamental Limits of Coding"* (PODC 2016).
//!
//! The paper's Theorem 1 — storage cost `Ω(min(f, c)·D)` for lock-free
//! regular registers with symmetric black-box coding — is proved through
//! a chain of constructions, each of which is implemented and measurable
//! here:
//!
//! * [`Snapshot`] — the quantities `‖S(t, w)‖`, `F_ℓ(t)`, `C±ℓ(t)`
//!   (Definitions 6 and the sets of Section 4), computed live from a
//!   simulation via the block source tags;
//! * [`AdversaryAd`] — the scheduling adversary of Definition 7, a
//!   drop-in [`rsb_fpsm::Scheduler`]; [`run_blowup`] drives any protocol
//!   to the Lemma-3 dichotomy (`|C⁺| = c` or `|F| > f`) and reports the
//!   measured storage against `min((f+1)ℓ, c(D−ℓ+1))`;
//! * [`rs_colliding_values`] / [`brute_force_collision`] — Claim 1's
//!   pigeonhole made constructive (analytically for linear codes,
//!   by enumeration for arbitrary black-box codes);
//! * [`substitution_experiment`] — Definition 5 / Figure 2: replacing a
//!   written value preserves the entire structural run.
//!
//! # Example: drive ABD into the frozen-objects arm of the dichotomy
//!
//! ```
//! use rsb_lowerbound::{run_blowup, AdOutcome, AdversaryParams};
//! use rsb_registers::{Abd, RegisterConfig, RegisterProtocol};
//! use rsb_fpsm::OpRequest;
//! use rsb_coding::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = RegisterConfig::new(5, 2, 1, 64)?; // f = 2, D = 512 bits
//! let proto = Abd::new(cfg);
//! let mut sim = proto.new_sim();
//! let c = 4; // concurrency level
//! for i in 0..c {
//!     let w = proto.add_client(&mut sim);
//!     sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, 64)))?;
//! }
//! let params = AdversaryParams::theorem1(512, 2, c);
//! let report = run_blowup(&mut sim, params, 1_000_000);
//! // Replication fills f + 1 = 3 objects with ≥ ℓ = D/2 bits each.
//! assert_eq!(report.outcome, AdOutcome::FrozenExceedsF);
//! assert!(report.certifies_bound());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod collisions;
mod substitution;
mod tracking;

pub use adversary::{run_blowup, AdOutcome, AdversaryAd, BlowupReport};
pub use collisions::{
    brute_force_collision, build_u_sets, rs_colliding_values, verify_collision, Collision,
    CollisionError,
};
pub use substitution::{substitution_experiment, NegativeControl, SubstitutionReport};
pub use tracking::{live_sources, outstanding_writes, AdversaryParams, Snapshot};
