//! The executable pigeonhole argument (the paper's Claim 1): whenever the
//! storage holds fewer than `D` bits of blocks of a write, two distinct
//! values collide on exactly those blocks — so the storage cannot tell
//! which was written.

use rsb_coding::{Code, CodingError, ReedSolomon, Value};

/// A witness that two distinct values are `I`-colliding: `E(u, i) =
/// E(u', i)` for every `i ∈ I`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collision {
    /// The first value.
    pub u: Value,
    /// The second, distinct value.
    pub u_prime: Value,
    /// The block-index set on which they agree.
    pub indices: Vec<u32>,
}

/// Errors from collision search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollisionError {
    /// The index set pins down the value (`Σ size(i) ≥ D` — Claim 1's
    /// premise fails).
    FullyDetermined,
    /// Underlying coding error.
    Coding(CodingError),
}

impl std::fmt::Display for CollisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollisionError::FullyDetermined => {
                write!(f, "the index set determines the value; no collision exists")
            }
            CollisionError::Coding(e) => write!(f, "coding error: {e}"),
        }
    }
}

impl std::error::Error for CollisionError {}

impl From<CodingError> for CollisionError {
    fn from(e: CodingError) -> Self {
        CollisionError::Coding(e)
    }
}

/// Finds two `I`-colliding values for a Reed–Solomon code analytically:
/// the blocks are linear in the value, so any nonzero kernel element of
/// the `I`-restricted encoding matrix separates two colliding values.
///
/// With `|I| < k` (equivalently `Σ size(i) < D`), the kernel is
/// nontrivial and a collision always exists — Claim 1 for linear codes.
///
/// # Errors
///
/// [`CollisionError::FullyDetermined`] when `|I| ≥ k`; coding errors for
/// invalid indices.
pub fn rs_colliding_values(
    code: &ReedSolomon,
    indices: &[u32],
) -> Result<Collision, CollisionError> {
    let k = code.reconstruction_threshold();
    let mut distinct: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.iter().any(|&i| i >= code.block_count()) {
        return Err(
            CodingError::UnknownBlockIndex(*indices.iter().max().expect("nonempty")).into(),
        );
    }
    if distinct.len() >= k {
        return Err(CollisionError::FullyDetermined);
    }
    // The |I| × k restriction of the encoding matrix. An empty I means any
    // two distinct values collide vacuously.
    let kernel: Vec<u8> = if distinct.is_empty() {
        let mut v = vec![0u8; k];
        v[0] = 1;
        v
    } else {
        code.encoding_matrix()
            .select_rows(&distinct)
            .null_vector()
            .expect("|I| < k rows have a nontrivial kernel")
    };
    // Interpret the kernel as a value delta: one kernel byte per shard,
    // repeated across the shard. u = 0…0, u' = u ⊕ delta ≠ u.
    let shard_len = code.value_len().div_ceil(k);
    let mut delta = vec![0u8; code.value_len()];
    for (s, &coeff) in kernel.iter().enumerate() {
        for p in 0..shard_len {
            let pos = s * shard_len + p;
            if pos < delta.len() {
                delta[pos] = coeff;
            }
        }
    }
    let u = Value::zeroed(code.value_len());
    let u_prime = Value::from_bytes(delta);
    debug_assert_ne!(
        u, u_prime,
        "kernel with all-padding support is impossible here"
    );
    let collision = Collision {
        u,
        u_prime,
        indices: distinct.iter().map(|&i| i as u32).collect(),
    };
    debug_assert!(verify_collision(code, &collision)?);
    Ok(collision)
}

/// Verifies a collision witness against any code: the two values must be
/// distinct yet produce identical blocks on every index in `I`.
///
/// # Errors
///
/// Propagates coding errors on malformed indices.
pub fn verify_collision<C: Code>(code: &C, collision: &Collision) -> Result<bool, CodingError> {
    if collision.u == collision.u_prime {
        return Ok(false);
    }
    for &i in &collision.indices {
        if code.encode_block(&collision.u, i)? != code.encode_block(&collision.u_prime, i)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Brute-force pigeonhole search over a *black-box* code: enumerates
/// values of a small domain and hashes their `I`-projections, exactly as
/// Claim 1's counting argument does. Works for any [`Code`] but needs
/// `|V|` small (`value_len ≤ 2` bytes recommended).
///
/// Returns `None` when all projections are distinct (the index set
/// determines the value).
///
/// # Errors
///
/// Propagates coding errors.
pub fn brute_force_collision<C: Code>(
    code: &C,
    indices: &[u32],
) -> Result<Option<Collision>, CodingError> {
    assert!(
        code.value_len() <= 2,
        "brute force enumerates 2^(8·len) values; keep len ≤ 2"
    );
    let domain = 1u64 << (8 * code.value_len());
    let mut seen: std::collections::HashMap<Vec<u8>, Value> = std::collections::HashMap::new();
    for raw in 0..domain {
        let bytes: Vec<u8> = (0..code.value_len())
            .map(|b| (raw >> (8 * b)) as u8)
            .collect();
        let v = Value::from_bytes(bytes);
        let mut projection = Vec::new();
        for &i in indices {
            projection.extend_from_slice(code.encode_block(&v, i)?.data());
            projection.push(0xfe); // separator
        }
        if let Some(prev) = seen.get(&projection) {
            return Ok(Some(Collision {
                u: prev.clone(),
                u_prime: v,
                indices: indices.to_vec(),
            }));
        }
        seen.insert(projection, v);
    }
    Ok(None)
}

/// Exercises the paper's `Uᵢ` construction (Lemma 1): given per-write
/// index sets, returns `c` distinct values `u_{w₁} … u_{w_c}` such that
/// each `u_{wᵢ}` has a collision partner on write `wᵢ`'s index set.
///
/// # Errors
///
/// Fails if some index set determines the value (`Σ size ≥ D`), i.e. the
/// lemma's premise `‖S(t, w)‖ < D` is violated.
pub fn build_u_sets(
    code: &ReedSolomon,
    per_write_indices: &[Vec<u32>],
) -> Result<Vec<Collision>, CollisionError> {
    let mut used: Vec<Value> = Vec::new();
    let mut out = Vec::new();
    for indices in per_write_indices {
        // Find a collision, then shift it away from previously used values
        // by adding a multiple of the kernel... simpler: scale the delta.
        let base = rs_colliding_values(code, indices)?;
        let delta: Vec<u8> = base
            .u_prime
            .as_bytes()
            .iter()
            .zip(base.u.as_bytes())
            .map(|(a, b)| a ^ b)
            .collect();
        // Try scalar multiples α·delta as u; u' = (α⊕1)·delta... Instead,
        // offset both values by a constant vector γ — encoding is linear,
        // so (γ, γ⊕delta) still collide on I. Pick γ not yielding reuse.
        let mut found = None;
        'search: for gamma_seed in 0u64..512 {
            let gamma = Value::seeded(gamma_seed, code.value_len());
            let u: Vec<u8> = gamma.as_bytes().to_vec();
            let u_prime: Vec<u8> = u.iter().zip(&delta).map(|(a, b)| a ^ b).collect();
            let u = Value::from_bytes(u);
            let u_prime = Value::from_bytes(u_prime);
            if used.contains(&u) || u == u_prime {
                continue 'search;
            }
            found = Some(Collision {
                u,
                u_prime,
                indices: base.indices.clone(),
            });
            break;
        }
        let collision = found.expect("512 offsets exceed any test's used set");
        used.push(collision.u.clone());
        out.push(collision);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_coding::Replication;

    #[test]
    fn rs_collision_exists_below_k_indices() {
        let code = ReedSolomon::new(4, 8, 32).unwrap();
        for indices in [vec![], vec![0], vec![1, 5], vec![6, 2, 7]] {
            let c = rs_colliding_values(&code, &indices).unwrap();
            assert!(verify_collision(&code, &c).unwrap(), "indices {indices:?}");
        }
    }

    #[test]
    fn rs_no_collision_at_k_indices() {
        let code = ReedSolomon::new(3, 6, 30).unwrap();
        assert_eq!(
            rs_colliding_values(&code, &[0, 2, 4]).unwrap_err(),
            CollisionError::FullyDetermined
        );
    }

    #[test]
    fn duplicate_indices_do_not_pin_the_value() {
        let code = ReedSolomon::new(2, 4, 16).unwrap();
        // {1, 1, 1} is one distinct index < k = 2.
        let c = rs_colliding_values(&code, &[1, 1, 1]).unwrap();
        assert!(verify_collision(&code, &c).unwrap());
    }

    #[test]
    fn brute_force_matches_analytic_on_small_code() {
        let code = ReedSolomon::new(2, 4, 2).unwrap();
        let found = brute_force_collision(&code, &[3]).unwrap().unwrap();
        assert!(verify_collision(&code, &found).unwrap());
        // With k = 2 distinct indices the projection is injective.
        assert!(brute_force_collision(&code, &[0, 1]).unwrap().is_none());
    }

    #[test]
    fn replication_collides_only_on_empty_set() {
        // A replica block IS the value: any single index pins it down.
        let code = Replication::new(3, 1).unwrap();
        assert!(brute_force_collision(&code, &[0]).unwrap().is_none());
        assert!(brute_force_collision(&code, &[]).unwrap().is_some());
    }

    #[test]
    fn u_set_construction_gives_distinct_values() {
        let code = ReedSolomon::new(4, 8, 32).unwrap();
        let sets = vec![vec![0u32], vec![0, 1], vec![2, 3, 5], vec![7]];
        let collisions = build_u_sets(&code, &sets).unwrap();
        assert_eq!(collisions.len(), 4);
        for c in &collisions {
            assert!(verify_collision(&code, c).unwrap());
        }
        let mut us: Vec<&Value> = collisions.iter().map(|c| &c.u).collect();
        us.sort();
        us.dedup();
        assert_eq!(us.len(), 4, "the uᵢ must be pairwise distinct");
    }

    #[test]
    fn collision_verifier_rejects_equal_values() {
        let code = ReedSolomon::new(2, 4, 8).unwrap();
        let v = Value::seeded(1, 8);
        let bogus = Collision {
            u: v.clone(),
            u_prime: v,
            indices: vec![0],
        };
        assert!(!verify_collision(&code, &bogus).unwrap());
    }
}
