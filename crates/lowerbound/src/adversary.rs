//! The adversary `Ad` of the paper's Definition 7, as a scheduler.
//!
//! At every decision point `Ad`:
//!
//! 1. if some triggered RMW targets a non-frozen base object (`∉ F(t)`)
//!    and belongs to a client whose outstanding write is in `C⁻(t)`, lets
//!    the **longest-pending** such RMW take effect and schedules its
//!    response;
//! 2. otherwise schedules other client actions in a fair order — in this
//!    simulation, delivering already-applied responses (client-side steps
//!    such as triggering RMWs and oracle calls happen inside handlers and
//!    never "affect a base object");
//!
//! and it stops — declaring victory — once `|C⁺(t)| = c` or `|F(t)| > f`,
//! the dichotomy of Lemma 3 whose storage consequence (Observation 1) is
//! `min((f+1)·ℓ, c·(D−ℓ+1))` bits.

use crate::tracking::{AdversaryParams, Snapshot};
use rsb_fpsm::{ClientLogic, ObjectState, RmwId, Scheduler, SimEvent, Simulation, StorageCost};

/// Why an adversary-driven run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdOutcome {
    /// `|C⁺(t)| ≥ c`: every one of the `c` concurrent writes has pushed
    /// more than `D − ℓ` bits into the storage.
    ConcurrencySaturated,
    /// `|F(t)| > f`: more than `f` base objects each hold at least `ℓ`
    /// bits.
    FrozenExceedsF,
    /// No event was schedulable and the stopping condition did not hold
    /// (the algorithm made all its writes return — possible only when the
    /// theorem's premises are not met, e.g. `ℓ` close to `D`).
    Stalled,
    /// The step budget ran out first.
    BudgetExhausted,
}

/// The adversary scheduler.
#[derive(Debug)]
pub struct AdversaryAd {
    params: AdversaryParams,
    /// The response of a rule-1 apply, to be delivered as the next event.
    pending_delivery: Option<RmwId>,
    outcome: Option<AdOutcome>,
}

impl AdversaryAd {
    /// Creates the adversary for the given parameters.
    pub fn new(params: AdversaryParams) -> Self {
        AdversaryAd {
            params,
            pending_delivery: None,
            outcome: None,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AdversaryParams {
        &self.params
    }

    /// The outcome, once the adversary stopped.
    pub fn outcome(&self) -> Option<AdOutcome> {
        self.outcome
    }
}

impl<S, L> Scheduler<S, L> for AdversaryAd
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    fn next_event(&mut self, sim: &Simulation<S, L>) -> Option<SimEvent> {
        // Complete a rule-1 apply with its response delivery (the paper's
        // rule 1 performs both).
        if let Some(id) = self.pending_delivery.take() {
            let still_deliverable = sim
                .inflight_rmws()
                .iter()
                .any(|i| i.rmw == id && i.applied && !sim.client_crashed(i.client));
            if still_deliverable {
                return Some(SimEvent::Deliver(id));
            }
        }

        let snap = Snapshot::capture(sim, &self.params);
        if snap.cplus.len() >= self.params.concurrency {
            self.outcome = Some(AdOutcome::ConcurrencySaturated);
            return None;
        }
        if snap.frozen.len() > self.params.f {
            self.outcome = Some(AdOutcome::FrozenExceedsF);
            return None;
        }

        let inflight = sim.inflight_rmws();

        // Rule 1: the longest-pending RMW on a non-frozen object whose
        // client's outstanding operation is not in C⁺ (reads contribute no
        // blocks and count as C⁻). Ids are trigger-ordered, so the first
        // match is the longest pending.
        for info in &inflight {
            if info.applied
                || sim.object_crashed(info.object)
                || snap.frozen.contains(&info.object)
                || snap.cplus.contains(&info.op)
            {
                continue;
            }
            // Only RMWs of still-outstanding operations are client steps.
            if sim.op_record(info.op).is_complete() {
                continue;
            }
            self.pending_delivery = Some(info.rmw);
            return Some(SimEvent::Apply(info.rmw));
        }

        // Rule 2: fair order among remaining client actions — deliver the
        // oldest applied response to a live client.
        for info in &inflight {
            if info.applied && !sim.client_crashed(info.client) {
                return Some(SimEvent::Deliver(info.rmw));
            }
        }

        self.outcome = Some(AdOutcome::Stalled);
        None
    }
}

/// The report of one adversary-driven run.
#[derive(Debug, Clone)]
pub struct BlowupReport {
    /// Why the run stopped.
    pub outcome: AdOutcome,
    /// Events executed.
    pub steps: u64,
    /// The parameters used.
    pub params: AdversaryParams,
    /// Storage cost at the stopping point.
    pub storage_at_stop: StorageCost,
    /// Peak storage cost over the run.
    pub peak_bits: u64,
    /// `|F|` at the stopping point.
    pub frozen_count: usize,
    /// `|C⁺|` at the stopping point.
    pub cplus_count: usize,
    /// The dichotomy's guaranteed bits, `min((f+1)·ℓ, c·(D−ℓ+1))`.
    pub guaranteed_bits: u64,
    /// The Observation-1 quantity actually measured at the stop: the bits
    /// across frozen objects (for `|F| > f`) or across `C⁺` contributions
    /// (for `|C⁺| = c`). Excludes each writer's own client-side state, so
    /// it never over-counts.
    pub certified_bits: u64,
}

impl BlowupReport {
    /// The bound the winning arm promises: `(f+1)·ℓ` for frozen objects,
    /// `c·(D−ℓ+1)` for saturated concurrency.
    pub fn winning_side_bound(&self) -> Option<u64> {
        match self.outcome {
            AdOutcome::FrozenExceedsF => Some((self.params.f as u64 + 1) * self.params.ell_bits),
            AdOutcome::ConcurrencySaturated => Some(
                self.params.concurrency as u64 * (self.params.data_bits - self.params.ell_bits + 1),
            ),
            _ => None,
        }
    }

    /// Whether the run certified the lower bound: the adversary won and
    /// the measured Observation-1 bits reach the winning side's promise
    /// (which is at least `min((f+1)ℓ, c(D−ℓ+1))`).
    pub fn certifies_bound(&self) -> bool {
        match self.winning_side_bound() {
            Some(bound) => self.certified_bits >= bound && bound >= self.guaranteed_bits,
            None => false,
        }
    }
}

/// Drives `sim` (with `c` writes already invoked) under the adversary
/// until it stops or `max_steps` pass, and reports the storage blow-up.
pub fn run_blowup<S, L>(
    sim: &mut Simulation<S, L>,
    params: AdversaryParams,
    max_steps: u64,
) -> BlowupReport
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    let mut ad = AdversaryAd::new(params);
    let mut steps = 0u64;
    while steps < max_steps {
        match Scheduler::<S, L>::next_event(&mut ad, sim) {
            None => break,
            Some(ev) => {
                sim.step(ev).expect("adversary chose an enabled event");
                steps += 1;
            }
        }
    }
    let snap = Snapshot::capture(sim, &params);
    let outcome = ad.outcome().unwrap_or(AdOutcome::BudgetExhausted);
    BlowupReport {
        outcome,
        steps,
        params,
        storage_at_stop: sim.storage_cost(),
        peak_bits: sim.peak_storage_bits(),
        frozen_count: snap.frozen.len(),
        cplus_count: snap.cplus.len(),
        guaranteed_bits: params.guaranteed_bits(),
        certified_bits: snap.certified_bits(&params),
    }
}
