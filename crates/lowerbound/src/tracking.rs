//! The lower-bound bookkeeping: the paper's Definition 6 quantities
//! `‖S(t, w)‖`, the frozen-object set `F_ℓ(t)`, and the write classes
//! `C⁻ℓ(t)` / `C⁺ℓ(t)`.

use rsb_fpsm::{ClientLogic, Component, ObjectId, ObjectState, OpId, Simulation};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Parameters of the adversary construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryParams {
    /// The freezing threshold `ℓ` in bits (`0 < ℓ ≤ D`; Theorem 1 uses
    /// `ℓ = D/2`).
    pub ell_bits: u64,
    /// The data size `D` in bits.
    pub data_bits: u64,
    /// The failure budget `f`: the adversary wins when `|F(t)| > f`.
    pub f: usize,
    /// The concurrency level `c`: the adversary wins when `|C⁺(t)| = c`.
    pub concurrency: usize,
}

impl AdversaryParams {
    /// The canonical Theorem-1 instantiation: `ℓ = D/2`.
    pub fn theorem1(data_bits: u64, f: usize, concurrency: usize) -> Self {
        AdversaryParams {
            ell_bits: data_bits / 2,
            data_bits,
            f,
            concurrency,
        }
    }

    /// The storage the dichotomy guarantees at the stopping point:
    /// `min((f+1)·ℓ, c·(D − ℓ + 1))` bits (Observation 1 + Lemma 3).
    pub fn guaranteed_bits(&self) -> u64 {
        let frozen_side = (self.f as u64 + 1) * self.ell_bits;
        let concurrency_side = self.concurrency as u64 * (self.data_bits - self.ell_bits + 1);
        frozen_side.min(concurrency_side)
    }
}

/// A point-in-time view of the lower-bound quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `F(t)`: base objects storing at least `ℓ` bits (their state plus
    /// applied-but-undelivered responses, which the paper's Definition 2
    /// charges to the object).
    pub frozen: BTreeSet<ObjectId>,
    /// Stored bits per base object (the summands behind `F(t)`).
    pub object_bits: BTreeMap<ObjectId, u64>,
    /// `‖S(t, w)‖` for every outstanding write `w`: the bits in
    /// distinct-index blocks sourced to `w` held outside `w`'s client.
    pub contributed: BTreeMap<OpId, u64>,
    /// `C⁺(t)`: outstanding writes with `‖S(t, w)‖ > D − ℓ`.
    pub cplus: BTreeSet<OpId>,
    /// `C⁻(t)`: the remaining outstanding writes.
    pub cminus: BTreeSet<OpId>,
}

impl Snapshot {
    /// Computes the snapshot for the current simulation state.
    pub fn capture<S, L>(sim: &Simulation<S, L>, params: &AdversaryParams) -> Self
    where
        S: ObjectState,
        L: ClientLogic<State = S>,
    {
        let blocks = sim.component_blocks();

        // Bits per object: object state + undelivered responses on it.
        let mut object_bits: HashMap<ObjectId, u64> = HashMap::new();
        // Per write: distinct block indices seen outside the writer's
        // client, with the size of each index.
        let mut index_bits: HashMap<OpId, HashMap<u32, u64>> = HashMap::new();

        // The client performing each outstanding write.
        let outstanding: Vec<(OpId, rsb_fpsm::ClientId)> = sim
            .outstanding_ops()
            .iter()
            .filter(|r| r.request.is_write())
            .map(|r| (r.op, r.client))
            .collect();
        let writer_of: HashMap<OpId, rsb_fpsm::ClientId> = outstanding.iter().copied().collect();

        for (component, instances) in &blocks {
            let charged_object = match component {
                Component::Object(o) => Some(*o),
                Component::RmwResponse { object, .. } => Some(*object),
                _ => None,
            };
            if let Some(o) = charged_object {
                *object_bits.entry(o).or_default() += instances.iter().map(|b| b.bits).sum::<u64>();
            }
            // The client holding this component, for the "outside the
            // writer's client" exclusion.
            let holder = match component {
                Component::Client(c) => Some(*c),
                Component::RmwParam { client, .. } => Some(*client),
                _ => None,
            };
            for inst in instances {
                if let Some(&writer) = writer_of.get(&inst.source_op) {
                    if holder == Some(writer) {
                        continue; // the writer's own copy is excluded
                    }
                    index_bits
                        .entry(inst.source_op)
                        .or_default()
                        .entry(inst.index)
                        .or_insert(inst.bits);
                }
            }
        }

        let frozen: BTreeSet<ObjectId> = object_bits
            .iter()
            .filter(|(_, &bits)| bits >= params.ell_bits)
            .map(|(&o, _)| o)
            .collect();

        let mut contributed = BTreeMap::new();
        let mut cplus = BTreeSet::new();
        let mut cminus = BTreeSet::new();
        for (op, _) in outstanding {
            let total: u64 = index_bits.get(&op).map_or(0, |m| m.values().sum());
            contributed.insert(op, total);
            if total > params.data_bits - params.ell_bits {
                cplus.insert(op);
            } else {
                cminus.insert(op);
            }
        }

        Snapshot {
            frozen,
            object_bits: object_bits.into_iter().collect(),
            contributed,
            cplus,
            cminus,
        }
    }

    /// The bits Observation 1 certifies at this point: over frozen objects
    /// if `|F| > f`, over `C⁺` contributions if `|C⁺| ≥ c` (the larger
    /// side if both hold; zero if neither).
    pub fn certified_bits(&self, params: &AdversaryParams) -> u64 {
        let frozen_side: u64 = if self.frozen.len() > params.f {
            self.frozen
                .iter()
                .map(|o| self.object_bits.get(o).copied().unwrap_or(0))
                .sum()
        } else {
            0
        };
        let cplus_side: u64 = if self.cplus.len() >= params.concurrency {
            self.cplus
                .iter()
                .map(|w| self.contributed.get(w).copied().unwrap_or(0))
                .sum()
        } else {
            0
        };
        frozen_side.max(cplus_side)
    }

    /// Whether the adversary's stopping condition holds.
    pub fn adversary_wins(&self, params: &AdversaryParams) -> bool {
        self.cplus.len() >= params.concurrency || self.frozen.len() > params.f
    }
}

/// The distinct sources present in the storage right now — a view of the
/// paper's source function (Definition 4) restricted to live blocks.
pub fn live_sources<S, L>(sim: &Simulation<S, L>) -> BTreeSet<(OpId, u32)>
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    let mut out = BTreeSet::new();
    for (_, instances) in sim.component_blocks() {
        for inst in instances {
            out.insert((inst.source_op, inst.index));
        }
    }
    out
}

/// Convenience: `HashSet` of op ids currently outstanding as writes.
pub fn outstanding_writes<S, L>(sim: &Simulation<S, L>) -> HashSet<OpId>
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    sim.outstanding_ops()
        .iter()
        .filter(|r| r.request.is_write())
        .map(|r| r.op)
        .collect()
}
