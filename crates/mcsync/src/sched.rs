//! The cooperative virtual-thread scheduler and its exhaustive explorer.
//!
//! Virtual threads are real OS threads that hand a baton around: exactly
//! one runs at a time, and it surrenders the baton only at *scheduling
//! points* — every operation on the wrappers in [`crate::sync`], plus
//! spawn-side blocking ([`crate::thread::JoinHandle::join`]). At each
//! point the scheduler either follows a recorded decision (replay of a
//! DFS prefix) or takes the default — keep the current thread running —
//! and records the choice. After an execution completes, [`model`]
//! computes the lexicographically next decision vector with an untried
//! alternative inside the preemption budget and replays it, until the
//! space is exhausted.
//!
//! Preemption accounting follows iterative context bounding: switching
//! away from a thread that could have continued costs one preemption;
//! switching because the current thread blocked or finished is free.
//! With a bound of `b`, the checker covers every schedule reachable with
//! at most `b` preemptions — the regime where the vast majority of real
//! concurrency bugs live.

use std::cell::RefCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, PoisonError};

/// Predicate deciding whether a blocked virtual thread may be granted
/// the baton. Evaluated by the scheduler with its own lock held, so it
/// must only touch model-side flags (plain atomics), never scheduler
/// state.
pub(crate) type Pred = Box<dyn Fn() -> bool + Send>;

/// Panic payload used to tear an execution down after a failure or
/// deadlock has been recorded; never surfaced to the caller.
struct Cancelled;

/// Exploration parameters for [`model`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of preemptive context switches per schedule.
    pub preemption_bound: usize,
    /// Cap on the number of schedules explored; exploration that hits
    /// the cap reports `complete: false` rather than failing.
    pub max_schedules: u64,
    /// Cap on scheduling points within one execution — a backstop
    /// against non-terminating schedules (e.g. an unmodelled spin loop).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 3,
            max_schedules: 500_000,
            max_steps: 100_000,
        }
    }
}

/// What an exhausted (or capped) exploration observed.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: u64,
    /// Whether the bounded decision space was fully explored (false if
    /// `max_schedules` stopped it early).
    pub complete: bool,
    /// Total scheduling points across all executions.
    pub points: u64,
    /// Deepest execution, in scheduling points.
    pub max_depth: usize,
    /// Most preemptions any executed schedule actually spent.
    pub max_preemptions_used: usize,
}

/// A failing schedule: the assertion (or deadlock) message plus the
/// decision vector that reproduces it via [`replay`].
#[derive(Debug)]
pub struct ModelError {
    /// Panic message or deadlock description from the failing execution.
    pub message: String,
    /// Decision indices taken at each scheduling point of the failing
    /// schedule; feed to [`replay`] to re-execute it.
    pub decisions: Vec<usize>,
    /// How many schedules ran cleanly before this one.
    pub schedules_before: u64,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule #{} failed: {} (replay decisions: {:?})",
            self.schedules_before + 1,
            self.message,
            self.decisions
        )
    }
}

impl std::error::Error for ModelError {}

/// Run state of one virtual thread.
enum Run {
    Runnable,
    Blocked(Pred),
    Finished,
}

/// One recorded scheduling decision.
struct Choice {
    /// Grantable threads in selection order (continuing thread first).
    candidates: Vec<usize>,
    /// Index into `candidates` actually granted.
    chosen: usize,
    /// Whether `candidates[0]` is the thread that was already running
    /// (so any other pick costs a preemption).
    continuation: bool,
}

struct Inner {
    threads: Vec<Run>,
    /// Thread currently holding the baton.
    active: Option<usize>,
    /// Decision prefix to replay before falling back to defaults.
    decisions: Vec<usize>,
    trace: Vec<Choice>,
    preemptions: usize,
    steps: u64,
    max_steps: u64,
    live: usize,
    cancelling: bool,
    failure: Option<String>,
    done: bool,
}

pub(crate) struct Shared {
    m: OsMutex<Inner>,
    cv: OsCondvar,
}

/// Per-OS-thread handle naming the active controller and this thread's
/// virtual id; `None` outside a model run (passthrough mode).
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Cheap passthrough check: is this thread inside a model run?
pub(crate) fn modelled() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl Ctx {
    /// Scheduling point: offer the baton; the scheduler may hand it
    /// right back (the zero-cost default) or to a peer.
    pub(crate) fn yield_point(&self) {
        self.shared.yield_point(self.id);
    }

    /// Scheduling point that parks this thread until `pred` holds.
    pub(crate) fn block_until(&self, pred: Pred) {
        self.shared.block_until(self.id, pred);
    }

    /// Registers a new virtual thread (runnable, not yet granted).
    pub(crate) fn register_child(&self) -> usize {
        self.shared.register()
    }
}

impl Shared {
    fn new(decisions: Vec<usize>, max_steps: u64) -> Self {
        Shared {
            m: OsMutex::new(Inner {
                threads: Vec::new(),
                active: None,
                decisions,
                trace: Vec::new(),
                preemptions: 0,
                steps: 0,
                max_steps,
                live: 0,
                cancelling: false,
                failure: None,
                done: false,
            }),
            cv: OsCondvar::new(),
        }
    }

    fn lock(&self) -> OsGuard<'_, Inner> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(&self) -> usize {
        let mut g = self.lock();
        g.threads.push(Run::Runnable);
        g.live += 1;
        g.threads.len() - 1
    }

    fn wait_for_grant<'a>(&'a self, mut g: OsGuard<'a, Inner>, me: usize) -> OsGuard<'a, Inner> {
        while g.active != Some(me) {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        g
    }

    /// Panics with the teardown sentinel if the execution is being
    /// cancelled. Must be called with the baton held; drops the lock
    /// before unwinding.
    fn check_cancel(g: OsGuard<'_, Inner>) {
        if g.cancelling {
            drop(g);
            panic::panic_any(Cancelled);
        }
        drop(g);
    }

    fn yield_point(&self, me: usize) {
        let mut g = self.lock();
        debug_assert_eq!(g.active, Some(me), "yield from a thread without the baton");
        self.reschedule(&mut g);
        let g = self.wait_for_grant(g, me);
        Self::check_cancel(g);
    }

    fn block_until(&self, me: usize, pred: Pred) {
        let mut g = self.lock();
        debug_assert_eq!(g.active, Some(me), "block from a thread without the baton");
        g.threads[me] = Run::Blocked(pred);
        self.reschedule(&mut g);
        let mut g = self.wait_for_grant(g, me);
        g.threads[me] = Run::Runnable;
        Self::check_cancel(g);
    }

    /// Marks `me` finished and passes the baton on. Never blocks.
    fn finish(&self, me: usize) {
        let mut g = self.lock();
        g.threads[me] = Run::Finished;
        g.live -= 1;
        if g.active == Some(me) {
            self.reschedule(&mut g);
        }
    }

    /// Records the first failure and switches the execution into
    /// teardown: every remaining thread is woken to unwind.
    fn fail(&self, message: String) {
        let mut g = self.lock();
        if g.failure.is_none() {
            g.failure = Some(message);
        }
        g.cancelling = true;
    }

    fn reschedule(&self, g: &mut Inner) {
        g.steps += 1;
        if g.steps > g.max_steps && !g.cancelling {
            g.failure
                .get_or_insert_with(|| "scheduling-point budget exceeded (non-terminating schedule? model the wait with block_until)".to_owned());
            g.cancelling = true;
        }
        if g.live == 0 {
            g.active = None;
            g.done = true;
            self.cv.notify_all();
            return;
        }
        let grantable: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, run)| match run {
                Run::Runnable => true,
                Run::Blocked(pred) => g.cancelling || pred(),
                Run::Finished => false,
            })
            .map(|(id, _)| id)
            .collect();
        if grantable.is_empty() {
            // Every live thread is parked on a predicate nothing can
            // flip: a genuine deadlock of the modelled code. Record it
            // and tear the execution down.
            if !g.cancelling {
                g.failure.get_or_insert_with(|| {
                    format!(
                        "deadlock: {} thread(s) blocked with no runnable peer",
                        g.live
                    )
                });
                g.cancelling = true;
            }
            let first_live = g
                .threads
                .iter()
                .position(|run| !matches!(run, Run::Finished))
                .expect("live > 0");
            g.active = Some(first_live);
            self.cv.notify_all();
            return;
        }
        if g.cancelling {
            // Teardown: grant in any order, no trace recording.
            g.active = Some(grantable[0]);
            self.cv.notify_all();
            return;
        }
        let cont = g.active.filter(|a| grantable.contains(a));
        let mut candidates = Vec::with_capacity(grantable.len());
        if let Some(c) = cont {
            candidates.push(c);
        }
        candidates.extend(grantable.iter().copied().filter(|&t| Some(t) != cont));
        let pos = g.trace.len();
        let idx = g.decisions.get(pos).copied().unwrap_or(0);
        assert!(
            idx < candidates.len(),
            "mc replay divergence: decision {idx} of {} candidates at point {pos}",
            candidates.len()
        );
        if cont.is_some() && idx != 0 {
            g.preemptions += 1;
        }
        g.active = Some(candidates[idx]);
        g.trace.push(Choice {
            candidates,
            chosen: idx,
            continuation: cont.is_some(),
        });
        self.cv.notify_all();
    }
}

/// Spawns the OS thread backing a virtual thread. The body waits for its
/// first baton grant, runs, stores its result, raises `finished`, and
/// hands the baton on.
pub(crate) fn spawn_vthread<T, F>(
    shared: Arc<Shared>,
    id: usize,
    f: F,
    result: Arc<OsMutex<Option<std::thread::Result<T>>>>,
    finished: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    std::thread::spawn(move || {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                shared: Arc::clone(&shared),
                id,
            });
        });
        let out = panic::catch_unwind(AssertUnwindSafe(|| {
            let g = shared.lock();
            let g = shared.wait_for_grant(g, id);
            Shared::check_cancel(g);
            f()
        }));
        match out {
            Ok(v) => {
                *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
            }
            Err(payload) => {
                if !payload.is::<Cancelled>() {
                    shared.fail(describe_panic(payload.as_ref()));
                    *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(payload));
                }
            }
        }
        // audit:allow(atomics-seqcst) — shadow state publishing a virtual
        // thread's exit to `join`'s predicate; the baton is the real sync.
        finished.store(true, Ordering::SeqCst);
        shared.finish(id);
        CTX.with(|c| c.borrow_mut().take());
    })
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

struct ExecOutcome {
    taken: Vec<usize>,
    /// Per scheduling point: (candidate count, chosen, continuation).
    shape: Vec<(usize, usize, bool)>,
    preemptions: usize,
    failure: Option<String>,
}

fn run_once<F>(decisions: Vec<usize>, max_steps: u64, body: &Arc<F>) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let shared = Arc::new(Shared::new(decisions, max_steps));
    let root = shared.register();
    debug_assert_eq!(root, 0);
    let result = Arc::new(OsMutex::new(None));
    let finished = Arc::new(AtomicBool::new(false));
    let b = Arc::clone(body);
    let os = spawn_vthread(Arc::clone(&shared), root, move || b(), result, finished);
    // Hand the baton to the root thread and wait for the execution to
    // quiesce (all virtual threads finished).
    {
        let mut g = shared.lock();
        g.active = Some(root);
        shared.cv.notify_all();
        while !g.done {
            g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
    os.join().ok();
    let g = shared.lock();
    ExecOutcome {
        taken: g.trace.iter().map(|c| c.chosen).collect(),
        shape: g
            .trace
            .iter()
            .map(|c| (c.candidates.len(), c.chosen, c.continuation))
            .collect(),
        preemptions: g.preemptions,
        failure: g.failure.clone(),
    }
}

/// Exhaustively explores the scheduling space of `body` under `config`.
///
/// `body` is the whole scenario: it constructs fresh state, spawns
/// virtual threads via [`crate::thread::spawn`], joins them, and asserts
/// its invariants. It is re-run once per schedule, so it must be
/// deterministic apart from scheduling.
///
/// # Errors
///
/// Returns the first failing schedule — assertion panic, deadlock, or
/// step-budget blowout — with its replayable decision vector.
///
/// # Panics
///
/// Panics if called from inside another model run.
pub fn model<F>(config: &Config, body: F) -> Result<Report, ModelError>
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(ctx().is_none(), "nested sched::model is not supported");
    let body = Arc::new(body);
    let mut decisions: Vec<usize> = Vec::new();
    let mut report = Report {
        schedules: 0,
        complete: true,
        points: 0,
        max_depth: 0,
        max_preemptions_used: 0,
    };
    loop {
        if report.schedules >= config.max_schedules {
            report.complete = false;
            break;
        }
        let exec = run_once(decisions.clone(), config.max_steps, &body);
        report.schedules += 1;
        report.points += exec.shape.len() as u64;
        report.max_depth = report.max_depth.max(exec.shape.len());
        report.max_preemptions_used = report.max_preemptions_used.max(exec.preemptions);
        if let Some(message) = exec.failure {
            return Err(ModelError {
                message,
                decisions: exec.taken,
                schedules_before: report.schedules - 1,
            });
        }
        // Lexicographic DFS: find the deepest scheduling point with an
        // untried alternative that fits the preemption budget; bump it
        // and truncate everything after (defaults re-fill the suffix).
        let mut spent = Vec::with_capacity(exec.shape.len() + 1);
        spent.push(0usize);
        for &(_, chosen, continuation) in &exec.shape {
            let cost = usize::from(continuation && chosen != 0);
            spent.push(spent.last().copied().unwrap_or(0) + cost);
        }
        let mut next = None;
        for i in (0..exec.shape.len()).rev() {
            let (n, chosen, continuation) = exec.shape[i];
            let alt = chosen + 1;
            if alt >= n {
                continue;
            }
            // Any non-zero pick at a continuation point costs one
            // preemption; everything else is free.
            let cost = usize::from(continuation);
            if spent[i] + cost > config.preemption_bound {
                continue;
            }
            let mut d: Vec<usize> = exec.taken[..i].to_vec();
            d.push(alt);
            next = Some(d);
            break;
        }
        match next {
            Some(d) => decisions = d,
            None => break,
        }
    }
    Ok(report)
}

/// Re-executes exactly one schedule — the decision vector from a
/// [`ModelError`] — and returns its failure message, if it still fails.
///
/// # Panics
///
/// Panics if called from inside a model run.
pub fn replay<F>(decisions: &[usize], max_steps: u64, body: F) -> Option<String>
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(ctx().is_none(), "nested sched::replay is not supported");
    let body = Arc::new(body);
    run_once(decisions.to_vec(), max_steps, &body).failure
}
