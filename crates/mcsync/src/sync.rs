//! Drop-in sync primitives: `std::sync::atomic`-shaped atomics and
//! `parking_lot`-shaped `Mutex`/`Condvar` whose every operation is a
//! scheduling point under [`crate::sched::model`], and a transparent
//! passthrough outside one.
//!
//! The atomics execute with their caller-requested orderings on the real
//! hardware primitive; under the model the point is the *interleaving*,
//! which the scheduler serializes (sequential consistency). The lock
//! types keep a model-side `held` flag so the scheduler can tell a
//! blocked acquirer from a runnable thread — a virtual thread never
//! blocks at the OS level while holding the baton.

use crate::sched;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicBool as RawBool;
use std::sync::{Arc, Mutex as OsMutex, PoisonError};
use std::time::Duration;

pub use std::sync::atomic::Ordering;

/// Scheduling hook shared by every wrapper operation: a no-op outside a
/// model run.
fn hook() {
    if let Some(ctx) = sched::ctx() {
        ctx.yield_point();
    }
}

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $raw:ty, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $raw,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            #[must_use]
            pub const fn new(v: $prim) -> Self {
                Self { inner: <$raw>::new(v) }
            }

            /// Loads the value (scheduling point under the model).
            pub fn load(&self, order: Ordering) -> $prim {
                hook();
                self.inner.load(order)
            }

            /// Stores a value (scheduling point under the model).
            pub fn store(&self, v: $prim, order: Ordering) {
                hook();
                self.inner.store(v, order);
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.swap(v, order)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.fetch_sub(v, order)
            }

            /// Atomic bitwise or, returning the previous value.
            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.fetch_or(v, order)
            }

            /// Atomic bitwise and, returning the previous value.
            pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.fetch_and(v, order)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.fetch_max(v, order)
            }

            /// Atomic minimum, returning the previous value.
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                hook();
                self.inner.fetch_min(v, order)
            }

            /// Compare-and-exchange; `Ok(previous)` on success.
            ///
            /// # Errors
            ///
            /// Returns `Err(actual)` when the current value differs from
            /// `current`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                hook();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Weak compare-and-exchange (may spuriously fail on real
            /// hardware; never spurious under the model).
            ///
            /// # Errors
            ///
            /// Returns `Err(actual)` when the current value differs from
            /// `current`.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                hook();
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            /// Consumes the atomic, returning the inner value.
            #[must_use]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }

            /// Exclusive access to the value (no scheduling point: the
            /// `&mut` proves no concurrent access exists).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }
        }
    };
}

model_atomic!(
    /// Model-checkable `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic!(
    /// Model-checkable `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// Model-checkable `AtomicBool` (subset: the boolean ops).
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: RawBool,
}

impl AtomicBool {
    /// Creates a new atomic bool.
    #[must_use]
    pub const fn new(v: bool) -> Self {
        Self {
            inner: RawBool::new(v),
        }
    }

    /// Loads the value (scheduling point under the model).
    pub fn load(&self, order: Ordering) -> bool {
        hook();
        self.inner.load(order)
    }

    /// Stores a value (scheduling point under the model).
    pub fn store(&self, v: bool, order: Ordering) {
        hook();
        self.inner.store(v, order);
    }

    /// Swaps the value, returning the previous one.
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        hook();
        self.inner.swap(v, order)
    }
}

/// Model-side ownership flag of a [`Mutex`], shared with blocked-waiter
/// predicates (hence the `Arc`).
#[derive(Debug, Default)]
struct LockModel {
    held: RawBool,
}

/// Model-checkable mutex with the `parking_lot` API shape (guard-
/// returning `lock`, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: parking_lot::Mutex<T>,
    model: Arc<LockModel>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: parking_lot::Mutex::new(value),
            model: Arc::new(LockModel::default()),
        }
    }

    /// Acquires the lock. Under the model this is a scheduling point and
    /// the virtual thread parks (baton released) while the lock is held
    /// elsewhere.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(ctx) = sched::ctx() {
            let m = Arc::clone(&self.model);
            // audit:allow(atomics-seqcst) — model-checker shadow state: the
            // scheduler baton is the real synchronization; SeqCst keeps the
            // shadow metadata trivially sequentially consistent.
            ctx.block_until(Box::new(move || !m.held.load(Ordering::SeqCst)));
            // Exactly one virtual thread runs at a time, so marking the
            // lock held and taking it is a single atomic step.
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            self.model.held.store(true, Ordering::SeqCst);
            let g = self
                .inner
                .try_lock()
                .expect("mc mutex: marked free but contended");
            MutexGuard {
                lock: self,
                inner: Some(g),
                modelled: true,
            }
        } else {
            MutexGuard {
                lock: self,
                inner: Some(self.inner.lock()),
                modelled: false,
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some(ctx) = sched::ctx() {
            ctx.yield_point();
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            if self.model.held.load(Ordering::SeqCst) {
                return None;
            }
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            self.model.held.store(true, Ordering::SeqCst);
            let g = self
                .inner
                .try_lock()
                .expect("mc mutex: marked free but contended");
            Some(MutexGuard {
                lock: self,
                inner: Some(g),
                modelled: true,
            })
        } else {
            self.inner.try_lock().map(|g| MutexGuard {
                lock: self,
                inner: Some(g),
                modelled: false,
            })
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` lets [`Condvar`] vacate
/// the real guard during a wait; it is `Some` whenever user code can
/// observe the guard.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    modelled: bool,
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard vacated")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard vacated")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.modelled {
                // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
                self.lock.model.held.store(false, Ordering::SeqCst);
                // Releasing a lock is an interleaving point too — but
                // never unwind from inside another unwind.
                if !std::thread::panicking() {
                    if let Some(ctx) = sched::ctx() {
                        ctx.yield_point();
                    }
                }
            }
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// One parked waiter of a [`Condvar`] under the model.
#[derive(Debug)]
struct Waiter {
    notified: Arc<RawBool>,
}

#[derive(Debug, Default)]
struct CvModel {
    waiters: OsMutex<Vec<Waiter>>,
}

/// Model-checkable condition variable, `parking_lot`-flavoured
/// (`wait` takes `&mut MutexGuard`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: parking_lot::Condvar,
    model: Arc<CvModel>,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Blocks until notified, atomically releasing the guarded lock.
    /// Under the model, lost-wakeup bugs surface as deadlocks with a
    /// replayable schedule.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(ctx) = sched::ctx() {
            assert!(guard.modelled, "mc condvar: guard from a passthrough lock");
            let notified = Arc::new(RawBool::new(false));
            self.model
                .waiters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Waiter {
                    notified: Arc::clone(&notified),
                });
            // Release the lock, park until notified *and* the lock is
            // free again, then reacquire — monitor semantics.
            let mutex = guard.lock;
            drop(guard.inner.take());
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            mutex.model.held.store(false, Ordering::SeqCst);
            let m = Arc::clone(&mutex.model);
            ctx.block_until(Box::new(move || {
                // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
                notified.load(Ordering::SeqCst) && !m.held.load(Ordering::SeqCst)
            }));
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            mutex.model.held.store(true, Ordering::SeqCst);
            guard.inner = Some(
                mutex
                    .inner
                    .try_lock()
                    .expect("mc condvar: lock marked free but contended"),
            );
        } else {
            self.inner
                .wait(guard.inner.as_mut().expect("guard vacated"));
        }
    }

    /// Blocks until notified or until `timeout` elapses. Under the model
    /// the timeout is treated as firing immediately (timed waits are
    /// polling loops; modelling the notification too would hide nothing
    /// the untimed `wait` does not already cover).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if let Some(ctx) = sched::ctx() {
            let _ = timeout;
            let mutex = guard.lock;
            drop(guard.inner.take());
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            mutex.model.held.store(false, Ordering::SeqCst);
            let m = Arc::clone(&mutex.model);
            // audit:allow(atomics-seqcst) — model-checker shadow state: the
            // scheduler baton is the real synchronization; SeqCst keeps the
            // shadow metadata trivially sequentially consistent.
            ctx.block_until(Box::new(move || !m.held.load(Ordering::SeqCst)));
            // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
            mutex.model.held.store(true, Ordering::SeqCst);
            guard.inner = Some(
                mutex
                    .inner
                    .try_lock()
                    .expect("mc condvar: lock marked free but contended"),
            );
            WaitTimeoutResult { timed_out: true }
        } else {
            let r = self
                .inner
                .wait_for(guard.inner.as_mut().expect("guard vacated"), timeout);
            WaitTimeoutResult {
                timed_out: r.timed_out(),
            }
        }
    }

    /// Wakes one parked waiter (the longest-waiting one under the model).
    pub fn notify_one(&self) -> bool {
        if sched::modelled() {
            let mut q = self
                .model
                .waiters
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.is_empty() {
                false
            } else {
                let w = q.remove(0);
                // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
                w.notified.store(true, Ordering::SeqCst);
                true
            }
        } else {
            self.inner.notify_one()
        }
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) -> usize {
        if sched::modelled() {
            let mut q = self
                .model
                .waiters
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let n = q.len();
            for w in q.drain(..) {
                // audit:allow(atomics-seqcst) — shadow state; see `Mutex::lock`.
                w.notified.store(true, Ordering::SeqCst);
            }
            n
        } else {
            self.inner.notify_all()
        }
    }
}
