//! A small loom-style model checker for lock-free code, built entirely
//! in-repo (the build environment has no crates.io access).
//!
//! The idea: code under test swaps its `std::sync::atomic` /
//! `parking_lot` primitives for the drop-in wrappers in [`sync`]. Outside
//! a checking run the wrappers are transparent passthroughs (one
//! thread-local lookup per operation). Inside [`sched::model`], every
//! operation on a wrapper becomes a *scheduling point*: the calling
//! virtual thread parks, a cooperative scheduler picks which thread runs
//! next, and the run as a whole is replayed under depth-first search over
//! all scheduling decisions — bounded by a preemption budget, as in
//! iterative context bounding — until the decision space is exhausted or
//! an execution fails.
//!
//! Because exactly one virtual thread runs at a time, the checker
//! explores *sequentially consistent* interleavings: it finds logic races
//! (torn seqlock reads, lost updates, lock-ordering deadlocks, lost
//! wakeups) but not weak-memory reorderings. The store's orderings are
//! additionally argued in comments at each site; this crate checks the
//! algorithmic claims those comments rest on.
//!
//! A failing execution reports the decision vector that produced it,
//! and [`sched::replay`] re-executes exactly that schedule — the
//! counterexample is a value, not a flake.
//!
//! ```
//! use rsb_mcsync::{sched, sync, thread};
//! use std::sync::Arc;
//! use std::sync::atomic::Ordering;
//!
//! // Two racing `fetch_add`s are fine — the model proves it by running
//! // every interleaving (within the preemption bound).
//! let report = sched::model(&sched::Config::default(), || {
//!     let c = Arc::new(sync::AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = thread::spawn(move || c2.fetch_add(1, Ordering::Relaxed));
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! })
//! .expect("no interleaving fails");
//! assert!(report.complete);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;
pub mod sync;
pub mod thread;
