//! Virtual-thread spawn/join: `std::thread`-shaped outside a model run,
//! scheduler-controlled inside one.

use crate::sched;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as OsMutex, PoisonError};

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

#[derive(Debug)]
enum Imp<T> {
    Os(std::thread::JoinHandle<T>),
    Virtual {
        result: Arc<OsMutex<Option<std::thread::Result<T>>>>,
        finished: Arc<AtomicBool>,
        os: std::thread::JoinHandle<()>,
    },
}

/// Spawns a thread. Inside [`sched::model`] the child is a virtual
/// thread under the scheduler's control; outside it is a plain
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::ctx() {
        None => JoinHandle {
            imp: Imp::Os(std::thread::spawn(f)),
        },
        Some(ctx) => {
            let id = ctx.register_child();
            let result = Arc::new(OsMutex::new(None));
            let finished = Arc::new(AtomicBool::new(false));
            let os = sched::spawn_vthread(
                Arc::clone(&ctx.shared),
                id,
                f,
                Arc::clone(&result),
                Arc::clone(&finished),
            );
            JoinHandle {
                imp: Imp::Virtual {
                    result,
                    finished,
                    os,
                },
            }
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result
    /// (`Err(payload)` if it panicked, like `std::thread`).
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it panicked.
    ///
    /// # Panics
    ///
    /// Panics if a virtual handle is joined from outside its model run.
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Os(h) => h.join(),
            Imp::Virtual {
                result,
                finished,
                os,
            } => {
                let ctx = sched::ctx().expect("joining a virtual thread outside its model run");
                let fin = Arc::clone(&finished);
                // audit:allow(atomics-seqcst) — shadow state; the scheduler baton is
                // the real synchronization (see `sync::Mutex::lock`).
                ctx.block_until(Box::new(move || fin.load(Ordering::SeqCst)));
                // The virtual thread has finished; reap its OS backing
                // (exits as soon as it hands the baton on).
                os.join().ok();
                result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("finished virtual thread left no result")
            }
        }
    }

    /// Whether the thread has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        match &self.imp {
            Imp::Os(h) => h.is_finished(),
            // audit:allow(atomics-seqcst) — shadow state; see `join` above.
            Imp::Virtual { finished, .. } => finished.load(Ordering::SeqCst),
        }
    }
}
