//! The checker checking itself: known-good patterns must survive every
//! schedule; known-bad patterns must be caught with a deterministic,
//! replayable counterexample.

use rsb_mcsync::{sched, sync, thread};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn quick() -> sched::Config {
    sched::Config {
        preemption_bound: 3,
        max_schedules: 100_000,
        max_steps: 10_000,
    }
}

#[test]
fn atomic_fetch_add_is_race_free() {
    let report = sched::model(&quick(), || {
        let c = Arc::new(sync::AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            // audit:allow(atomics-relaxed) — modelled access: the checker
            // serializes every step; the race (or its absence) is the test.
            c2.fetch_add(1, Ordering::Relaxed);
        });
        // audit:allow(atomics-relaxed) — modelled access: the checker
        // serializes every step; the race (or its absence) is the test.
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        // audit:allow(atomics-relaxed) — modelled access: the checker
        // serializes every step; the race (or its absence) is the test.
        assert_eq!(c.load(Ordering::Relaxed), 2);
    })
    .expect("fetch_add must be safe under every interleaving");
    assert!(report.complete, "space must be exhausted");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

#[test]
fn load_store_increment_loses_updates_and_replays() {
    // The classic lost update: read-modify-write split into a load and a
    // store. The model must find the interleaving where both threads
    // load 0, and the counterexample must replay deterministically.
    let body = || {
        let c = Arc::new(sync::AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            // audit:allow(atomics-relaxed) — modelled access: the checker
            // serializes every step; the race (or its absence) is the test.
            let v = c2.load(Ordering::Relaxed);
            // audit:allow(atomics-relaxed) — modelled access: the checker
            // serializes every step; the race (or its absence) is the test.
            c2.store(v + 1, Ordering::Relaxed);
        });
        // audit:allow(atomics-relaxed) — modelled access: the checker
        // serializes every step; the race (or its absence) is the test.
        let v = c.load(Ordering::Relaxed);
        // audit:allow(atomics-relaxed) — modelled access: the checker
        // serializes every step; the race (or its absence) is the test.
        c.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        // audit:allow(atomics-relaxed) — modelled access: the checker
        // serializes every step; the race (or its absence) is the test.
        assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
    };
    let err = sched::model(&quick(), body).expect_err("model must find the lost update");
    assert!(err.message.contains("lost update"), "got: {}", err.message);
    let replayed = sched::replay(&err.decisions, 10_000, body)
        .expect("replaying the counterexample must fail again");
    assert!(replayed.contains("lost update"), "got: {replayed}");

    // Determinism across runs: a second exploration finds the same
    // counterexample schedule.
    let err2 = sched::model(&quick(), body).expect_err("second run must fail too");
    assert_eq!(err.decisions, err2.decisions);
    assert_eq!(err.schedules_before, err2.schedules_before);
}

#[test]
fn mutexed_increment_is_race_free() {
    let report = sched::model(&quick(), || {
        let c = Arc::new(sync::Mutex::new(0u64));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let mut g = c2.lock();
            let v = *g;
            *g = v + 1;
        });
        {
            let mut g = c.lock();
            let v = *g;
            *g = v + 1;
        }
        t.join().unwrap();
        assert_eq!(*c.lock(), 2);
    })
    .expect("mutexed RMW must be safe under every interleaving");
    assert!(report.complete);
}

#[test]
fn lock_order_inversion_deadlocks() {
    let err = sched::model(&quick(), || {
        let a = Arc::new(sync::Mutex::new(()));
        let b = Arc::new(sync::Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let gb = b.lock();
        let ga = a.lock();
        drop((gb, ga));
        t.join().unwrap();
    })
    .expect_err("ABBA locking must deadlock in some schedule");
    assert!(err.message.contains("deadlock"), "got: {}", err.message);
}

#[test]
fn condvar_handoff_has_no_lost_wakeup() {
    // Proper monitor usage: the predicate is checked under the lock, so
    // notify-before-wait cannot strand the waiter in any schedule.
    let report = sched::model(&quick(), || {
        let pair = Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        {
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        }
        t.join().unwrap();
    })
    .expect("guarded condvar wait must never hang");
    assert!(report.complete);
}

#[test]
fn condvar_unguarded_wait_is_caught_as_deadlock() {
    // Broken monitor usage: waiting without re-checking the flag misses
    // the notify that fired before the wait began.
    let err = sched::model(&quick(), || {
        let pair = Arc::new((sync::Mutex::new(()), sync::Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            p2.1.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        cv.wait(&mut g);
        drop(g);
        t.join().unwrap();
    })
    .expect_err("unguarded wait must deadlock in the notify-first schedule");
    assert!(err.message.contains("deadlock"), "got: {}", err.message);
}

#[test]
fn preemption_bound_scales_coverage() {
    let count = |bound: usize| {
        let cfg = sched::Config {
            preemption_bound: bound,
            max_schedules: 100_000,
            max_steps: 10_000,
        };
        let report = sched::model(&cfg, || {
            let c = Arc::new(sync::AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                for _ in 0..3 {
                    // audit:allow(atomics-relaxed) — modelled access: the checker
                    // serializes every step; the race (or its absence) is the test.
                    c2.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..3 {
                // audit:allow(atomics-relaxed) — modelled access: the checker
                // serializes every step; the race (or its absence) is the test.
                c.fetch_add(1, Ordering::Relaxed);
            }
            t.join().unwrap();
            // audit:allow(atomics-relaxed) — modelled access: the checker
            // serializes every step; the race (or its absence) is the test.
            assert_eq!(c.load(Ordering::Relaxed), 6);
        })
        .expect("race-free");
        assert!(report.complete);
        report.schedules
    };
    let (s0, s1, s2) = (count(0), count(1), count(2));
    assert!(
        s0 < s1 && s1 < s2,
        "coverage must grow with the bound: {s0} {s1} {s2}"
    );
}

#[test]
fn passthrough_outside_model_is_transparent() {
    // No controller: the wrappers behave exactly like std/parking_lot.
    let c = sync::AtomicU64::new(41);
    // audit:allow(atomics-relaxed) — modelled access: the checker
    // serializes every step; the race (or its absence) is the test.
    assert_eq!(c.fetch_add(1, Ordering::Relaxed), 41);
    // audit:allow(atomics-relaxed) — modelled access: the checker
    // serializes every step; the race (or its absence) is the test.
    assert_eq!(c.load(Ordering::Relaxed), 42);
    let m = sync::Mutex::new(7);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 8);
    let t = thread::spawn(|| 5u32);
    assert_eq!(t.join().unwrap(), 5);
}
