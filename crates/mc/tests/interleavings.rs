//! Interleaving-harness tests: exhaustive (bounded-preemption)
//! exploration of the store's lock-free hot structures, running on the
//! `rsb-mcsync` virtual-thread shim (the `mc` cargo feature swaps the
//! real atomics/locks inside `rsb-store`/`rsb-registers` for modelled
//! ones).

use rsb_mc::{sched, thread as vthread};
use rsb_registers::ReadyQueue;
use rsb_store::{FlightEventKind, FlightRecorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

fn quick(preemption_bound: usize) -> sched::Config {
    sched::Config {
        preemption_bound,
        max_schedules: 300_000,
        max_steps: 50_000,
    }
}

// ---------------------------------------------------------------------------
// FlightRecorder: the claim → write-payload → publish seqlock.
// ---------------------------------------------------------------------------

/// Two writers record concurrently while the root thread dumps mid-race:
/// every dumped entry must be one of the exact payloads some `record`
/// call wrote — never a torn pairing — and the quiescent dump is gapless.
#[test]
fn recorder_claim_write_publish_never_tears() {
    let report = sched::model(&quick(3), || {
        let rec = Arc::new(FlightRecorder::new(4));
        let r1 = Arc::clone(&rec);
        let r2 = Arc::clone(&rec);
        let w1 = vthread::spawn(move || {
            r1.record(FlightEventKind::SubmitRead, Some(1), 11);
        });
        let w2 = vthread::spawn(move || {
            r2.record(FlightEventKind::SubmitWrite, Some(2), 22);
        });
        // Concurrent dump: whatever survives must be internally intact.
        for e in rec.dump() {
            let intact = match e.kind {
                FlightEventKind::SubmitRead => e.shard == Some(1) && e.detail == 11,
                FlightEventKind::SubmitWrite => e.shard == Some(2) && e.detail == 22,
                _ => false,
            };
            assert!(intact, "torn or foreign event escaped dump(): {e:?}");
        }
        w1.join().unwrap();
        w2.join().unwrap();
        // Quiescent dump: both events, gapless strictly-increasing seqs.
        let quiet = rec.dump();
        assert_eq!(quiet.len(), 2);
        let seqs: Vec<u64> = quiet.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1], "sequence numbers are dense");
        assert_eq!(rec.recorded(), 2);
    })
    .expect("seqlock must hold on every interleaving");
    assert!(report.complete, "schedule space must be exhausted");
    assert!(
        report.schedules > 10,
        "expected many distinct interleavings, got {}",
        report.schedules
    );
}

/// Ring wrap-around: two writers share both slots of a capacity-2 ring.
/// `record` returns the claimed sequence number, which pins every dumped
/// payload to the exact call that claimed it — a dump may *skip* an
/// entry caught mid-overwrite, but may never mix one call's sequence
/// with another call's payload.
#[test]
fn recorder_wraparound_skips_but_never_mixes() {
    let report = sched::model(&quick(3), || {
        let rec = Arc::new(FlightRecorder::new(2));
        let log = Arc::new(StdMutex::new(Vec::<(u64, u64)>::new()));
        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let rec = Arc::clone(&rec);
                let log = Arc::clone(&log);
                vthread::spawn(move || {
                    for k in 0..2u64 {
                        let detail = 10 * (w + 1) + k;
                        let seq = rec.record(FlightEventKind::Steal, Some(w as usize), detail);
                        log.lock().unwrap().push((seq, detail));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(rec.recorded(), 4);
        let mut last_seq = None;
        for e in rec.dump() {
            assert!(
                log.contains(&(e.seq, e.detail)),
                "dump mixed sequence {} with payload {} (never recorded together)",
                e.seq,
                e.detail
            );
            assert!(last_seq < Some(e.seq), "dump must be strictly increasing");
            last_seq = Some(e.seq);
        }
    })
    .expect("wrap-around seqlock must hold on every interleaving");
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// ReadyQueue: pop / pop_half stealing and the dirty-requeue protocol.
// ---------------------------------------------------------------------------

/// A home driver drains with `pop` while a thief grabs `pop_half`: at
/// quiescence every slot ran exactly once — nothing lost, nothing run
/// twice, no slot owned by two drivers.
#[test]
fn ready_queue_steal_half_conserves_work() {
    let report = sched::model(&quick(3), || {
        let q = Arc::new(ReadyQueue::new());
        for _ in 0..4 {
            let s = q.register_slot();
            q.enqueue(s);
        }
        let qa = Arc::clone(&q);
        let ran_a = Arc::new(StdMutex::new(Vec::new()));
        let ra = Arc::clone(&ran_a);
        let home = vthread::spawn(move || {
            while let Some(s) = qa.pop() {
                ra.lock().unwrap().push(s);
                qa.finish(s, false);
            }
        });
        let qb = Arc::clone(&q);
        let ran_b = Arc::new(StdMutex::new(Vec::new()));
        let rb = Arc::clone(&ran_b);
        let thief = vthread::spawn(move || {
            let batch = qb.pop_half();
            assert!(batch.len() <= 2, "a thief takes at most half");
            for &s in &batch {
                rb.lock().unwrap().push(s);
                qb.finish(s, false);
            }
        });
        home.join().unwrap();
        thief.join().unwrap();
        let mut all: Vec<usize> = ran_a.lock().unwrap().clone();
        all.extend(ran_b.lock().unwrap().iter().copied());
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "each slot runs exactly once");
        assert!(q.is_empty());
    })
    .expect("work conservation must hold on every interleaving");
    assert!(report.complete);
    assert!(report.schedules > 10);
}

/// An enqueue racing a running slot must never be lost: `Running` flips
/// to `RunningDirty` and `finish` re-enqueues. Across the explored
/// schedules both resolutions of the race (enqueue lands before the pop,
/// or during the run) must actually occur.
#[test]
fn ready_queue_dirty_requeue_never_loses_a_wakeup() {
    let once = Arc::new(AtomicU64::new(0));
    let twice = Arc::new(AtomicU64::new(0));
    let once_in = Arc::clone(&once);
    let twice_in = Arc::clone(&twice);
    let report = sched::model(&quick(3), move || {
        let q = Arc::new(ReadyQueue::new());
        let slot = q.register_slot();
        q.enqueue(slot);
        let qw = Arc::clone(&q);
        let runs = Arc::new(StdMutex::new(0u32));
        let runs_w = Arc::clone(&runs);
        let worker = vthread::spawn(move || {
            while let Some(s) = qw.pop() {
                *runs_w.lock().unwrap() += 1;
                qw.finish(s, false);
            }
        });
        // Races the worker's pop/run/finish window.
        q.enqueue(slot);
        worker.join().unwrap();
        // The slot may still be queued if the re-enqueue landed after the
        // worker saw an empty queue; a late driver pass must drain it.
        while let Some(s) = q.pop() {
            *runs.lock().unwrap() += 1;
            q.finish(s, false);
        }
        let runs = *runs.lock().unwrap();
        assert!(
            runs == 1 || runs == 2,
            "slot must run once (coalesced) or twice (dirty), ran {runs}"
        );
        assert!(q.is_empty());
        match runs {
            // audit:allow(atomics-relaxed) — outcome tally read after the
            // model run completes; the DPOR harness serializes the rest.
            1 => once_in.fetch_add(1, Ordering::Relaxed),
            // audit:allow(atomics-relaxed) — outcome tally read after the
            // model run completes; the DPOR harness serializes the rest.
            _ => twice_in.fetch_add(1, Ordering::Relaxed),
        };
    })
    .expect("wakeups must never be lost");
    assert!(report.complete);
    assert!(
        // audit:allow(atomics-relaxed) — outcome tally read after the
        // model run completes; the DPOR harness serializes the rest.
        once.load(Ordering::Relaxed) > 0 && twice.load(Ordering::Relaxed) > 0,
        "both race resolutions must be exercised (coalesced {}, dirty {})",
        // audit:allow(atomics-relaxed) — outcome tally read after the
        // model run completes; the DPOR harness serializes the rest.
        once.load(Ordering::Relaxed),
        // audit:allow(atomics-relaxed) — outcome tally read after the
        // model run completes; the DPOR harness serializes the rest.
        twice.load(Ordering::Relaxed)
    );
}
