//! Protocol-explorer tests: exhaustive coverage of tiny ABD configs,
//! DPOR/naive agreement, and — via a deliberately buggy toy protocol —
//! that the explorer finds violations and shrinks them deterministically.

use rsb_consistency::Condition;
use rsb_fpsm::{
    BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId, OpRequest,
    OpResult, Payload, RmwId, Simulation,
};
use rsb_mc::explore::{explore, replay, shrink, write_op, ExploreConfig};
use rsb_mc::trace::Trace;
use rsb_registers::{Abd, AbdAtomic, RegisterConfig, RegisterProtocol};
use std::collections::HashSet;

fn abd_cfg() -> RegisterConfig {
    // n = 3 base objects, f = 1, replication (k = 1), 4-byte values.
    RegisterConfig::paper(1, 1, 4).unwrap()
}

// ---------------------------------------------------------------------------
// The planted bug: a toy protocol whose read returns the FIRST response
// instead of waiting for a quorum (and never writes back). A read that
// lands on the one base object a completed write did not reach returns
// stale data — a strong-regularity violation the explorer must find.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct FrStore {
    held: Option<(OpId, rsb_coding::Value)>,
}

#[derive(Debug, Clone)]
enum FrRmw {
    Put { op: OpId, value: rsb_coding::Value },
    Get,
}

#[derive(Debug, Clone)]
enum FrResp {
    Ack,
    Data(Option<(OpId, rsb_coding::Value)>),
}

impl Payload for FrStore {
    fn blocks(&self) -> Vec<BlockInstance> {
        self.held
            .as_ref()
            .map(|(op, v)| BlockInstance::new(*op, 0, v.size_bits()))
            .into_iter()
            .collect()
    }
}

impl Payload for FrRmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            FrRmw::Put { op, value } => vec![BlockInstance::new(*op, 0, value.size_bits())],
            FrRmw::Get => Vec::new(),
        }
    }
}

impl Payload for FrResp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            FrResp::Ack => Vec::new(),
            FrResp::Data(d) => d
                .as_ref()
                .map(|(op, v)| BlockInstance::new(*op, 0, v.size_bits()))
                .into_iter()
                .collect(),
        }
    }
}

impl ObjectState for FrStore {
    type Rmw = FrRmw;
    type Resp = FrResp;

    fn apply(&mut self, _client: ClientId, rmw: &FrRmw) -> FrResp {
        match rmw {
            FrRmw::Put { op, value } => {
                if self.held.as_ref().is_none_or(|(held, _)| op > held) {
                    self.held = Some((*op, value.clone()));
                }
                FrResp::Ack
            }
            FrRmw::Get => FrResp::Data(self.held.clone()),
        }
    }
}

#[derive(Debug)]
struct FrPending {
    op: OpId,
    mine: HashSet<RmwId>,
    acks: usize,
}

#[derive(Debug)]
struct FrClient {
    n: usize,
    /// How many base objects a read queries (the planted bug is
    /// returning the *first* response regardless; a fan-out of 1 just
    /// keeps the schedule space small enough for naive enumeration).
    read_fanout: usize,
    v0: rsb_coding::Value,
    current: Option<FrPending>,
}

impl ClientLogic for FrClient {
    type State = FrStore;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<FrStore>) {
        let mut mine = HashSet::new();
        let fanout = match req {
            OpRequest::Write(_) => self.n,
            OpRequest::Read => self.read_fanout,
        };
        for i in 0..fanout {
            let rmw = match &req {
                OpRequest::Write(v) => FrRmw::Put {
                    op,
                    value: v.clone(),
                },
                OpRequest::Read => FrRmw::Get,
            };
            mine.insert(eff.trigger(ObjectId(i), rmw));
        }
        self.current = Some(FrPending { op, mine, acks: 0 });
    }

    fn on_response(&mut self, op: OpId, rmw: RmwId, resp: FrResp, eff: &mut Effects<FrStore>) {
        let Some(cur) = self.current.as_mut() else {
            return;
        };
        if cur.op != op || !cur.mine.contains(&rmw) {
            return;
        }
        match resp {
            // Writes wait for a majority of acks: that part is sound.
            FrResp::Ack => {
                cur.acks += 1;
                if cur.acks > self.n / 2 {
                    eff.complete(OpResult::Write);
                    self.current = None;
                }
            }
            // THE BUG: a read returns on the first response, whatever it
            // says, instead of collecting a quorum and taking the newest.
            FrResp::Data(d) => {
                let result = match d {
                    Some((_, v)) => OpResult::Read(v),
                    None => OpResult::Read(self.v0.clone()),
                };
                eff.complete(result);
                self.current = None;
            }
        }
    }
}

#[derive(Debug)]
struct FirstResponse {
    cfg: RegisterConfig,
    read_fanout: usize,
}

impl FirstResponse {
    fn new(cfg: RegisterConfig) -> Self {
        let read_fanout = cfg.n;
        FirstResponse { cfg, read_fanout }
    }
}

impl RegisterProtocol for FirstResponse {
    type Object = FrStore;
    type Client = FrClient;

    fn name(&self) -> &'static str {
        "first-response"
    }

    fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn new_sim(&self) -> Simulation<FrStore, FrClient> {
        Simulation::new(self.cfg.n, |_| FrStore::default())
    }

    fn add_client(&self, sim: &mut Simulation<FrStore, FrClient>) -> ClientId {
        sim.add_client(FrClient {
            n: self.cfg.n,
            read_fanout: self.read_fanout,
            v0: self.cfg.initial_value(),
            current: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Exhaustive sweeps of correct protocols.
// ---------------------------------------------------------------------------

#[test]
fn abd_two_clients_three_objects_is_strongly_regular_on_every_schedule() {
    let proto = Abd::new(abd_cfg());
    let scripts = vec![vec![write_op(0, 0, 4)], vec![OpRequest::Read]];
    let report = explore(&proto, &scripts, &ExploreConfig::default());
    assert!(report.exhausted, "schedule space must be fully covered");
    assert!(
        report.ok(),
        "ABD must be strongly regular on every schedule: {:?}",
        report.violations
    );
    assert!(report.schedules > 0);
}

#[test]
fn dpor_agrees_with_naive_enumeration_and_prunes() {
    // Reads query a single base object so the naive enumeration also
    // finishes; the bug (trusting the first response) is still there —
    // the write quorum may exclude the one object reads look at.
    let proto = FirstResponse {
        cfg: abd_cfg(),
        read_fanout: 1,
    };
    let scripts = vec![vec![write_op(0, 0, 4)], vec![OpRequest::Read]];
    let base = ExploreConfig {
        condition: Condition::StrongRegularity,
        stop_on_violation: false,
        ..ExploreConfig::default()
    };
    let dpor = explore(&proto, &scripts, &base);
    let naive = explore(
        &proto,
        &scripts,
        &ExploreConfig {
            dpor: false,
            ..base
        },
    );
    assert!(dpor.exhausted && naive.exhausted);
    // Both must agree on whether the protocol is buggy (it is).
    assert!(!dpor.ok() && !naive.ok());
    assert!(
        dpor.schedules <= naive.schedules,
        "DPOR must not explore more than naive"
    );
    assert!(
        dpor.schedules < naive.schedules,
        "DPOR should prune something here (dpor {} vs naive {})",
        dpor.schedules,
        naive.schedules
    );
}

// ---------------------------------------------------------------------------
// Violation finding, shrinking, replay.
// ---------------------------------------------------------------------------

#[test]
fn explorer_finds_the_planted_regularity_bug_and_shrinks_deterministically() {
    let proto = FirstResponse::new(abd_cfg());
    let scripts = vec![vec![write_op(0, 0, 4)], vec![OpRequest::Read]];
    let cfg = ExploreConfig::default();
    let report = explore(&proto, &scripts, &cfg);
    let cx = report
        .violations
        .first()
        .expect("the planted bug must be found");
    assert!(
        cx.message.contains("read") || !cx.message.is_empty(),
        "violation message should describe the failure: {}",
        cx.message
    );

    // The raw counterexample replays to a violation…
    let raw = replay(&proto, &scripts, &cx.trace, cfg.condition);
    assert_eq!(raw.skipped, 0, "explorer traces replay exactly");
    assert!(raw.violation.is_some());

    // …the shrunk one still does, is no longer, and is stable across runs.
    let small = shrink(&proto, &scripts, &cx.trace, cfg.condition);
    assert!(small.len() <= cx.trace.len());
    let again = shrink(&proto, &scripts, &cx.trace, cfg.condition);
    assert_eq!(small, again, "shrinking must be deterministic");
    let replayed = replay(&proto, &scripts, &small, cfg.condition);
    assert_eq!(replayed.skipped, 0);
    assert!(replayed.violation.is_some());

    // And a second explorer run lands on the identical counterexample.
    let report2 = explore(&proto, &scripts, &cfg);
    assert_eq!(report2.violations[0].trace, cx.trace);
}

#[test]
fn shrunk_counterexample_round_trips_through_text() {
    let proto = FirstResponse::new(abd_cfg());
    let scripts = vec![vec![write_op(0, 0, 4)], vec![OpRequest::Read]];
    let cfg = ExploreConfig::default();
    let report = explore(&proto, &scripts, &cfg);
    let small = shrink(&proto, &scripts, &report.violations[0].trace, cfg.condition);
    // The workflow a failing CI run supports: paste the printed trace
    // into a test and re-execute it.
    let text = small.to_string();
    let parsed: Trace = text.parse().unwrap();
    assert_eq!(parsed, small);
    let out = replay(&proto, &scripts, &parsed, cfg.condition);
    assert!(out.violation.is_some(), "pasted trace still violates");
}

// ---------------------------------------------------------------------------
// Atomicity: plain ABD shows a new/old inversion; AbdAtomic does not.
// ---------------------------------------------------------------------------

#[test]
fn plain_abd_read_is_not_atomic_with_two_readers() {
    let proto = Abd::new(abd_cfg());
    // Writer plus two readers: one reader observes the in-flight write
    // while the other, strictly later, still reads v₀ — fine for strong
    // regularity, a new/old inversion for linearizability. The schedule
    // is scripted symbolically: the writer's ReadTs round reaches its
    // quorum (labels 0.0–0.2), the Store round (labels 0.3–0.5) lands on
    // base object 0 only, reader 1 queries objects 0 and 1 (seeing the
    // new value), and reader 2 — invoked after reader 1 returned —
    // queries objects 1 and 2 (seeing only v₀).
    let scripts = vec![
        vec![write_op(0, 0, 4)],
        vec![OpRequest::Read],
        vec![OpRequest::Read],
    ];
    let inversion: Trace = "i0.0 a0.0 d0.0 a0.1 d0.1 a0.3 \
                            i1.0 a1.0 a1.1 d1.0 d1.1 \
                            i2.0 a2.1 a2.2 d2.1 d2.2"
        .parse()
        .unwrap();
    let out = replay(&proto, &scripts, &inversion, Condition::Atomicity);
    assert_eq!(out.skipped, 0, "the scripted schedule must fully resolve");
    assert!(
        out.violation.is_some(),
        "ABD without read write-back must not linearize"
    );
    // The very same schedule satisfies the protocol's advertised
    // guarantee, strong regularity.
    let regular = replay(&proto, &scripts, &inversion, Condition::StrongRegularity);
    assert_eq!(regular.skipped, 0);
    assert!(regular.violation.is_none(), "{:?}", regular.violation);
}

#[test]
fn abd_atomic_write_back_restores_linearizability() {
    let proto = AbdAtomic::new(abd_cfg());
    let scripts = vec![
        vec![write_op(0, 0, 4)],
        vec![OpRequest::Read],
        vec![OpRequest::Read],
    ];
    let cfg = ExploreConfig {
        condition: Condition::Atomicity,
        // The write-back phase deepens schedules considerably; a large
        // budget still covers a meaningful slice if exhaustion is out of
        // reach.
        max_schedules: 60_000,
        stop_on_violation: true,
        ..ExploreConfig::default()
    };
    let report = explore(&proto, &scripts, &cfg);
    assert!(
        report.ok(),
        "AbdAtomic must linearize: {:?}",
        report.violations
    );
    assert!(report.schedules > 0);
}
