//! Symbolic schedule traces: replayable, shrinkable counterexamples.
//!
//! The explorer cannot store raw [`rsb_fpsm::SimEvent`]s in a
//! counterexample: RMW ids are allocated dynamically, so the same logical
//! schedule gets different ids on every fresh simulation. A
//! [`TraceEvent`] instead names events *symbolically* — by client and
//! per-client ordinal — which is stable across replays:
//!
//! * `i<c>.<k>` — client `c` invokes its `k`-th scripted operation;
//! * `a<c>.<t>` — the `t`-th RMW ever triggered by client `c` is applied
//!   at its base object;
//! * `d<c>.<t>` — that RMW's response is delivered back to client `c`.
//!
//! A [`Trace`] serializes to a single line (`i0.0 a0.0 d0.0 …`) that can
//! be pasted into a `#[test]` and re-executed with
//! [`replay`](crate::explore::replay).

use std::fmt;
use std::str::FromStr;

/// One symbolically-named schedule event.
///
/// The derived ordering (`Invoke < Apply < Deliver`, then by client, then
/// by ordinal) is the *canonical* order shrinking normalizes toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEvent {
    /// Client `client` invokes its `op`-th scripted operation.
    Invoke {
        /// Client index (script order).
        client: usize,
        /// Ordinal into that client's script.
        op: usize,
    },
    /// The `trigger`-th RMW triggered by `client` is applied.
    Apply {
        /// Client index whose RMW this is.
        client: usize,
        /// Per-client trigger ordinal.
        trigger: usize,
    },
    /// The `trigger`-th RMW triggered by `client` is delivered back.
    Deliver {
        /// Client index whose RMW this is.
        client: usize,
        /// Per-client trigger ordinal.
        trigger: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Invoke { client, op } => write!(f, "i{client}.{op}"),
            TraceEvent::Apply { client, trigger } => write!(f, "a{client}.{trigger}"),
            TraceEvent::Deliver { client, trigger } => write!(f, "d{client}.{trigger}"),
        }
    }
}

/// Error parsing a [`TraceEvent`] or [`Trace`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError(String);

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad trace event {:?} (want e.g. `i0.0`/`a1.2`/`d1.2`)",
            self.0
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for TraceEvent {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseTraceError(s.to_owned());
        let rest = s.get(1..).ok_or_else(bad)?;
        let (a, b) = rest.split_once('.').ok_or_else(bad)?;
        let a: usize = a.parse().map_err(|_| bad())?;
        let b: usize = b.parse().map_err(|_| bad())?;
        match s.as_bytes().first() {
            Some(b'i') => Ok(TraceEvent::Invoke { client: a, op: b }),
            Some(b'a') => Ok(TraceEvent::Apply {
                client: a,
                trigger: b,
            }),
            Some(b'd') => Ok(TraceEvent::Deliver {
                client: a,
                trigger: b,
            }),
            _ => Err(bad()),
        }
    }
}

/// A whole schedule: an ordered list of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Trace {
    /// The events, in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps an event list.
    #[must_use]
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Trace { events }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let events = s
            .split_whitespace()
            .map(TraceEvent::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let t: Trace = "i0.0 a0.0 i1.0 a1.0 d1.0 d0.0".parse().unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.events[0], TraceEvent::Invoke { client: 0, op: 0 });
        assert_eq!(
            t.events[4],
            TraceEvent::Deliver {
                client: 1,
                trigger: 0
            }
        );
        assert_eq!(t.to_string().parse::<Trace>().unwrap(), t);
    }

    #[test]
    fn rejects_malformed_events() {
        assert!("x0.0".parse::<TraceEvent>().is_err());
        assert!("i0".parse::<TraceEvent>().is_err());
        assert!("i0.z".parse::<TraceEvent>().is_err());
        assert!("".parse::<TraceEvent>().is_err());
    }

    #[test]
    fn canonical_order_is_invoke_apply_deliver_then_indices() {
        let i = TraceEvent::Invoke { client: 1, op: 0 };
        let a = TraceEvent::Apply {
            client: 0,
            trigger: 9,
        };
        let d = TraceEvent::Deliver {
            client: 0,
            trigger: 0,
        };
        assert!(i < a && a < d);
        assert!(
            TraceEvent::Apply {
                client: 0,
                trigger: 1
            } < TraceEvent::Apply {
                client: 1,
                trigger: 0
            }
        );
    }
}
