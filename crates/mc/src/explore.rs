//! The protocol explorer: stateless model checking with DPOR over the
//! `rsb-fpsm` simulator.
//!
//! For a tiny configuration (a couple of clients, a handful of base
//! objects) the explorer enumerates message-delivery interleavings of a
//! [`RegisterProtocol`] by depth-first search with *replay*: the
//! simulator is not cloneable, so backtracking re-executes the schedule
//! prefix from a fresh simulation. Every maximal schedule's history is
//! checked against a [`Condition`]; a violation is captured as a
//! symbolic [`Trace`], shrunk ([`shrink`]) and replayable ([`replay`]).
//!
//! # Schedule events and dependence
//!
//! A schedule is a sequence of three event kinds (see
//! [`TraceEvent`]): a client **invoking** its next scripted operation, an
//! in-flight RMW being **applied** at its base object, and an applied
//! RMW's response being **delivered** back to its client. Dynamic
//! partial-order reduction (sleep sets plus backtrack sets in the style
//! of Flanagan–Godefroid) prunes schedules that only commute independent
//! events. Two events are *dependent* when swapping them can change the
//! outcome or the history's real-time precedence:
//!
//! * `Apply`/`Apply` on the **same base object** (RMW order is the
//!   object's serialization);
//! * `Deliver`/`Deliver` to the **same client** (response order drives
//!   the client automaton);
//! * `Invoke` vs. a **completing** `Deliver` (their order decides whether
//!   the completed operation precedes the invoked one in real time);
//! * everything else commutes, with trigger→apply→deliver causality
//!   tracked separately as happens-before edges.

use std::collections::{BTreeSet, HashMap};

use rsb_consistency::{check, Condition, History};
use rsb_fpsm::{ClientId, OpRequest, RmwId, SimEvent, Simulation};
use rsb_registers::RegisterProtocol;

use crate::trace::{Trace, TraceEvent};

/// Explorer configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Enable DPOR pruning (sleep sets + backtrack sets). With `false`
    /// every enabled event is explored from every state — the naive
    /// schedule enumeration, useful only to measure the pruning factor.
    pub dpor: bool,
    /// The safety condition every schedule's history is checked against.
    pub condition: Condition,
    /// Stop after this many maximal schedules.
    pub max_schedules: u64,
    /// Stop after this many executed events (including replay work).
    pub max_events: u64,
    /// Return at the first violation instead of exploring on.
    pub stop_on_violation: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            dpor: true,
            condition: Condition::StrongRegularity,
            max_schedules: 1_000_000,
            max_events: 200_000_000,
            stop_on_violation: true,
        }
    }
}

/// A violating schedule found by [`explore`].
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The full violating schedule, symbolically.
    pub trace: Trace,
    /// The checker's violation message.
    pub message: String,
    /// Maximal schedules explored before this one.
    pub schedules_before: u64,
}

/// What [`explore`] did.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Maximal schedules whose history was checked.
    pub schedules: u64,
    /// Total events executed, replays included.
    pub events: u64,
    /// Deepest schedule, in events.
    pub max_depth: usize,
    /// States abandoned because every enabled event was in the sleep set
    /// (redundant executions DPOR proved already covered).
    pub sleep_blocked: u64,
    /// `true` when the schedule space was exhausted within budget.
    pub exhausted: bool,
    /// Violations found (at most one if `stop_on_violation`).
    pub violations: Vec<Counterexample>,
}

impl ExploreReport {
    /// Whether every checked schedule satisfied the condition.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A scripted write carrying a value unique to `(client, op)` — strong
/// checks need pairwise-distinct written values.
#[must_use]
pub fn write_op(client: usize, op: usize, len: usize) -> OpRequest {
    OpRequest::Write(rsb_coding::Value::seeded(
        1 + (client as u64) * 1000 + op as u64,
        len,
    ))
}

/// Kind of a [`TraceEvent`], for dependence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Invoke,
    Apply,
    Deliver,
}

/// What is known about an event for dependence/happens-before purposes.
#[derive(Debug, Clone)]
struct EvInfo {
    ev: TraceEvent,
    kind: Kind,
    /// The client whose automaton or RMW this event belongs to.
    client: usize,
    /// Target base object (Apply only).
    object: Option<usize>,
    /// Whether the event completed an operation. `None` = not executed
    /// yet, unknown — callers must be conservative.
    completed: Option<bool>,
    /// RMW labels `(client, trigger)` created by this event.
    born: Vec<(usize, usize)>,
}

/// True when the pair is definitely dependent (order can matter). With
/// `completed == None` on either side the answer is conservative
/// (dependent), which is sound for sleep-set filtering.
fn dependent(a: &EvInfo, b: &EvInfo) -> bool {
    match (a.kind, b.kind) {
        (Kind::Apply, Kind::Apply) => a.object == b.object,
        (Kind::Deliver, Kind::Deliver) => a.client == b.client,
        (Kind::Invoke, Kind::Deliver) => b.completed.unwrap_or(true),
        (Kind::Deliver, Kind::Invoke) => a.completed.unwrap_or(true),
        (Kind::Invoke, Kind::Invoke) => a.completed.unwrap_or(true) || b.completed.unwrap_or(true),
        // Apply vs Invoke/Deliver of a *different* RMW commutes; the
        // same-RMW pair is never co-enabled and is ordered by the causal
        // edges below.
        _ => same_rmw(a, b),
    }
}

/// Apply and Deliver of the same RMW label.
fn same_rmw(a: &EvInfo, b: &EvInfo) -> bool {
    matches!(
        (a.ev, b.ev),
        (
            TraceEvent::Apply { client: c1, trigger: t1 },
            TraceEvent::Deliver { client: c2, trigger: t2 },
        ) | (
            TraceEvent::Deliver { client: c1, trigger: t1 },
            TraceEvent::Apply { client: c2, trigger: t2 },
        ) if c1 == c2 && t1 == t2
    )
}

/// Direct happens-before edge from executed `a` to executed `b` (`a` ran
/// earlier in the schedule): dependence, or trigger→apply, or
/// apply→deliver causality.
fn direct_hb(a: &EvInfo, b: &EvInfo) -> bool {
    if dependent(a, b) {
        return true;
    }
    if let TraceEvent::Apply { client, trigger } = b.ev {
        if a.born.contains(&(client, trigger)) {
            return true;
        }
    }
    same_rmw(a, b)
}

/// A small growable bitset over schedule indices.
#[derive(Debug, Clone, Default)]
struct Bits(Vec<u64>);

impl Bits {
    fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.0.len() {
            self.0.resize(w + 1, 0);
        }
        self.0[w] |= 1 << (i % 64);
    }
    fn get(&self, i: usize) -> bool {
        self.0.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
    }
    fn union(&mut self, other: &Bits) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// One live execution of a scenario: a fresh simulation plus the symbolic
/// label ↔ runtime `RmwId` mapping rebuilt as the schedule runs.
struct Exec<'a, P: RegisterProtocol> {
    sim: Simulation<P::Object, P::Client>,
    clients: Vec<ClientId>,
    scripts: &'a [Vec<OpRequest>],
    /// Per client: next script ordinal to invoke.
    next_op: Vec<usize>,
    /// Per client: trigger ordinal → runtime RMW id.
    trigger_ids: Vec<Vec<RmwId>>,
    /// Runtime RMW id → (client index, trigger ordinal, object index).
    labels: HashMap<u64, (usize, usize, usize)>,
    /// RMW ids below this are labeled.
    seen: u64,
}

impl<'a, P: RegisterProtocol> Exec<'a, P> {
    fn new(proto: &P, scripts: &'a [Vec<OpRequest>]) -> Self {
        let mut sim = proto.new_sim();
        let clients: Vec<ClientId> = scripts.iter().map(|_| proto.add_client(&mut sim)).collect();
        let k = clients.len();
        Exec {
            sim,
            clients,
            scripts,
            next_op: vec![0; k],
            trigger_ids: vec![Vec::new(); k],
            labels: HashMap::new(),
            seen: 0,
        }
    }

    /// Labels RMWs triggered since the last call. New ids are labeled in
    /// id (= trigger) order, so labels are deterministic across replays.
    fn absorb(&mut self) -> Vec<(usize, usize)> {
        let mut fresh: Vec<_> = self
            .sim
            .inflight_rmws()
            .into_iter()
            .filter(|info| info.rmw.0 >= self.seen)
            .collect();
        fresh.sort_by_key(|info| info.rmw.0);
        let mut born = Vec::with_capacity(fresh.len());
        for info in fresh {
            let ci = self
                .clients
                .iter()
                .position(|c| *c == info.client)
                .expect("RMW from unknown client");
            let trigger = self.trigger_ids[ci].len();
            self.trigger_ids[ci].push(info.rmw);
            self.labels.insert(info.rmw.0, (ci, trigger, info.object.0));
            self.seen = self.seen.max(info.rmw.0 + 1);
            born.push((ci, trigger));
        }
        born
    }

    /// All schedulable events at the current state, in canonical order.
    fn enabled(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for (ci, client) in self.clients.iter().enumerate() {
            if self.next_op[ci] < self.scripts[ci].len()
                && !self.sim.client_crashed(*client)
                && self.sim.outstanding_op(*client).is_none()
            {
                out.push(TraceEvent::Invoke {
                    client: ci,
                    op: self.next_op[ci],
                });
            }
        }
        for ev in self.sim.enabled_events() {
            let id = match ev {
                SimEvent::Apply(id) | SimEvent::Deliver(id) => id,
            };
            let &(client, trigger, _) = self.labels.get(&id.0).expect("unlabeled RMW");
            out.push(match ev {
                SimEvent::Apply(_) => TraceEvent::Apply { client, trigger },
                SimEvent::Deliver(_) => TraceEvent::Deliver { client, trigger },
            });
        }
        out.sort_unstable();
        out
    }

    /// Executes one symbolic event if it resolves to an enabled concrete
    /// action; returns `None` (state unchanged) otherwise.
    fn execute(&mut self, ev: TraceEvent) -> Option<EvInfo> {
        match ev {
            TraceEvent::Invoke { client, op } => {
                if client >= self.clients.len()
                    || self.next_op[client] != op
                    || op >= self.scripts[client].len()
                {
                    return None;
                }
                let req = self.scripts[client][op].clone();
                self.sim.invoke(self.clients[client], req).ok()?;
                self.next_op[client] = op + 1;
                let born = self.absorb();
                let completed = self.sim.outstanding_op(self.clients[client]).is_none();
                Some(EvInfo {
                    ev,
                    kind: Kind::Invoke,
                    client,
                    object: None,
                    completed: Some(completed),
                    born,
                })
            }
            TraceEvent::Apply { client, trigger } => {
                let id = *self.trigger_ids.get(client)?.get(trigger)?;
                let object = self.labels.get(&id.0).map(|&(_, _, o)| o);
                self.sim.step(SimEvent::Apply(id)).ok()?;
                Some(EvInfo {
                    ev,
                    kind: Kind::Apply,
                    client,
                    object,
                    completed: Some(false),
                    born: Vec::new(),
                })
            }
            TraceEvent::Deliver { client, trigger } => {
                let id = *self.trigger_ids.get(client)?.get(trigger)?;
                let busy_before = self.sim.outstanding_op(self.clients[client]).is_some();
                self.sim.step(SimEvent::Deliver(id)).ok()?;
                let born = self.absorb();
                let completed =
                    busy_before && self.sim.outstanding_op(self.clients[client]).is_none();
                Some(EvInfo {
                    ev,
                    kind: Kind::Deliver,
                    client,
                    object: None,
                    completed: Some(completed),
                    born,
                })
            }
        }
    }

    /// The history so far, checked against `condition`. `Some(message)`
    /// on violation (a malformed history is reported as one too — the
    /// simulator should never produce it).
    fn violation(&self, proto: &P, condition: Condition) -> Option<String> {
        let records = self.sim.full_history();
        match History::from_fpsm(proto.config().initial_value(), &records) {
            Err(e) => Some(format!("malformed history: {e}")),
            Ok(h) => check(&h, condition).err().map(|v| v.to_string()),
        }
    }
}

/// A pseudo-[`EvInfo`] for a not-yet-executed event, with conservative
/// unknowns. Object of an `Apply` is known once its RMW is labeled.
fn pending_info<P: RegisterProtocol>(exec: &Exec<'_, P>, ev: TraceEvent) -> EvInfo {
    let (kind, client, object) = match ev {
        TraceEvent::Invoke { client, .. } => (Kind::Invoke, client, None),
        TraceEvent::Apply { client, trigger } => {
            let object = exec.trigger_ids[client]
                .get(trigger)
                .and_then(|id| exec.labels.get(&id.0))
                .map(|&(_, _, o)| o);
            (Kind::Apply, client, object)
        }
        TraceEvent::Deliver { client, .. } => (Kind::Deliver, client, None),
    };
    EvInfo {
        ev,
        kind,
        client,
        object,
        completed: None,
        born: Vec::new(),
    }
}

/// One DFS frame: the state reached by executing every lower frame's
/// `executed` event, in stack order.
#[derive(Debug)]
struct Frame {
    enabled: Vec<TraceEvent>,
    /// Events to explore from here (DPOR adds race alternatives).
    backtrack: BTreeSet<TraceEvent>,
    /// Events whose behaviors from here are already covered.
    sleep: BTreeSet<TraceEvent>,
    /// The event currently being explored from this state, with its
    /// execution record and happens-before clock.
    executed: Option<(EvInfo, Bits)>,
    /// Whether anything was ever explored from this state.
    explored_any: bool,
}

/// Explores the schedule space of `proto` under per-client operation
/// `scripts`, checking `cfg.condition` on every maximal schedule.
///
/// # Panics
///
/// Panics if `scripts` is empty (nothing to schedule).
pub fn explore<P: RegisterProtocol>(
    proto: &P,
    scripts: &[Vec<OpRequest>],
    cfg: &ExploreConfig,
) -> ExploreReport {
    assert!(!scripts.is_empty(), "explore needs at least one client");
    let mut report = ExploreReport {
        schedules: 0,
        events: 0,
        max_depth: 0,
        sleep_blocked: 0,
        exhausted: true,
        violations: Vec::new(),
    };

    let mut exec = Exec::new(proto, scripts);
    let mut stack: Vec<Frame> = vec![new_frame(&exec, BTreeSet::new(), cfg.dpor)];
    // Whether `exec` currently reflects the stack's executed prefix.
    let mut fresh = true;

    'dfs: loop {
        // Pick the next unexplored event at the top frame.
        let top = stack.len() - 1;
        let pick = stack[top]
            .backtrack
            .iter()
            .find(|e| !stack[top].sleep.contains(*e))
            .copied();

        let Some(ev) = pick else {
            // Nothing (left) to explore from this state.
            if stack[top].enabled.is_empty() {
                // Maximal schedule: check it. A leaf is only ever visited
                // once, straight after its push, so `exec` is current.
                debug_assert!(fresh);
                report.schedules += 1;
                report.max_depth = report.max_depth.max(top);
                let violation = exec.violation(proto, cfg.condition).or_else(|| {
                    (!exec.sim.is_quiescent())
                        .then(|| "stuck: no enabled events but operations outstanding".to_owned())
                });
                if let Some(message) = violation {
                    report.violations.push(Counterexample {
                        trace: current_trace(&stack[..top]),
                        message,
                        schedules_before: report.schedules - 1,
                    });
                    if cfg.stop_on_violation {
                        report.exhausted = false;
                        break 'dfs;
                    }
                }
                if report.schedules >= cfg.max_schedules {
                    report.exhausted = false;
                    break 'dfs;
                }
            } else if !stack[top].explored_any {
                report.sleep_blocked += 1;
            }
            // Pop; move the parent's explored event into its sleep set.
            stack.pop();
            let Some(parent) = stack.last_mut() else {
                break 'dfs;
            };
            let (info, _) = parent.executed.take().expect("parent must have executed");
            parent.sleep.insert(info.ev);
            fresh = false;
            continue 'dfs;
        };

        // Descend through `ev`.
        if !fresh {
            exec = rebuild(proto, scripts, &stack[..top]);
            report.events += top as u64;
            fresh = true;
        }
        let info = exec
            .execute(ev)
            .expect("event from enabled set must execute");
        report.events += 1;
        if report.events >= cfg.max_events {
            report.exhausted = false;
            break 'dfs;
        }

        // Happens-before clock of the new event.
        let mut hb = Bits::default();
        for (j, frame) in stack.iter().enumerate().take(top) {
            let (prev, prev_hb) = frame.executed.as_ref().expect("lower frames executed");
            if direct_hb(prev, &info) {
                hb.union(prev_hb);
                hb.set(j);
            }
        }

        if cfg.dpor {
            dpor_update(&mut stack, &info, &hb);
        }

        // Child sleep set: parent sleep events that commute with `ev`.
        // Sleep inheritance IS the pruning — naive mode starts every
        // child awake so the enumeration stays the full schedule tree
        // (parent sleep still acts as sibling done-tracking either way).
        let child_sleep: BTreeSet<TraceEvent> = if cfg.dpor {
            stack[top]
                .sleep
                .iter()
                .filter(|t| !dependent(&pending_info(&exec, **t), &info))
                .copied()
                .collect()
        } else {
            BTreeSet::new()
        };

        stack[top].executed = Some((info, hb));
        stack[top].explored_any = true;
        let frame = new_frame(&exec, child_sleep, cfg.dpor);
        stack.push(frame);
    }

    report
}

/// Builds the frame for the current `exec` state. Under DPOR only one
/// seed event goes into `backtrack` (alternatives are added on demand by
/// race detection); naive mode explores everything.
fn new_frame<P: RegisterProtocol>(
    exec: &Exec<'_, P>,
    sleep: BTreeSet<TraceEvent>,
    dpor: bool,
) -> Frame {
    let enabled = exec.enabled();
    let backtrack: BTreeSet<TraceEvent> = if dpor {
        enabled
            .iter()
            .find(|e| !sleep.contains(*e))
            .into_iter()
            .copied()
            .collect()
    } else {
        enabled.iter().copied().collect()
    };
    Frame {
        enabled,
        backtrack,
        sleep,
        executed: None,
        explored_any: false,
    }
}

/// The schedule executed so far: the `executed` event of each frame.
fn current_trace(frames: &[Frame]) -> Trace {
    Trace::new(
        frames
            .iter()
            .map(|f| f.executed.as_ref().expect("executed frame").0.ev)
            .collect(),
    )
}

/// Replays the executed prefix of `frames` on a fresh simulation.
fn rebuild<'a, P: RegisterProtocol>(
    proto: &P,
    scripts: &'a [Vec<OpRequest>],
    frames: &[Frame],
) -> Exec<'a, P> {
    let mut exec = Exec::new(proto, scripts);
    for f in frames {
        let ev = f.executed.as_ref().expect("executed frame").0.ev;
        exec.execute(ev)
            .expect("replaying an executed prefix cannot fail");
    }
    exec
}

/// Flanagan–Godefroid backtrack-set update for the event `info` just
/// executed at depth `stack.len() - 1`: for every earlier dependent event
/// not already ordered by happens-before, schedule an alternative at that
/// earlier state.
fn dpor_update(stack: &mut [Frame], info: &EvInfo, hb: &Bits) {
    let i = stack.len() - 1;
    for j in (0..i).rev() {
        let dep = {
            let (prev, _) = stack[j].executed.as_ref().expect("executed");
            dependent(prev, info)
        };
        if !dep {
            continue;
        }
        // Is j ordered before `info` through some other event? Union the
        // clocks of every direct predecessor except j itself.
        let mut without_j = Bits::default();
        for (k, frame) in stack.iter().enumerate().take(i) {
            if k == j {
                continue;
            }
            let (prev, prev_hb) = frame.executed.as_ref().expect("executed");
            if direct_hb(prev, info) {
                without_j.union(prev_hb);
                without_j.set(k);
            }
        }
        if without_j.get(j) {
            continue; // already ordered; not a race
        }
        // Add to frame j an event that initiates `info`'s cause chain:
        // the earliest event at or after j+1 that happens-before (or is)
        // `info` and was enabled at j; all of enabled(j) as a fallback.
        let mut chosen = None;
        for (k, frame) in stack.iter().enumerate().skip(j + 1) {
            let in_cause = k == i || hb.get(k);
            if !in_cause {
                continue;
            }
            let ev_k = frame.executed.as_ref().map_or(info.ev, |(e, _)| e.ev);
            if stack[j].enabled.contains(&ev_k) {
                chosen = Some(ev_k);
                break;
            }
        }
        if let Some(ev) = chosen {
            stack[j].backtrack.insert(ev);
        } else {
            let all: Vec<TraceEvent> = stack[j].enabled.clone();
            stack[j].backtrack.extend(all);
        }
    }
}

/// Outcome of replaying a [`Trace`].
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The events that actually executed (unresolvable ones skipped).
    pub executed: Trace,
    /// How many events of the input did not resolve.
    pub skipped: usize,
    /// The condition violation after the replay, if any.
    pub violation: Option<String>,
}

/// Replays `trace` against a fresh scenario, skipping events that do not
/// resolve, and checks `condition` on the resulting history.
pub fn replay<P: RegisterProtocol>(
    proto: &P,
    scripts: &[Vec<OpRequest>],
    trace: &Trace,
    condition: Condition,
) -> ReplayOutcome {
    let mut exec = Exec::new(proto, scripts);
    let mut executed = Vec::new();
    let mut skipped = 0;
    for &ev in &trace.events {
        if exec.execute(ev).is_some() {
            executed.push(ev);
        } else {
            skipped += 1;
        }
    }
    let violation = exec.violation(proto, condition);
    ReplayOutcome {
        executed: Trace::new(executed),
        skipped,
        violation,
    }
}

/// Shrinks a violating `trace`: greedy event deletion (with cascading
/// skips) to a locally-minimal length, then adjacent swaps toward the
/// canonical event order. Deterministic in its inputs; the result still
/// violates `condition` under [`replay`].
pub fn shrink<P: RegisterProtocol>(
    proto: &P,
    scripts: &[Vec<OpRequest>],
    trace: &Trace,
    condition: Condition,
) -> Trace {
    // Re-execute leniently: a candidate "violates" when the events that
    // resolve still produce a violating history.
    let try_events = |events: &[TraceEvent]| -> Option<Vec<TraceEvent>> {
        let out = replay(proto, scripts, &Trace::new(events.to_vec()), condition);
        out.violation.is_some().then_some(out.executed.events)
    };

    let Some(mut cur) = try_events(&trace.events) else {
        return trace.clone(); // not a violation: nothing to shrink
    };

    loop {
        let mut changed = false;

        // Deletion pass: drop one event at a time, keep the (possibly
        // further-cascaded) result when the violation persists.
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            match try_events(&cand) {
                Some(executed) if executed.len() < cur.len() => {
                    cur = executed;
                    changed = true;
                }
                _ => i += 1,
            }
        }

        // Normalization pass: bubble adjacent out-of-canonical-order
        // pairs when the swap executes fully and still violates.
        let mut j = 0;
        while j + 1 < cur.len() {
            if cur[j + 1] < cur[j] {
                let mut cand = cur.clone();
                cand.swap(j, j + 1);
                if let Some(executed) = try_events(&cand) {
                    if executed == cand {
                        cur = executed;
                        changed = true;
                        j = j.saturating_sub(1);
                        continue;
                    }
                }
            }
            j += 1;
        }

        if !changed {
            break;
        }
    }
    Trace::new(cur)
}
