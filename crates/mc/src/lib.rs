//! Model checking for the reliable-storage stack, two layers deep.
//!
//! **Protocol layer** ([`explore`]): a depth-first enumerator of
//! message-delivery interleavings over `rsb-fpsm`'s deterministic
//! [`rsb_fpsm::Simulation`], pruned with dynamic partial-order reduction
//! (persistent/backtrack sets plus sleep sets, with dependence keyed on
//! "same base object" / "same client"), checking an `rsb-consistency`
//! condition on every explored schedule. Counterexamples are shrunk
//! (greedy event deletion, then reordering toward the canonical
//! delivery order) and serialized as replayable [`trace::Trace`]s.
//!
//! **Store internals layer** (re-exported from [`rsb_mcsync`] as
//! [`sched`]/[`sync`]/[`thread`]): a loom-style bounded-preemption
//! virtual-thread checker that the store's `FlightRecorder` seqlock and
//! the `ReadyQueue` steal-half protocol run under via their `mc` cargo
//! feature. See `crates/mc/tests/` for both harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod trace;

pub use rsb_mcsync::{sched, sync, thread};
