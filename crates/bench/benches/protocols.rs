//! B2 — protocol microbenchmarks: simulated cost of complete operations
//! (scheduler events end-to-end) per protocol, and a full concurrent
//! scenario per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reliable_storage::prelude::*;

fn bench_solo_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("solo_write");
    let cfg = RegisterConfig::paper(2, 2, 1024).unwrap();
    group.bench_function(BenchmarkId::from_parameter("adaptive"), |b| {
        let proto = Adaptive::new(cfg);
        b.iter(|| {
            let mut sim = proto.new_sim();
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(Value::seeded(1, 1024)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 1_000_000));
        });
    });
    group.bench_function(BenchmarkId::from_parameter("safe"), |b| {
        let proto = Safe::new(cfg);
        b.iter(|| {
            let mut sim = proto.new_sim();
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(Value::seeded(1, 1024)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 1_000_000));
        });
    });
    let abd_cfg = RegisterConfig::new(5, 2, 1, 1024).unwrap();
    group.bench_function(BenchmarkId::from_parameter("abd"), |b| {
        let proto = Abd::new(abd_cfg);
        b.iter(|| {
            let mut sim = proto.new_sim();
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(Value::seeded(1, 1024)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 1_000_000));
        });
    });
    group.bench_function(BenchmarkId::from_parameter("coded"), |b| {
        let proto = Coded::new(cfg);
        b.iter(|| {
            let mut sim = proto.new_sim();
            let w = proto.add_client(&mut sim);
            sim.invoke(w, OpRequest::Write(Value::seeded(1, 1024)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 1_000_000));
        });
    });
    group.finish();
}

fn bench_concurrent_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_4writers_2readers");
    group.sample_size(20);
    let cfg = RegisterConfig::paper(2, 2, 256).unwrap();
    let scenario = Scenario::mixed(4, 2, 2, 11);
    group.bench_function("adaptive", |b| {
        let proto = Adaptive::new(cfg);
        b.iter(|| {
            let out = run_scenario(&proto, &scenario);
            assert!(out.completed);
        });
    });
    group.bench_function("safe", |b| {
        let proto = Safe::new(cfg);
        b.iter(|| {
            let out = run_scenario(&proto, &scenario);
            assert!(out.completed);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solo_write, bench_concurrent_scenario);
criterion_main!(benches);
