//! B1 — codec microbenchmarks: Reed–Solomon encode/decode throughput
//! across `(k, n, D)`, replication as the baseline, and the rateless
//! fountain's per-block cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsb_coding::{Code, Rateless, ReedSolomon, Replication, Value};

fn bench_rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    for (k, n) in [(2usize, 4usize), (4, 8), (8, 16)] {
        for len in [1024usize, 16 * 1024] {
            let code = ReedSolomon::new(k, n, len).unwrap();
            let v = Value::seeded(1, len);
            group.throughput(Throughput::Bytes(len as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{k}of{n}/{len}B")),
                &(code, v),
                |b, (code, v)| b.iter(|| code.encode(std::hint::black_box(v))),
            );
        }
    }
    group.finish();
}

fn bench_rs_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_decode");
    for (k, n) in [(2usize, 4usize), (4, 8), (8, 16)] {
        let len = 4096usize;
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(1, len);
        let blocks = code.encode(&v);
        // Worst case: decode from the parity tail (full matrix inversion).
        let tail: Vec<_> = blocks[n - k..].to_vec();
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}of{n}/parity")),
            &(code, tail),
            |b, (code, tail)| b.iter(|| code.decode(std::hint::black_box(tail)).unwrap()),
        );
    }
    group.finish();
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    let len = 4096usize;
    let code = Replication::new(5, len).unwrap();
    let v = Value::seeded(1, len);
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("encode/5x4096B", |b| {
        b.iter(|| code.encode(std::hint::black_box(&v)));
    });
    let blocks = code.encode(&v);
    group.bench_function("decode/1block", |b| {
        b.iter(|| code.decode(std::hint::black_box(&blocks[..1])).unwrap());
    });
    group.finish();
}

fn bench_rateless(c: &mut Criterion) {
    let mut group = c.benchmark_group("rateless");
    let code = Rateless::new(8, 4096).unwrap();
    let v = Value::seeded(1, 4096);
    group.throughput(Throughput::Bytes(4096 / 8));
    group.bench_function("encode_block/high_index", |b| {
        b.iter(|| {
            code.encode_block(std::hint::black_box(&v), 1_000_000)
                .unwrap()
        });
    });
    let blocks: Vec<_> = (1000u32..1008)
        .map(|i| code.encode_block(&v, i).unwrap())
        .collect();
    group.bench_function("decode/8_random_blocks", |b| {
        b.iter(|| code.decode(std::hint::black_box(&blocks)).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rs_encode,
    bench_rs_decode,
    bench_replication,
    bench_rateless
);
criterion_main!(benches);
