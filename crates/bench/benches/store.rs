//! B4 — store microbenchmarks: end-to-end operation cost through the
//! sharded service (submit → ready queue → driver step → completion),
//! uniform and hot-key shapes, plus the transport layer — the wire-frame
//! codec and a full TCP round-trip — so the bench-regression gate covers
//! the store execution path and the networked client surface alongside
//! the codec and protocol benches. (`store_write_read` goes through the
//! [`Loopback`] transport: it *is* the loopback round-trip bench.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsb_coding::Value;
use rsb_registers::RegisterConfig;
use rsb_store::frame::{encode_frame, read_frame, Frame};
use rsb_store::{
    BatchOp, EvictionPolicy, HistoryPolicy, ListenSpec, ProtocolSpec, Store, StoreClient,
    StoreConfig, TcpTransport,
};

const VALUE_LEN: usize = 64;

fn store(shards: usize, policy: HistoryPolicy) -> Store {
    let reg = RegisterConfig::paper(1, 2, VALUE_LEN).unwrap();
    Store::start(StoreConfig::uniform(shards, ProtocolSpec::Abd, reg).with_history(policy)).unwrap()
}

fn bench_store_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_write_read");
    group.throughput(Throughput::Elements(2));
    for shards in [1usize, 4] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("{shards}shards")),
            |b| {
                let store = store(shards, HistoryPolicy::TruncateAfter(256));
                let client = store.client();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let key = format!("k{:03}", i % 64);
                    client
                        .write_blocking(&key, Value::seeded(i, VALUE_LEN))
                        .unwrap();
                    assert_eq!(client.read_blocking(&key).unwrap().len(), VALUE_LEN);
                });
                store.shutdown();
            },
        );
    }
    group.finish();
}

fn bench_hot_key_pipelined(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_hot_key_pipelined");
    group.sample_size(20);
    group.throughput(Throughput::Elements(16));
    group.bench_function("4shards_16deep", |b| {
        let store = store(4, HistoryPolicy::TruncateAfter(256));
        let client = store.client();
        let mut i = 0u64;
        b.iter(|| {
            let writes: Vec<_> = (0..16u64)
                .map(|j| {
                    i += 1;
                    client.write("hot", Value::seeded(i * 100 + j, VALUE_LEN))
                })
                .collect();
            for out in rsb_store::join_all(writes) {
                out.unwrap();
            }
        });
        store.shutdown();
    });
    group.finish();
}

/// Grouped submission through the loopback transport: one
/// `submit_batch` call carries `batch` write ops (one shard-map lock
/// hold per key group, one driver wakeup), and the client blocks on the
/// whole group. The size sweep shows where the per-op condvar
/// round-trips stop dominating.
fn bench_batched_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_batched_submission");
    group.sample_size(20);
    for batch in [1usize, 4, 16, 64] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("b{batch}")), |b| {
            let store = store(4, HistoryPolicy::TruncateAfter(256));
            let client = store.client();
            let mut i = 0u64;
            b.iter(|| {
                let ops: Vec<BatchOp> = (0..batch as u64)
                    .map(|j| {
                        i += 1;
                        BatchOp::Write(
                            format!("k{:03}", (i + j) % 64),
                            Value::seeded(i * 100 + j, VALUE_LEN),
                        )
                    })
                    .collect();
                for fut in client.submit_batch(ops) {
                    fut.wait().unwrap();
                }
            });
            store.shutdown();
        });
    }
    group.finish();
}

/// The governed-eviction sweep path under constant churn: a tight
/// occupancy watermark keeps the driver-pool governor evicting
/// coldest-first while the workload cycles writes over a rotating window
/// and reads back an old (usually evicted) key — so the bench-regression
/// gate covers the cold-scan, snapshot, and rematerialize costs, not
/// just the live hot path.
fn bench_governed_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_governed_eviction");
    group.sample_size(20);
    group.throughput(Throughput::Elements(2));
    // The store lives across the harness's calibration and batch calls,
    // so the governor's steady-state churn (not cold setup) is measured.
    let reg = RegisterConfig::paper(1, 2, VALUE_LEN).unwrap();
    // ~16 ABD keys' worth of live bits per shard, reclaim to half.
    let store = Store::start(
        StoreConfig::uniform(2, ProtocolSpec::Abd, reg)
            .with_history(HistoryPolicy::TruncateAfter(64))
            .with_eviction(EvictionPolicy::OccupancyAbove {
                bits: 32_000,
                low_watermark: 16_000,
            }),
    )
    .unwrap();
    let client = store.client();
    let mut i = 0u64;
    group.bench_function("occupancy_churn_2shards", |b| {
        b.iter(|| {
            i += 1;
            client
                .write_blocking(&format!("k{:03}", i % 96), Value::seeded(i, VALUE_LEN))
                .unwrap();
            // Half a window back: usually evicted by the governor, so
            // this read pays (and measures) a rematerialization.
            let back = (i + 48) % 96;
            assert_eq!(
                client.read_blocking(&format!("k{back:03}")).unwrap().len(),
                VALUE_LEN
            );
        });
    });
    assert!(
        store.metrics().totals().evicted_occupancy > 0,
        "the governor must actually run in this bench"
    );
    store.shutdown();
    group.finish();
}

/// Pure codec cost of the busiest frame on the wire: encode + length-
/// prefixed decode of a `WriteReq` carrying a bench-sized value.
fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_frame_codec");
    let frame = Frame::WriteReq {
        id: 42,
        key: "k000042".into(),
        value: Value::seeded(7, VALUE_LEN).as_bytes().to_vec(),
    };
    let mut encoded = Vec::new();
    encode_frame(&frame, &mut encoded);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("write_req_64b", |b| {
        let mut buf = Vec::with_capacity(encoded.len());
        b.iter(|| {
            buf.clear();
            encode_frame(&frame, &mut buf);
            let decoded = read_frame(&mut buf.as_slice()).unwrap().unwrap();
            assert!(matches!(decoded, Frame::WriteReq { id: 42, .. }));
        });
    });
    group.finish();
}

/// The same write+read pair as `store_write_read`, but through a real
/// socket on 127.0.0.1 — the gate watches the whole wire path (frame
/// encode, kernel round-trip, reader-thread demux, completion cell).
fn bench_tcp_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_tcp_roundtrip");
    group.sample_size(20);
    group.throughput(Throughput::Elements(2));
    group.bench_function("4shards_localhost", |b| {
        let reg = RegisterConfig::paper(1, 2, VALUE_LEN).unwrap();
        let config = StoreConfig::uniform(4, ProtocolSpec::Abd, reg)
            .with_history(HistoryPolicy::TruncateAfter(256))
            .with_listen(ListenSpec::new("127.0.0.1:0"));
        let server = Store::serve(config).unwrap();
        let client: StoreClient<TcpTransport> =
            StoreClient::over(TcpTransport::connect(server.local_addr()).unwrap());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("k{:03}", i % 64);
            client
                .write_blocking(&key, Value::seeded(i, VALUE_LEN))
                .unwrap();
            assert_eq!(client.read_blocking(&key).unwrap().len(), VALUE_LEN);
        });
        drop(client);
        server.shutdown();
    });
    group.finish();
}

/// The metrics exposition path: a full `StatsResp` scrape over a real
/// socket (snapshot every shard, encode histograms, decode + re-validate
/// bucket bounds client-side), on a store warmed with enough traffic to
/// populate all six histograms. Scrapes run concurrently with load in
/// production, so their cost bounds the monitoring tax.
fn bench_stats_scrape(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_stats_scrape");
    group.sample_size(20);
    let reg = RegisterConfig::paper(1, 2, VALUE_LEN).unwrap();
    let config = StoreConfig::uniform(4, ProtocolSpec::Abd, reg)
        .with_history(HistoryPolicy::TruncateAfter(256))
        .with_listen(ListenSpec::new("127.0.0.1:0"));
    let server = Store::serve(config).unwrap();
    let client: StoreClient<TcpTransport> =
        StoreClient::over(TcpTransport::connect(server.local_addr()).unwrap());
    for i in 0..256u64 {
        let key = format!("k{:03}", i % 64);
        client
            .write_blocking(&key, Value::seeded(i, VALUE_LEN))
            .unwrap();
        client.read_blocking(&key).unwrap();
    }
    group.bench_function("4shards_localhost", |b| {
        b.iter(|| {
            let m = client.stats().unwrap();
            assert_eq!(m.totals().completed(), 512);
        });
    });
    group.bench_function("render_prometheus", |b| {
        let m = client.stats().unwrap();
        b.iter(|| {
            assert!(m.render_prometheus().len() > 512);
        });
    });
    drop(client);
    server.shutdown();
    group.finish();
}

criterion_group!(
    benches,
    bench_store_roundtrip,
    bench_hot_key_pipelined,
    bench_batched_submission,
    bench_governed_eviction,
    bench_frame_codec,
    bench_tcp_roundtrip,
    bench_stats_scrape
);
criterion_main!(benches);
