//! B5 — GF(256) kernel and contiguous Reed–Solomon throughput.
//!
//! Measures the coding hot path the SWAR/SIMD kernels accelerate:
//!
//! * `gf256_kernels/mul_acc/*` — raw `dst ^= c·src` GB/s per kernel on a
//!   64 KiB buffer (scalar = the pre-kernel baseline);
//! * `coding_encode/*` — the contiguous `encode_into` product across a
//!   k-of-n × value-size grid (includes the acceptance point 4-of-7 ×
//!   64 KiB);
//! * `coding_encode_scalar/*` — the same product forced onto the scalar
//!   kernel, i.e. the old implementation's speed on the new structure;
//! * `coding_encode_block/*` — a caller looping `encode_block` over all
//!   `n` indices (the path that used to re-shard the value per block);
//! * `coding_decode/*` — decode from the last `k` blocks (the
//!   maximally-parity subset; always a full matrix inversion).
//!
//! All groups set byte throughput so the harness reports GB/s, and all
//! names land in `$CRITERION_JSON` for the CI bench-regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsb_coding::{gf256, Code, ReedSolomon, Value};

const GRID: [(usize, usize); 3] = [(2, 4), (4, 7), (8, 16)];
const SIZES: [usize; 3] = [4 * 1024, 64 * 1024, 1024 * 1024];

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_kernels");
    let len = 64 * 1024;
    let src = Value::seeded(7, len);
    let mut dst = vec![0u8; len];
    group.throughput(Throughput::Bytes(len as u64));
    for kernel in gf256::available_kernels() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("mul_acc/{kernel}")),
            &kernel,
            |b, &kernel| {
                b.iter(|| {
                    gf256::mul_acc_with(
                        kernel,
                        std::hint::black_box(&mut dst),
                        std::hint::black_box(src.as_bytes()),
                        0x1d,
                    );
                });
            },
        );
    }
    group.finish();
}

/// The interleaved multi-row primitive against the same kernel called
/// row-at-a-time: 3 parity rows (4-of-7's count) over a 64 KiB source.
/// The interleaved form reads the source once per row group instead of
/// once per row — the gap between the two bars is the memory-traffic
/// saving `encode_into` now banks.
fn bench_multi_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_multi_row");
    let len = 64 * 1024;
    let coeffs: [u8; 3] = [0x1d, 0x47, 0x8e];
    let src = Value::seeded(7, len);
    group.throughput(Throughput::Bytes((coeffs.len() * len) as u64));
    for kernel in gf256::available_kernels() {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("interleaved/{kernel}")),
            &kernel,
            |b, &kernel| {
                let mut rows = vec![vec![0u8; len]; coeffs.len()];
                b.iter(|| {
                    let mut dsts: Vec<&mut [u8]> = rows.iter_mut().map(Vec::as_mut_slice).collect();
                    gf256::mul_acc_multi_with(
                        kernel,
                        std::hint::black_box(&mut dsts),
                        std::hint::black_box(src.as_bytes()),
                        &coeffs,
                    );
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("row_at_a_time/{kernel}")),
            &kernel,
            |b, &kernel| {
                let mut rows = vec![vec![0u8; len]; coeffs.len()];
                b.iter(|| {
                    for (row, &coeff) in rows.iter_mut().zip(&coeffs) {
                        gf256::mul_acc_with(
                            kernel,
                            std::hint::black_box(row),
                            std::hint::black_box(src.as_bytes()),
                            coeff,
                        );
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding_encode");
    for (k, n) in GRID {
        for len in SIZES {
            let code = ReedSolomon::new(k, n, len).unwrap();
            let v = Value::seeded(1, len);
            let mut out = vec![0u8; n * code.shard_len()];
            group.throughput(Throughput::Bytes(len as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{k}of{n}/{len}B")),
                &(code, v),
                |b, (code, v)| {
                    b.iter(|| code.encode_into(std::hint::black_box(v), &mut out).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_encode_scalar(c: &mut Criterion) {
    // The pre-kernel baseline: identical encode structure, scalar EXP/LOG
    // inner loop. One size keeps the gating run short.
    assert!(gf256::force_kernel(gf256::Kernel::Scalar));
    let mut group = c.benchmark_group("coding_encode_scalar");
    for (k, n) in GRID {
        let len = 64 * 1024;
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(1, len);
        let mut out = vec![0u8; n * code.shard_len()];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}of{n}/{len}B")),
            &(code, v),
            |b, (code, v)| {
                b.iter(|| code.encode_into(std::hint::black_box(v), &mut out).unwrap());
            },
        );
    }
    group.finish();
    gf256::reset_kernel();
}

fn bench_encode_block_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding_encode_block");
    let (k, n) = (4, 7);
    let len = 64 * 1024;
    let code = ReedSolomon::new(k, n, len).unwrap();
    let v = Value::seeded(1, len);
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("{k}of{n}/{len}B")),
        &(code, v),
        |b, (code, v)| {
            b.iter(|| {
                for i in 0..n as u32 {
                    std::hint::black_box(code.encode_block(std::hint::black_box(v), i).unwrap());
                }
            });
        },
    );
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding_decode");
    for (k, n) in GRID {
        let len = 64 * 1024;
        let code = ReedSolomon::new(k, n, len).unwrap();
        let v = Value::seeded(1, len);
        let blocks = code.encode(&v);
        // Worst case: decode from the last k blocks — the maximally-parity
        // subset (all n-k parity blocks, topped up with systematic ones
        // when k > n-k, as in 4-of-7). Never the all-systematic fast path;
        // always a full matrix inversion.
        let tail: Vec<_> = blocks[n - k..].to_vec();
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}of{n}/tail/{len}B")),
            &(code, tail),
            |b, (code, tail)| b.iter(|| code.decode(std::hint::black_box(tail)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_multi_row,
    bench_encode,
    bench_encode_scalar,
    bench_encode_block_loop,
    bench_decode
);
criterion_main!(benches);
