//! B3 — substrate microbenchmarks: storage-accounting cost, lower-bound
//! snapshot capture, and adversary decision steps.

use criterion::{criterion_group, criterion_main, Criterion};
use reliable_storage::prelude::*;
use rsb_fpsm::Scheduler;

fn loaded_sim() -> (
    Adaptive,
    rsb_fpsm::Simulation<
        rsb_registers::adaptive::AdaptiveObject,
        rsb_registers::adaptive::AdaptiveClient,
    >,
) {
    let cfg = RegisterConfig::paper(2, 4, 256).unwrap();
    let proto = Adaptive::new(cfg);
    let mut sim = proto.new_sim();
    for i in 0..6u64 {
        let w = proto.add_client(&mut sim);
        sim.invoke(w, OpRequest::Write(Value::seeded(i + 1, 256)))
            .unwrap();
    }
    // Advance part-way so state is nontrivial.
    let mut fair = FairScheduler::new();
    for _ in 0..40 {
        if let Some(ev) = Scheduler::<_, _>::next_event(&mut fair, &sim) {
            sim.step(ev).unwrap();
        }
    }
    (proto, sim)
}

fn bench_storage_cost(c: &mut Criterion) {
    let (_p, sim) = loaded_sim();
    c.bench_function("storage_cost_snapshot", |b| {
        b.iter(|| std::hint::black_box(&sim).storage_cost());
    });
}

fn bench_lowerbound_snapshot(c: &mut Criterion) {
    let (p, sim) = loaded_sim();
    let params = AdversaryParams::theorem1(p.config().data_bits(), p.config().f, 6);
    c.bench_function("lowerbound_snapshot_capture", |b| {
        b.iter(|| Snapshot::capture(std::hint::black_box(&sim), &params));
    });
}

fn bench_adversary_step(c: &mut Criterion) {
    let (p, sim) = loaded_sim();
    let params = AdversaryParams::theorem1(p.config().data_bits(), p.config().f, 6);
    c.bench_function("adversary_next_event", |b| {
        b.iter(|| {
            let mut ad = AdversaryAd::new(params);
            Scheduler::<_, _>::next_event(&mut ad, std::hint::black_box(&sim))
        });
    });
}

criterion_group!(
    benches,
    bench_storage_cost,
    bench_lowerbound_snapshot,
    bench_adversary_step
);
criterion_main!(benches);
