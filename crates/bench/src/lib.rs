//! Shared helpers for the experiment binaries and Criterion benches that
//! regenerate the paper's quantitative claims (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints an aligned table: a header row and data rows of equal arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_table<H: Display, C: Display>(title: &str, header: &[H], rows: &[Vec<C>]) {
    println!("### {title}");
    let header: Vec<String> = header
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            assert_eq!(r.len(), header.len(), "row arity mismatch");
            r.iter().map(std::string::ToString::to_string).collect()
        })
        .collect();
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r[i].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in &rows {
        println!("{}", fmt_row(r));
    }
    println!();
}

/// Standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("==============================================================");
    println!("{id}: {claim}");
    println!("==============================================================");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        print_table("demo", &["a", "b"], &[vec!["1".to_string()]]);
    }
}
