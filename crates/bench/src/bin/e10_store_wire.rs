//! E10 — the store across a real TCP wire, under closed- and open-loop
//! load.
//!
//! Spins up a [`StoreServer`] on `127.0.0.1:0` and measures the wire
//! against the in-process loopback path, like for like: the same
//! transport-generic harness drives both. The open-loop section offers
//! load on a fixed arrival schedule and measures every latency from the
//! operation's *scheduled* start (coordinated-omission-free), so
//! queueing delay at overload is charged to the operations instead of
//! silently throttling the generator. Consistency checks run on
//! histories recorded **through the TCP path** — strong regularity on
//! ABD, linearizability on atomic ABD.
//!
//! ```sh
//! cargo run --release -p rsb-bench --bin e10_store_wire              # full
//! cargo run --release -p rsb-bench --bin e10_store_wire -- --quick  # CI smoke
//! cargo run --release -p rsb-bench --bin e10_store_wire -- --quick --loopback
//! #   ^ hermetic: loopback transport only, no sockets
//! ```

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};
use rsb_store::load::{run_load, LoadMode, LoadReport, LoadSpec};
use rsb_store::{LatencyHistogram, StoreServer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn serve(shards: usize, protocol: ProtocolSpec, value_len: usize) -> StoreServer {
    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let config = StoreConfig::uniform(shards, protocol, reg)
        .with_listen(ListenSpec::new("127.0.0.1:0").with_backlog(128));
    Store::serve(config).expect("bind 127.0.0.1:0")
}

/// Runs one spec with a dedicated TCP connection per client thread:
/// each thread gets its own transport and a 1-client slice of the spec,
/// and the reports merge (open-loop rates are split evenly, so the
/// offered total matches `spec`).
fn run_per_connection(server: &StoreServer, spec: &LoadSpec) -> LoadReport {
    let handles: Vec<_> = (0..spec.clients)
        .map(|c| {
            let addr = server.local_addr();
            let slice = LoadSpec {
                clients: 1,
                seed: spec.seed.wrapping_add(1 + c as u64),
                mode: match spec.mode {
                    LoadMode::Closed => LoadMode::Closed,
                    LoadMode::Open { rate } => LoadMode::Open {
                        rate: rate / spec.clients as f64,
                    },
                },
                ..spec.clone()
            };
            std::thread::spawn(move || {
                let client: StoreClient<TcpTransport> =
                    StoreClient::over(TcpTransport::connect(addr).expect("connect"));
                run_load(&client, &slice)
            })
        })
        .collect();
    let mut merged: Option<LoadReport> = None;
    for h in handles {
        let r = h.join().expect("load thread");
        match &mut merged {
            None => merged = Some(r),
            Some(m) => {
                m.issued += r.issued;
                m.ok += r.ok;
                m.errors += r.errors;
                if m.first_error.is_none() {
                    m.first_error = r.first_error;
                }
                m.elapsed = m.elapsed.max(r.elapsed);
                m.latency.merge(&r.latency);
            }
        }
    }
    merged.expect("at least one client")
}

/// Runs a load closure while a sampler thread scrapes the store's
/// metrics every 50 ms through `scrape` — the same [`Transport::stats`]
/// path an external monitor would use (a live TCP scrape when the load
/// runs over the wire). Returns the report and the scrape series; the
/// last element is always a post-run scrape of the quiesced store.
fn run_scraped<T: Transport>(
    scrape: &StoreClient<T>,
    run: impl FnOnce() -> LoadReport,
) -> (LoadReport, Vec<StoreMetrics>) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut series = Vec::new();
            // audit:allow(atomics-relaxed) — sampler stop flag; the scope join
            // publishes the series, the flag only ends the loop.
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(50));
                if let Ok(m) = scrape.stats() {
                    series.push(m);
                }
            }
            if let Ok(m) = scrape.stats() {
                series.push(m);
            }
            series
        });
        let report = run();
        // audit:allow(atomics-relaxed) — same stop flag; see above.
        stop.store(true, Ordering::Relaxed);
        (report, sampler.join().expect("sampler thread"))
    })
}

/// Conservative histogram sum bounds from the bucket boundaries.
fn bucket_sum_lo(h: &LatencyHistogram) -> u128 {
    h.buckets()
        .map(|(lo, _, c)| u128::from(lo) * u128::from(c))
        .sum()
}

fn bucket_sum_hi(h: &LatencyHistogram) -> u128 {
    h.buckets()
        .map(|(_, hi, c)| u128::from(hi) * u128::from(c))
        .sum()
}

/// One row of the phase-attribution table, from the final scrape of a
/// rate's run — plus the sum-consistency checks the scrape must satisfy.
fn phase_row(label: &str, rate: f64, series: &[StoreMetrics]) -> Vec<String> {
    let m = series.last().expect("final scrape");
    let totals = m.totals();
    let e2e = m.end_to_end_latency();
    let queue = m.queue_wait();
    let exec = m.execute();
    let wire = m.wire();
    // Invariants of a quiesced scrape: everything submitted completed,
    // every completion carries exactly one sample in each phase
    // histogram, and the phases can't sum past the end-to-end latency.
    assert_eq!(totals.submitted(), totals.completed(), "{label} quiesced");
    assert_eq!(
        queue.count(),
        totals.completed(),
        "{label} queue_wait coverage"
    );
    assert_eq!(exec.count(), totals.completed(), "{label} execute coverage");
    assert_eq!(
        e2e.count(),
        totals.completed(),
        "{label} end-to-end coverage"
    );
    assert!(
        bucket_sum_lo(&queue) + bucket_sum_lo(&exec) <= bucket_sum_hi(&e2e),
        "{label} phase sums exceed end-to-end"
    );
    vec![
        label.to_string(),
        format!("{:.0}", rate / 1e3),
        (series.len() - 1).to_string(),
        totals.completed().to_string(),
        format!("{:.0}", e2e.quantile_us(0.50)),
        format!("{:.0}", e2e.quantile_us(0.99)),
        format!("{:.0}", queue.quantile_us(0.50)),
        format!("{:.0}", queue.quantile_us(0.99)),
        format!("{:.0}", exec.quantile_us(0.50)),
        format!("{:.0}", exec.quantile_us(0.99)),
        if wire.count() == 0 {
            "-".into()
        } else {
            format!("{:.0}", wire.quantile_us(0.50))
        },
        if wire.count() == 0 {
            "-".into()
        } else {
            format!("{:.0}", wire.quantile_us(0.99))
        },
    ]
}

const PHASE_HEADER: [&str; 12] = [
    "transport",
    "rate_kops",
    "scrapes",
    "done",
    "e2e_p50",
    "e2e_p99",
    "queue_p50",
    "queue_p99",
    "exec_p50",
    "exec_p99",
    "wire_p50",
    "wire_p99",
];

fn report_row(label: &str, rate: Option<f64>, r: &LoadReport) -> Vec<String> {
    vec![
        label.to_string(),
        rate.map_or_else(|| "closed".into(), |x| format!("{:.0}", x / 1e3)),
        r.issued.to_string(),
        r.errors.to_string(),
        format!("{:.3}", r.elapsed.as_secs_f64()),
        format!("{:.1}", r.kops()),
        format!("{:.0}", r.latency.quantile_us(0.50)),
        format!("{:.0}", r.latency.quantile_us(0.99)),
        format!("{:.0}", r.latency.quantile_us(0.999)),
    ]
}

const LOAD_HEADER: [&str; 9] = [
    "transport",
    "rate_kops",
    "ops",
    "errs",
    "secs",
    "kops/s",
    "p50_us",
    "p99_us",
    "p999_us",
];

fn check_consistency_through_tcp(store: &Store, atomic: bool) {
    let mut checked = 0;
    for key in store.keys() {
        let h = store.key_history(&key).expect("key was materialized");
        let history =
            History::from_fpsm(h.initial, &h.records).expect("runtime histories are well-formed");
        check_strong_regularity(&history)
            .expect("strong regularity of a history recorded through TCP");
        if atomic {
            check_atomicity(&history)
                .expect("linearizability of an atomic-ABD history recorded through TCP");
        }
        checked += 1;
    }
    println!(
        "consistency through the TCP path: {} holds on {checked} recorded key histories\n",
        if atomic {
            "linearizability (and strong regularity)"
        } else {
            "strong regularity"
        }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || std::env::var("E10_QUICK").is_ok();
    let loopback_only = args.iter().any(|a| a == "--loopback");
    banner(
        "E10 (store over TCP)",
        "transport-generic clients: loopback vs a real wire, closed- and open-loop",
    );

    let clients = 16;
    let value_len = 64;
    let keys = if quick { 64 } else { 256 };
    let ops_per_client = if quick { 150 } else { 600 };
    let shards = 8;
    let base = LoadSpec {
        clients,
        ops_per_client,
        keys,
        write_fraction: 0.5,
        value_len,
        seed: 10,
        mode: LoadMode::Closed,
        batch: 1,
    };

    // ---- closed loop: loopback vs TCP, like for like ----------------
    let mut rows = Vec::new();
    let server = serve(shards, ProtocolSpec::Adaptive, value_len);
    let lb = run_load(&server.store().client(), &base);
    rows.push(report_row("loopback", None, &lb));
    if !loopback_only {
        // All three runs share one server, so each needs its own master
        // seed: identical streams would write identical values to the
        // same keys and make the regularity checker's write-matching
        // ambiguous.
        let shared: StoreClient<TcpTransport> =
            StoreClient::over(TcpTransport::connect(server.local_addr()).expect("connect"));
        let tcp_shared = run_load(
            &shared,
            &LoadSpec {
                seed: 0x00AA_5500,
                ..base.clone()
            },
        );
        rows.push(report_row("tcp 1-conn", None, &tcp_shared));
        let tcp_per = run_per_connection(
            &server,
            &LoadSpec {
                seed: 0x5A5A_0000,
                ..base.clone()
            },
        );
        rows.push(report_row("tcp 16-conn", None, &tcp_per));
    }
    print_table(
        &format!(
            "closed loop, like for like ({clients} clients x {ops_per_client} ops, {keys} keys, \
             50% reads, adaptive, {shards} shards)"
        ),
        &LOAD_HEADER,
        &rows,
    );
    if !loopback_only {
        check_consistency_through_tcp(server.store(), false);
    }
    server.shutdown();

    // ---- batched submission: N ops per transport round --------------
    // Same closed-loop workload, issued through `submit_batch`: one
    // `BatchReq` frame (one wire round, one shard-lock acquisition per
    // key group) carries `batch` operations, and one vectored
    // `BatchResp` completes them. Closed-loop latency is charged at
    // batch granularity — issue to the batch's last completion.
    let batch_sizes: &[usize] = if quick { &[1, 16] } else { &[1, 4, 16, 64] };
    let mut batch_rows = Vec::new();
    let server = serve(shards, ProtocolSpec::Adaptive, value_len);
    let mut per_op = (0.0f64, 0.0f64); // (loopback, tcp) batch-1 baselines
    let mut best = (0.0f64, 0.0f64);
    for (i, &batch) in batch_sizes.iter().enumerate() {
        // Seed bases 0x40 apart: `run_per_connection` derives one seed
        // per client by small increments, and every run shares this
        // server — overlapping streams would write identical values and
        // make the regularity checker's write-matching ambiguous.
        let spec = LoadSpec {
            seed: 0xB000 + 0x40 * i as u64,
            batch,
            ..base.clone()
        };
        let lb = run_load(&server.store().client(), &spec);
        assert_eq!(lb.errors, 0, "loopback batch run: {:?}", lb.first_error);
        batch_rows.push(report_row(&format!("loopback b={batch}"), None, &lb));
        if batch == 1 {
            per_op.0 = lb.kops();
        } else {
            best.0 = best.0.max(lb.kops());
        }
        if !loopback_only {
            let tcp = run_per_connection(
                &server,
                &LoadSpec {
                    seed: 0xD000 + 0x40 * i as u64,
                    batch,
                    ..base.clone()
                },
            );
            assert_eq!(tcp.errors, 0, "tcp batch run: {:?}", tcp.first_error);
            batch_rows.push(report_row(&format!("tcp 16-conn b={batch}"), None, &tcp));
            if batch == 1 {
                per_op.1 = tcp.kops();
            } else {
                best.1 = best.1.max(tcp.kops());
            }
        }
    }
    print_table(
        &format!(
            "closed loop, batched submission ({clients} clients x {ops_per_client} ops, \
             batch swept, latency = issue -> batch-last completion)"
        ),
        &LOAD_HEADER,
        &batch_rows,
    );
    if !loopback_only {
        check_consistency_through_tcp(server.store(), false);
        println!(
            "batching gain (best batched vs per-op): loopback x{:.2}, tcp x{:.2}\n",
            best.0 / per_op.0.max(1e-9),
            best.1 / per_op.1.max(1e-9),
        );
    } else {
        println!(
            "batching gain (best batched vs per-op): loopback x{:.2}\n",
            best.0 / per_op.0.max(1e-9),
        );
    }
    server.shutdown();

    // ---- open loop: latency under offered load ----------------------
    let rates: &[f64] = if quick {
        &[2_000.0, 8_000.0]
    } else {
        &[1_000.0, 5_000.0, 10_000.0, 20_000.0, 40_000.0]
    };
    let mut rows = Vec::new();
    let mut phase_rows = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        let spec = LoadSpec {
            seed: 20 + i as u64,
            mode: LoadMode::Open { rate },
            ..base.clone()
        };
        if loopback_only {
            let store = Store::start(StoreConfig::uniform(
                shards,
                ProtocolSpec::Adaptive,
                RegisterConfig::paper(1, 2, value_len).expect("valid parameters"),
            ))
            .expect("valid config");
            let scrape = store.client();
            let (r, series) = run_scraped(&scrape, || run_load(&store.client(), &spec));
            rows.push(report_row("loopback", Some(rate), &r));
            phase_rows.push(phase_row("loopback", rate, &series));
            store.shutdown();
        } else {
            let server = serve(shards, ProtocolSpec::Adaptive, value_len);
            // The scraper gets its own connection, so the periodic
            // stats frames travel the same wire the load does without
            // sharing a load connection's socket.
            let scrape: StoreClient<TcpTransport> =
                StoreClient::over(TcpTransport::connect(server.local_addr()).expect("connect"));
            let (r, mut series) = run_scraped(&scrape, || run_per_connection(&server, &spec));
            // Wire-time samples land *after* each response is written,
            // so the post-run scrape can race the last few; take one
            // settled scrape for the phase table.
            std::thread::sleep(Duration::from_millis(50));
            series.push(scrape.stats().expect("final scrape"));
            rows.push(report_row("tcp 16-conn", Some(rate), &r));
            let row = phase_row("tcp 16-conn", rate, &series);
            let m = series.last().expect("final scrape");
            assert_eq!(
                m.wire().count(),
                m.totals().completed(),
                "every TCP op is wire-timed"
            );
            phase_rows.push(row);
            server.shutdown();
        }
    }
    print_table(
        &format!(
            "open loop: latency under offered load ({clients} issuers, fixed arrival schedule, \
             latency from *scheduled* start — coordinated-omission-free)"
        ),
        &LOAD_HEADER,
        &rows,
    );
    println!(
        "open-loop note: p99/p999 include queueing delay once the offered rate nears the \
         service's capacity — the closed-loop table cannot show that.\n"
    );
    print_table(
        "phase attribution, scraped over the live stats wire (us; server-side clocks: e2e = \
         submit->completion, queue = submit->execute-start, exec = execute batch, wire = frame \
         decode->response flush)",
        &PHASE_HEADER,
        &phase_rows,
    );
    println!(
        "phase note: e2e here is server-side (submit to completion), so open-loop schedule \
         backlog does not inflate it; queue+exec partition it, and wire adds the socket path \
         on TCP rows. 'scrapes' counts live mid-run stats snapshots.\n"
    );

    // ---- open loop, batched: arrival groups per wire round ----------
    // Arrivals accumulate until `batch` are due, then one `submit_batch`
    // flushes them; latency is still measured from each op's *scheduled*
    // start, so the grouping delay is charged to the ops it delayed.
    let batched_rate = if quick { 8_000.0 } else { 20_000.0 };
    let mut rows = Vec::new();
    let mut phase_rows = Vec::new();
    for (i, &batch) in batch_sizes.iter().enumerate() {
        let spec = LoadSpec {
            seed: 0xC000 + i as u64,
            mode: LoadMode::Open { rate: batched_rate },
            batch,
            ..base.clone()
        };
        let label = format!("b={batch}");
        if loopback_only {
            let store = Store::start(StoreConfig::uniform(
                shards,
                ProtocolSpec::Adaptive,
                RegisterConfig::paper(1, 2, value_len).expect("valid parameters"),
            ))
            .expect("valid config");
            let scrape = store.client();
            let (r, series) = run_scraped(&scrape, || run_load(&store.client(), &spec));
            rows.push(report_row(
                &format!("loopback {label}"),
                Some(batched_rate),
                &r,
            ));
            phase_rows.push(phase_row(
                &format!("loopback {label}"),
                batched_rate,
                &series,
            ));
            store.shutdown();
        } else {
            let server = serve(shards, ProtocolSpec::Adaptive, value_len);
            let scrape: StoreClient<TcpTransport> =
                StoreClient::over(TcpTransport::connect(server.local_addr()).expect("connect"));
            let (r, mut series) = run_scraped(&scrape, || run_per_connection(&server, &spec));
            std::thread::sleep(Duration::from_millis(50));
            series.push(scrape.stats().expect("final scrape"));
            rows.push(report_row(&format!("tcp {label}"), Some(batched_rate), &r));
            phase_rows.push(phase_row(&format!("tcp {label}"), batched_rate, &series));
            server.shutdown();
        }
    }
    print_table(
        &format!(
            "open loop, batched submission (offered {:.0} kops/s total, batch swept; \
             latency from each op's scheduled start)",
            batched_rate / 1e3
        ),
        &LOAD_HEADER,
        &rows,
    );
    print_table(
        "phase attribution for the batched open-loop runs (us; server-side clocks)",
        &PHASE_HEADER,
        &phase_rows,
    );
    println!(
        "batched open-loop note: grouping amortizes frames and syscalls per op, and the \
         scheduled-start clock charges the accumulation delay (ops waiting for their batch to \
         fill) to the ops it delayed — batching helps wire efficiency, not open-loop latency.\n"
    );

    // ---- linearizability through the wire ---------------------------
    if !loopback_only {
        let server = serve(4, ProtocolSpec::AbdAtomic, value_len);
        let spec = LoadSpec {
            clients: 8,
            ops_per_client: if quick { 40 } else { 120 },
            keys: 6,
            write_fraction: 0.5,
            value_len,
            seed: 77,
            mode: LoadMode::Closed,
            // The atomic run issues through `BatchReq` frames, so the
            // linearizability check below covers batched wire traffic.
            batch: 4,
        };
        let r = run_per_connection(&server, &spec);
        assert_eq!(r.errors, 0, "atomic run errored: {:?}", r.first_error);
        check_consistency_through_tcp(server.store(), true);
        server.shutdown();
    } else {
        println!("(--loopback: TCP sections skipped; consistency checked in e10's socket mode)");
    }
}
