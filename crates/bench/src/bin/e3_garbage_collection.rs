//! E3 — Lemma 8: after a finite burst of writes by correct writers, the
//! adaptive algorithm's storage is garbage-collected down to
//! `(2f+k)·D/k` bits (one piece per base object; up to `f` straggler
//! objects may even end empty when a write's GC overtakes its update).

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};

fn main() {
    banner(
        "E3 (Lemma 8)",
        "finite writes ⇒ storage shrinks to (2f+k)·D/k bits",
    );
    let header = vec![
        "f",
        "k",
        "c",
        "peak_obj_bits",
        "resting_obj_bits",
        "bound_bits",
        "within",
    ];
    let mut rows = Vec::new();
    for (f, k) in [(1usize, 2usize), (2, 2), (2, 4), (3, 3)] {
        let cfg = RegisterConfig::paper(f, k, 128).unwrap();
        let proto = Adaptive::new(cfg);
        for c in [1usize, 2, 4, 8] {
            let gc = experiments::gc_experiment(&proto, c, 9_000 + c as u64);
            rows.push(vec![
                f.to_string(),
                k.to_string(),
                c.to_string(),
                gc.peak_object_bits.to_string(),
                gc.resting_object_bits.to_string(),
                gc.bound_bits.to_string(),
                (gc.resting_object_bits <= gc.bound_bits).to_string(),
            ]);
        }
    }
    print_table("adaptive, D = 1024 bits", &header, &rows);
    println!("paper: resting ≤ (2f+k)·D/k in every configuration, independent of the burst's c.");
}
