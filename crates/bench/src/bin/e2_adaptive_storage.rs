//! E2 — Theorem 2 / Corollary 3: the adaptive algorithm's base-object
//! storage never exceeds `(c+1)·n·D/k` while `c < k − 1`, and never
//! `2·n·D` (= Vp + Vf caps; the paper states the looser `(2f+k)²·D`); it
//! switches from coding to replication as `c` crosses `k`.

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};

fn main() {
    banner(
        "E2 (Theorem 2, Corollary 3)",
        "adaptive storage ≤ min((c+1)(2f+k)D/k, 2(2f+k)D); measured vs formula",
    );
    let header = vec!["f", "k", "c", "peak_obj_bits", "formula_bits", "within"];
    for (f, k, d_bytes) in [(2usize, 4usize, 128usize), (2, 6, 128), (4, 8, 256)] {
        let cfg = RegisterConfig::paper(f, k, d_bytes).unwrap();
        let proto = Adaptive::new(cfg);
        let rows: Vec<Vec<String>> = [1usize, 2, 3, 4, 6, 8, 12]
            .iter()
            .map(|&c| {
                let row = experiments::measure_storage(&proto, c, 2, 7_000 + c as u64);
                let bound = experiments::theorem2_bound_bits(&cfg, c);
                vec![
                    f.to_string(),
                    k.to_string(),
                    c.to_string(),
                    row.peak_object_bits.to_string(),
                    bound.to_string(),
                    (row.peak_object_bits <= bound).to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("n = {}, D = {} bits", cfg.n, cfg.data_bits()),
            &header,
            &rows,
        );
    }
    println!("paper: measured ≤ formula everywhere; growth is linear in c until c ≈ k, then flat.");
}
