//! Standalone store server: binds a [`StoreServer`] on a TCP address and
//! serves until interrupted (or for `--run-secs N`, for scripted smokes).
//!
//! `--idle-evict TICKS` arms the eviction governor's idle sweep, and
//! `--recorder N` sizes the flight recorder ring. On a timed exit the
//! server prints an event summary from the recorder and asserts its
//! sequence numbers came out gapless.
//!
//! ```sh
//! cargo run --release -p rsb-bench --bin e10_store_server -- \
//!     --addr 127.0.0.1:7400 --shards 8 --proto adaptive --value-len 64
//! ```

use reliable_storage::prelude::*;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Dumps the flight recorder, asserts the dump is ordered and (when
/// nothing wrapped) gapless, and prints a per-kind event summary.
fn recorder_summary(store: &Store) {
    let rec = store.flight_recorder();
    let events = rec.dump();
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "recorder dump out of order");
    }
    if rec.recorded() <= rec.capacity() as u64 {
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (0..rec.recorded()).collect();
        assert_eq!(seqs, expect, "recorder dump has sequence gaps");
    }
    let mut by_kind: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for e in &events {
        *by_kind.entry(e.kind.label()).or_default() += 1;
    }
    let summary: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k}:{n}")).collect();
    println!(
        "flight recorder: {} events recorded, {} retained ({})",
        rec.recorded(),
        events.len(),
        summary.join(" ")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7400".into());
    let shards: usize = flag(&args, "--shards").map_or(8, |v| v.parse().expect("--shards"));
    let value_len: usize =
        flag(&args, "--value-len").map_or(64, |v| v.parse().expect("--value-len"));
    let backlog: usize = flag(&args, "--backlog").map_or(64, |v| v.parse().expect("--backlog"));
    let run_secs: Option<u64> = flag(&args, "--run-secs").map(|v| v.parse().expect("--run-secs"));
    let idle_evict: Option<u64> =
        flag(&args, "--idle-evict").map(|v| v.parse().expect("--idle-evict"));
    let recorder: Option<usize> = flag(&args, "--recorder").map(|v| v.parse().expect("--recorder"));
    let proto = match flag(&args, "--proto").as_deref().unwrap_or("adaptive") {
        "abd" => ProtocolSpec::Abd,
        "abd-atomic" => ProtocolSpec::AbdAtomic,
        "safe" => ProtocolSpec::Safe,
        "coded" => ProtocolSpec::Coded,
        "adaptive" => ProtocolSpec::Adaptive,
        other => panic!("unknown --proto {other:?} (abd|abd-atomic|safe|coded|adaptive)"),
    };

    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let mut config = StoreConfig::uniform(shards, proto, reg)
        .with_listen(ListenSpec::new(addr).with_backlog(backlog));
    if let Some(ticks) = idle_evict {
        config = config.with_eviction(EvictionPolicy::IdleAfter(ticks));
    }
    if let Some(capacity) = recorder {
        config = config.with_recorder_capacity(capacity);
    }
    let server = Store::serve(config).expect("bind listen address");
    println!(
        "e10_store_server: listening on {} ({shards} shards, {value_len}-byte values, backlog {backlog})",
        server.local_addr()
    );

    match run_secs {
        Some(secs) => {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let m = server.store().metrics();
            let totals = m.totals();
            println!(
                "e10_store_server: exiting after {secs}s — {} ops completed ({} reads, {} \
                 writes, {} evicted, {} rematerialized)",
                totals.completed(),
                totals.reads_completed,
                totals.writes_completed,
                totals.evicted_manual + totals.evicted_idle + totals.evicted_occupancy,
                totals.rematerialized,
            );
            assert!(
                totals.submitted() >= totals.completed(),
                "submissions must cover completions"
            );
            recorder_summary(server.store());
            server.shutdown();
        }
        None => loop {
            // Serve until the process is killed; accept/connection threads
            // do all the work.
            std::thread::sleep(std::time::Duration::from_hours(1));
        },
    }
}
