//! Standalone store server: binds a [`StoreServer`] on a TCP address and
//! serves until interrupted (or for `--run-secs N`, for scripted smokes).
//!
//! ```sh
//! cargo run --release -p rsb-bench --bin e10_store_server -- \
//!     --addr 127.0.0.1:7400 --shards 8 --proto adaptive --value-len 64
//! ```

use reliable_storage::prelude::*;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7400".into());
    let shards: usize = flag(&args, "--shards").map_or(8, |v| v.parse().expect("--shards"));
    let value_len: usize =
        flag(&args, "--value-len").map_or(64, |v| v.parse().expect("--value-len"));
    let backlog: usize = flag(&args, "--backlog").map_or(64, |v| v.parse().expect("--backlog"));
    let run_secs: Option<u64> = flag(&args, "--run-secs").map(|v| v.parse().expect("--run-secs"));
    let proto = match flag(&args, "--proto").as_deref().unwrap_or("adaptive") {
        "abd" => ProtocolSpec::Abd,
        "abd-atomic" => ProtocolSpec::AbdAtomic,
        "safe" => ProtocolSpec::Safe,
        "coded" => ProtocolSpec::Coded,
        "adaptive" => ProtocolSpec::Adaptive,
        other => panic!("unknown --proto {other:?} (abd|abd-atomic|safe|coded|adaptive)"),
    };

    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let config = StoreConfig::uniform(shards, proto, reg)
        .with_listen(ListenSpec::new(addr).with_backlog(backlog));
    let server = Store::serve(config).expect("bind listen address");
    println!(
        "e10_store_server: listening on {} ({shards} shards, {value_len}-byte values, backlog {backlog})",
        server.local_addr()
    );

    match run_secs {
        Some(secs) => {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let totals = server.store().metrics().totals();
            println!(
                "e10_store_server: exiting after {secs}s — {} ops completed",
                totals.completed()
            );
            server.shutdown();
        }
        None => loop {
            // Serve until the process is killed; accept/connection threads
            // do all the work.
            std::thread::sleep(std::time::Duration::from_hours(1));
        },
    }
}
