//! E6 — Definition 5 / Figure 2: black-box substitution. Replacing the
//! value of one write yields a run with an identical trace and identical
//! storage structure (per-component block sources, indices, and sizes at
//! every step); only the block contents differ.

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};
use rsb_lowerbound::substitution_experiment;

fn run_for<P: RegisterProtocol>(proto: &P, writers: usize, seeds: &[u64]) -> Vec<Vec<String>> {
    let len = proto.config().value_len;
    let values: Vec<Value> = (1..=writers as u64)
        .map(|s| Value::seeded(s, len))
        .collect();
    seeds
        .iter()
        .map(|&seed| {
            let report = substitution_experiment(
                proto,
                &values,
                seed as usize % writers,
                Value::seeded(1_000 + seed, len),
                seed,
                200_000,
            );
            vec![
                proto.name().to_string(),
                seed.to_string(),
                report.steps.to_string(),
                report.structural_match.to_string(),
                report.trace_match.to_string(),
            ]
        })
        .collect()
}

fn main() {
    banner(
        "E6 (Definition 5, Figure 2)",
        "value substitution preserves the whole structural run",
    );
    let header = vec!["protocol", "seed", "steps", "structure=", "trace="];
    let cfg = RegisterConfig::paper(2, 3, 96).unwrap();
    let seeds = [0u64, 1, 2, 3, 4];
    let mut rows = Vec::new();
    rows.extend(run_for(&Adaptive::new(cfg), 3, &seeds));
    rows.extend(run_for(&Coded::new(cfg), 3, &seeds));
    rows.extend(run_for(&Safe::new(cfg), 3, &seeds));
    rows.extend(run_for(&Abd::new(cfg), 3, &seeds));
    print_table(
        "three concurrent writers, one value substituted",
        &header,
        &rows,
    );
    println!("paper: all four protocols are black-box coding algorithms — every row true/true.");
}
