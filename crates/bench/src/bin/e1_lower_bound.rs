//! E1 — Theorem 1 / Lemma 3: under the adversary `Ad` with `ℓ = D/2`,
//! every black-box protocol reaches `|F| > f` or `|C⁺| = c`, certifying
//! storage `≥ min((f+1)·D/2, c·(D/2+1))` — i.e. `Ω(min(f, c)·D)`.

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};

fn sweep<P: RegisterProtocol>(proto: &P, cs: &[usize]) -> Vec<Vec<String>> {
    cs.iter()
        .map(|&c| {
            let cfg = proto.config();
            let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, c);
            let report = experiments::adversary_blowup(proto, c, params, 10_000_000);
            vec![
                proto.name().to_string(),
                c.to_string(),
                format!("{:?}", report.outcome),
                report.frozen_count.to_string(),
                report.cplus_count.to_string(),
                report.certified_bits.to_string(),
                report.guaranteed_bits.to_string(),
                report.certifies_bound().to_string(),
            ]
        })
        .collect()
}

fn main() {
    banner(
        "E1 (Theorem 1, Lemma 3)",
        "adversary Ad drives storage to Ω(min(f,c)·D); ℓ = D/2",
    );
    let header = vec![
        "protocol",
        "c",
        "outcome",
        "|F|",
        "|C+|",
        "certified",
        "Θ-bound",
        "certified≥bound",
    ];
    let cs = [1usize, 2, 4, 8, 16];

    for (f, d_bytes) in [(1usize, 1024usize), (2, 1024), (4, 2048)] {
        let abd = Abd::new(RegisterConfig::new(2 * f + 1, f, 1, d_bytes).unwrap());
        let coded = Coded::new(RegisterConfig::paper(f, 4 * f, d_bytes).unwrap());
        let adaptive = Adaptive::new(RegisterConfig::paper(f, f.max(2), d_bytes).unwrap());
        let mut rows = sweep(&abd, &cs);
        rows.extend(sweep(&coded, &cs));
        rows.extend(sweep(&adaptive, &cs));
        print_table(
            &format!("f = {f}, D = {} bits", 8 * d_bytes),
            &header,
            &rows,
        );
    }
    println!("paper: every run certifies the bound (last column true).");
}
