//! E5 — Appendix E / Corollary 7: the safe register costs a constant
//! `n·D/k = (2f/k+1)·D` bits at any concurrency, is wait-free, and the
//! lower-bound adversary cannot blow it up — the `Ω(min(f,c)·D)` bound is
//! specific to regular semantics.

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};

fn main() {
    banner(
        "E5 (Appendix E, Corollary 7)",
        "safe register: constant n·D/k storage, wait-free, escapes Ad",
    );
    let header = vec!["f", "k", "c", "peak_obj_bits", "formula_bits", "exact"];
    let mut rows = Vec::new();
    for (f, k) in [(1usize, 2usize), (2, 2), (2, 4), (4, 8)] {
        let cfg = RegisterConfig::paper(f, k, 128).unwrap();
        let proto = Safe::new(cfg);
        let formula = (cfg.n as u64) * 8 * (cfg.value_len.div_ceil(cfg.k) as u64);
        for c in [1usize, 4, 16] {
            let row = experiments::measure_storage(&proto, c, 2, 5_000 + c as u64);
            rows.push(vec![
                f.to_string(),
                k.to_string(),
                c.to_string(),
                row.peak_object_bits.to_string(),
                formula.to_string(),
                (row.peak_object_bits == formula).to_string(),
            ]);
        }
    }
    print_table("safe register, D = 1024 bits", &header, &rows);

    // The adversary stalls instead of winning.
    let cfg = RegisterConfig::paper(2, 4, 128).unwrap();
    let proto = Safe::new(cfg);
    let params = AdversaryParams {
        ell_bits: 600,
        data_bits: cfg.data_bits(),
        f: cfg.f,
        concurrency: 6,
    };
    let report = experiments::adversary_blowup(&proto, 6, params, 10_000_000);
    println!(
        "adversary Ad vs safe register: outcome {:?}, object storage {} bits (constant)",
        report.outcome, report.storage_at_stop.object_bits
    );
    println!("paper: storage exactly n·D/k at every c; Ad stalls without certifying the bound.");
}
