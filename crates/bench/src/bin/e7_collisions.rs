//! E7 — Claim 1: as long as the storage holds blocks of a write with
//! fewer than `D` total bits (distinct indices), two colliding values
//! exist — found analytically for Reed–Solomon (kernel of the restricted
//! encoding matrix) and by brute-force enumeration for arbitrary
//! black-box codes.

use rsb_bench::{banner, print_table};
use rsb_coding::{Code, Rateless, ReedSolomon, Replication};
use rsb_lowerbound::{brute_force_collision, rs_colliding_values, verify_collision};

fn main() {
    banner(
        "E7 (Claim 1)",
        "pigeonhole collisions below D stored bits, constructive",
    );

    // Analytic: RS codes of various shapes, every index-set size below k.
    let header = vec![
        "k",
        "n",
        "|I|",
        "stored_bits",
        "D_bits",
        "collision",
        "verified",
    ];
    let mut rows = Vec::new();
    for (k, n) in [(2usize, 4usize), (4, 8), (8, 16), (16, 32)] {
        let code = ReedSolomon::new(k, n, 64).unwrap();
        let piece = code.block_size_bits(0);
        for m in 0..=k {
            let indices: Vec<u32> = (0..m as u32).collect();
            let result = rs_colliding_values(&code, &indices);
            let (found, verified) = match &result {
                Ok(c) => (true, verify_collision(&code, c).unwrap()),
                Err(_) => (false, false),
            };
            rows.push(vec![
                k.to_string(),
                n.to_string(),
                m.to_string(),
                (m as u64 * piece).to_string(),
                code.data_bits().to_string(),
                found.to_string(),
                verified.to_string(),
            ]);
        }
    }
    print_table("Reed–Solomon (analytic kernel)", &header, &rows);

    // Brute force: genuine pigeonhole over black-box codes on a tiny V.
    let header = vec!["code", "|I|", "collision_found"];
    let mut rows = Vec::new();
    let rs = ReedSolomon::new(2, 4, 2).unwrap();
    for m in 0..=2usize {
        let indices: Vec<u32> = (0..m as u32).collect();
        let found = brute_force_collision(&rs, &indices).unwrap().is_some();
        rows.push(vec!["rs 2-of-4".into(), m.to_string(), found.to_string()]);
    }
    let rateless = Rateless::new(2, 2).unwrap();
    for m in 0..=2usize {
        let indices: Vec<u32> = (0..m as u32).map(|i| 100 + i).collect();
        let found = brute_force_collision(&rateless, &indices)
            .unwrap()
            .is_some();
        rows.push(vec![
            "rateless k=2".into(),
            m.to_string(),
            found.to_string(),
        ]);
    }
    let repl = Replication::new(3, 1).unwrap();
    for m in 0..=1usize {
        let indices: Vec<u32> = (0..m as u32).collect();
        let found = brute_force_collision(&repl, &indices).unwrap().is_some();
        rows.push(vec!["replication".into(), m.to_string(), found.to_string()]);
    }
    print_table("black-box enumeration (|V| = 2^16 or 2^8)", &header, &rows);
    println!("paper: collisions exist exactly while stored bits < D (|I| < k for MDS codes);");
    println!("replication (k = 1) collides only on the empty set — why it never blocks reads.");
}
