//! E8 — Figure 3: a step-by-step trace of the adversary `Ad` working over
//! four concurrent writers, showing the freezing of base objects (`F`)
//! and the migration of writes between `C⁻` and `C⁺`, exactly the
//! scenario the paper's figure illustrates (with `2D/5 < ℓ < D`).

use reliable_storage::prelude::*;
use rsb_bench::banner;
use rsb_fpsm::Scheduler;

fn main() {
    banner(
        "E8 (Figure 3)",
        "adversary trace: freezing and C⁻/C⁺ transitions, 4 writers, 2D/5 < ℓ < D",
    );
    // Pure-coded protocol, k = 8 pieces of D/8 bits; ℓ = D/2 ∈ (2D/5, D):
    // an object freezes after 3 new pieces (plus v₀'s), a write enters C⁺
    // after 5 pieces — the same dynamics the paper's figure walks through.
    let cfg = RegisterConfig::paper(2, 8, 160).unwrap(); // n = 12, D = 1280
    let proto = Coded::new(cfg);
    let mut sim = proto.new_sim();
    for i in 0..4u64 {
        let w = proto.add_client(&mut sim);
        sim.invoke(w, OpRequest::Write(Value::seeded(i + 1, 160)))
            .expect("fresh writers");
    }
    let params = AdversaryParams::theorem1(cfg.data_bits(), cfg.f, 4);
    println!(
        "n = {}, D = {} bits, ℓ = {} bits, piece = {} bits",
        cfg.n,
        params.data_bits,
        params.ell_bits,
        params.data_bits / cfg.k as u64
    );
    println!();

    let mut ad = AdversaryAd::new(params);
    let mut step = 0u64;
    let mut last = Snapshot::capture(&sim, &params);
    while let Some(ev) = Scheduler::<_, _>::next_event(&mut ad, &sim) {
        sim.step(ev).expect("adversary picks enabled events");
        step += 1;
        let snap = Snapshot::capture(&sim, &params);
        if snap.frozen != last.frozen || snap.cplus != last.cplus {
            let frozen: Vec<String> = snap
                .frozen
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            let cplus: Vec<String> = snap
                .cplus
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            let contributed: Vec<String> = snap
                .contributed
                .iter()
                .map(|(op, bits)| format!("{op}:{bits}"))
                .collect();
            println!(
                "t={step:<5} {ev:?}\n         F = {{{}}}  C+ = {{{}}}  ‖S(t,w)‖ = {{{}}}",
                frozen.join(", "),
                cplus.join(", "),
                contributed.join(", ")
            );
            last = snap;
        }
    }
    println!();
    println!(
        "stopped: {:?} after {step} events; storage {}",
        ad.outcome().unwrap(),
        sim.storage_cost()
    );
    println!("paper (Fig. 3): blocks accumulate until objects freeze (join F) and writes");
    println!("cross the D−ℓ threshold into C⁺; overwrites can move a write back to C⁻.");
}
