//! E9 — the sharded store under heavy multi-key traffic.
//!
//! Sweeps shard count × protocol × client count over a keyed workload and
//! reports throughput, latency, and live storage occupancy — the paper's
//! space bounds (ABD's `(2f+1)·D` replication vs the adaptive coder's
//! `(2f+k)·D/k` quiescent cost) observed on a running service rather
//! than inside the deterministic simulator. A single-lock
//! [`ThreadedRegister`] baseline runs the same operation stream to show
//! what per-shard drivers buy over the one-simulation-one-lock runtime.
//!
//! ```sh
//! cargo run --release -p rsb-bench --bin e9_store_load            # full sweep
//! cargo run --release -p rsb-bench --bin e9_store_load -- --quick # CI smoke
//! ```

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};
use rsb_store::load::{run_load, LoadMode, LoadSpec};
use rsb_store::{EvictionPolicy, HistoryPolicy, ProtocolSpec, Store, StoreConfig};
use rsb_workloads::{key_rank, KeyedAction, KeyedScenario};
use std::time::Instant;

/// One measured cell of the sweep.
struct Cell {
    ops: u64,
    secs: f64,
    mean_us: f64,
    p99_us: f64,
    occupancy_bits: u64,
    keys: usize,
}

impl Cell {
    fn kops(&self) -> f64 {
        self.ops as f64 / self.secs / 1e3
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

fn summarize(ops: u64, secs: f64, mut lat_ns: Vec<u64>, occupancy_bits: u64, keys: usize) -> Cell {
    lat_ns.sort_unstable();
    let mean_us = if lat_ns.is_empty() {
        0.0
    } else {
        lat_ns.iter().sum::<u64>() as f64 / lat_ns.len() as f64 / 1e3
    };
    Cell {
        ops,
        secs,
        mean_us,
        p99_us: percentile(&lat_ns, 0.99),
        occupancy_bits,
        keys,
    }
}

/// Drives `scenario` against a store, blocking clients on one OS thread
/// each. Returns the cell plus the store (still live) for metrics and
/// history inspection.
fn run_store_cell(
    protocol: ProtocolSpec,
    shards: usize,
    scenario: &KeyedScenario,
) -> (Cell, Store) {
    let rsb_workloads::ValueSizeDist::Fixed(value_len) = scenario.value_sizes else {
        unreachable!("e9 uses fixed-size values")
    };
    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let config = StoreConfig::uniform(shards, protocol, reg);
    run_config_cell(config, scenario)
}

/// Like [`run_store_cell`], for an arbitrary store configuration.
fn run_config_cell(config: StoreConfig, scenario: &KeyedScenario) -> (Cell, Store) {
    let store = Store::start(config).expect("valid config");

    let start = Instant::now();
    let handles: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let client = store.client();
            let stream = scenario.client_ops(c);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                for op in stream {
                    let t = Instant::now();
                    match op.action {
                        KeyedAction::Read => {
                            client.read_blocking(&op.key).expect("store is live");
                        }
                        KeyedAction::Write(v) => {
                            client.write_blocking(&op.key, v).expect("store is live");
                        }
                    }
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat_ns = Vec::with_capacity(scenario.total_ops());
    for h in handles {
        lat_ns.extend(h.join().expect("client thread"));
    }
    let secs = start.elapsed().as_secs_f64();

    let metrics = store.metrics();
    let cell = summarize(
        metrics.totals().completed(),
        secs,
        lat_ns,
        metrics.occupancy_bits(),
        metrics.keys(),
    );
    (cell, store)
}

/// The same operation stream against one register behind one lock: every
/// operation, whatever its key, goes through the single simulation of a
/// [`ThreadedRegister`] — the pre-sharding runtime.
fn run_single_lock<P: RegisterProtocol + Send + 'static>(
    proto: P,
    scenario: &KeyedScenario,
) -> Cell {
    let reg = ThreadedRegister::start(proto);
    let start = Instant::now();
    let handles: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let handle = reg.client();
            let stream = scenario.client_ops(c);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                for op in stream {
                    let t = Instant::now();
                    match op.action {
                        KeyedAction::Read => {
                            handle.read().expect("register is live");
                        }
                        KeyedAction::Write(v) => {
                            handle.write(v).expect("register is live");
                        }
                    }
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat_ns = Vec::with_capacity(scenario.total_ops());
    for h in handles {
        lat_ns.extend(h.join().expect("client thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    let occupancy = reg.storage_cost().total();
    let cell = summarize(scenario.total_ops() as u64, secs, lat_ns, occupancy, 1);
    reg.shutdown();
    cell
}

fn cell_row(proto: ProtocolSpec, shards: usize, clients: usize, cell: &Cell) -> Vec<String> {
    vec![
        proto.to_string(),
        shards.to_string(),
        clients.to_string(),
        cell.ops.to_string(),
        format!("{:.3}", cell.secs),
        format!("{:.1}", cell.kops()),
        format!("{:.0}", cell.mean_us),
        format!("{:.0}", cell.p99_us),
        (cell.occupancy_bits / 8 / 1024).to_string(),
        cell.keys.to_string(),
    ]
}

fn spot_check_consistency(store: &Store, quota: usize) {
    let mut checked = 0;
    let mut foreign = 0;
    for key in store.keys() {
        if checked == quota {
            break;
        }
        // Keys outside the canonical `k<digits>` namespace (a custom key
        // distribution, say) are reported and skipped — never a panic.
        if key_rank(&key).is_none() {
            foreign += 1;
            continue;
        }
        let h = store.key_history(&key).expect("key was materialized");
        let history =
            History::from_fpsm(h.initial, &h.records).expect("runtime histories are well-formed");
        check_strong_regularity(&history).expect("strong regularity of a recorded key history");
        checked += 1;
    }
    print!("consistency spot-check: strong regularity holds on {checked} recorded key histories");
    if foreign > 0 {
        print!(" ({foreign} non-canonical keys skipped)");
    }
    println!();
}

/// Grouped submission against the loopback store: the same closed-loop
/// keyed workload issued through [`StoreClient::submit_batch`], with the
/// batch size swept. A batch costs one transport round and one
/// shard-map lock acquisition per key group instead of one per op, so
/// on a closed loop the per-op condvar round-trips that dominate small
/// ops amortize across the batch. The phase columns come from the
/// store's own histograms (submit → execute-start and the execute
/// step), so the table attributes where the saved time goes.
fn batched_submission_section(quick: bool, value_len: usize) {
    let clients = 16;
    let ops_per_client = if quick { 64 } else { 1024 };
    let keys = 64;
    let shards = 8;
    let batches: &[usize] = if quick { &[1, 16] } else { &[1, 4, 16, 64] };
    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let mut rows = Vec::new();
    let mut per_op_kops = 0.0f64;
    let mut batch16_kops = 0.0f64;
    for (i, &batch) in batches.iter().enumerate() {
        // A fresh store per cell keeps the phase histograms attributable
        // to this batch size alone. ABD keeps the execute step lean, so
        // the sweep isolates what batching actually amortizes — the
        // per-op submission overhead (map lock, driver wakeup, client
        // condvar round-trip).
        let store = Store::start(StoreConfig::uniform(shards, ProtocolSpec::Abd, reg))
            .expect("valid config");
        let spec = LoadSpec {
            clients,
            ops_per_client,
            keys,
            write_fraction: 0.5,
            value_len,
            seed: 77_000 + i as u64,
            mode: LoadMode::Closed,
            batch,
        };
        let r = run_load(&store.client(), &spec);
        assert_eq!(r.errors, 0, "batched run errored: {:?}", r.first_error);
        let m = store.metrics();
        let queue = m.queue_wait();
        let exec = m.execute();
        rows.push(vec![
            batch.to_string(),
            r.ok.to_string(),
            format!("{:.3}", r.elapsed.as_secs_f64()),
            format!("{:.1}", r.kops()),
            format!("{:.0}", r.latency.quantile_us(0.50)),
            format!("{:.0}", r.latency.quantile_us(0.99)),
            format!("{:.0}", queue.quantile_us(0.50)),
            format!("{:.0}", queue.quantile_us(0.99)),
            format!("{:.0}", exec.quantile_us(0.50)),
            format!("{:.0}", exec.quantile_us(0.99)),
        ]);
        if batch == 1 {
            per_op_kops = r.kops();
        }
        if batch >= 16 {
            batch16_kops = batch16_kops.max(r.kops());
        }
        store.shutdown();
    }
    print_table(
        &format!(
            "batched submission, closed loop ({clients} clients x {ops_per_client} ops, {keys} \
             keys, 50% reads, abd, {shards} shards; client latency = issue -> batch-last \
             completion, queue/exec from store histograms)"
        ),
        &[
            "batch",
            "ops",
            "secs",
            "kops/s",
            "p50_us",
            "p99_us",
            "queue_p50",
            "queue_p99",
            "exec_p50",
            "exec_p99",
        ],
        &rows,
    );
    println!(
        "batching gain: x{:.2} ops/s at batch >= 16 over per-op submission ({:.1} vs {:.1} \
         kops/s, {clients} closed-loop clients)\n",
        batch16_kops / per_op_kops.max(1e-9),
        batch16_kops,
        per_op_kops,
    );
}

/// Sustained traffic against one hot key set, sampled in waves: without a
/// history policy the per-key `OpRecord` history grows linearly; with
/// `truncate-after-N` the live-record occupancy stays flat while the
/// registers keep serving (and their histories keep checking out).
fn history_bounds_section(quick: bool, clients: usize, value_len: usize) {
    let bound = 64;
    let waves = if quick { 4 } else { 8 };
    let ops_per_wave = if quick { 15 } else { 40 };
    let keys = 8;
    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let policies = [
        ("unbounded", HistoryPolicy::Unbounded),
        ("truncate-64", HistoryPolicy::TruncateAfter(bound)),
    ];
    let mut rows = Vec::new();
    let mut checked_store = None;
    for (label, policy) in policies {
        let store =
            Store::start(StoreConfig::uniform(4, ProtocolSpec::Abd, reg).with_history(policy))
                .expect("valid config");
        for wave in 0..waves {
            let scenario = KeyedScenario::uniform(
                clients,
                ops_per_wave,
                keys,
                0.5,
                value_len,
                9_000 + wave as u64,
            );
            drive_wave(&store, &scenario);
            let m = store.metrics();
            let totals = m.totals();
            rows.push(vec![
                label.to_string(),
                (wave + 1).to_string(),
                totals.completed().to_string(),
                m.live_records().to_string(),
                totals.truncated_records.to_string(),
                (m.occupancy_bits() / 8 / 1024).to_string(),
            ]);
        }
        if policy == HistoryPolicy::Unbounded {
            store.shutdown();
        } else {
            // Keep the bounded store for the post-table spot checks.
            checked_store = Some(store);
        }
    }
    print_table(
        &format!(
            "history bounds under sustained traffic ({clients} clients x {ops_per_wave} \
             ops/wave, {keys} keys, abd, 4 shards)"
        ),
        &["policy", "wave", "ops", "live_recs", "truncated", "occ_KiB"],
        &rows,
    );
    if let Some(store) = checked_store {
        spot_check_consistency(&store, 4);
        let evicted = store.evict_quiescent();
        let after = store.metrics();
        println!(
            "evict_quiescent: {evicted} keys -> snapshots ({} KiB live occupancy, {} KiB snapshot \
             bits)\n",
            after.occupancy_bits() / 8 / 1024,
            after.shards.iter().map(|sh| sh.snapshot_bits).sum::<u64>() / 8 / 1024,
        );
    }
}

/// Drives one wave of a keyed scenario with blocking per-client threads.
fn drive_wave(store: &Store, scenario: &KeyedScenario) {
    let handles: Vec<_> = (0..scenario.clients)
        .map(|c| {
            let client = store.client();
            let stream = scenario.client_ops(c);
            std::thread::spawn(move || {
                for op in stream {
                    match op.action {
                        KeyedAction::Read => {
                            client.read_blocking(&op.key).expect("store is live");
                        }
                        KeyedAction::Write(v) => {
                            client.write_blocking(&op.key, v).expect("store is live");
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}

/// Memory governance under skewed reuse with key churn: every wave's
/// zipf(0.99) traffic targets a *growing* keyspace — the hot head keeps
/// getting reused while a cold tail accumulates — so an ungoverned
/// store's live occupancy grows wave over wave, while `OccupancyAbove`
/// holds its watermark by evicting the cold tail coldest-first and
/// `IdleAfter` reclaims whatever goes quiescent past its idle age. Read
/// latency is reported from the store's own histograms, split by
/// whether the read hit a live key or paid a rematerialization.
fn memory_governance_section(quick: bool, value_len: usize) {
    let clients = if quick { 8 } else { 16 };
    let waves = if quick { 4 } else { 8 };
    let ops_per_wave = if quick { 25 } else { 60 };
    let base_keys = 24;
    let keys_per_wave = 24;
    let shards = 4;
    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");

    // Size the watermarks from a measured baseline: the live footprint
    // of the first wave's keyspace, fully materialized.
    let probe =
        Store::start(StoreConfig::uniform(shards, ProtocolSpec::Abd, reg)).expect("valid config");
    drive_wave(
        &probe,
        &KeyedScenario::uniform(clients, ops_per_wave, base_keys, 0.0, value_len, 31_000),
    );
    let wave_footprint = probe.metrics().occupancy_bits();
    probe.shutdown();
    // Budget: twice the first wave's footprint, split across shards;
    // reclaim down to 3/4 of the per-shard bound once triggered.
    let bits = wave_footprint * 2 / shards as u64;
    let low_watermark = bits * 3 / 4;

    let policies: Vec<(&str, EvictionPolicy)> = vec![
        ("unbounded", EvictionPolicy::Manual),
        (
            "occupancy",
            EvictionPolicy::OccupancyAbove {
                bits,
                low_watermark,
            },
        ),
        ("idle-128", EvictionPolicy::IdleAfter(128)),
    ];
    let mut rows = Vec::new();
    let mut latency_rows = Vec::new();
    let mut governed_store = None;
    for (label, policy) in policies {
        let store = Store::start(
            StoreConfig::uniform(shards, ProtocolSpec::Abd, reg)
                .with_history(HistoryPolicy::TruncateAfter(64))
                .with_eviction(policy),
        )
        .expect("valid config");
        for wave in 0..waves {
            let keys = base_keys + wave * keys_per_wave;
            let scenario = KeyedScenario::uniform(
                clients,
                ops_per_wave,
                keys,
                0.5,
                value_len,
                31_100 + wave as u64,
            )
            .with_zipf(0.99);
            drive_wave(&store, &scenario);
            // Give the driver-pool governor a beat to finish its sweep
            // after the last completion (it runs between batches and on
            // the idle transition — no dedicated threads to join).
            std::thread::sleep(std::time::Duration::from_millis(30));
            let m = store.metrics();
            let totals = m.totals();
            rows.push(vec![
                label.to_string(),
                (wave + 1).to_string(),
                m.keys().to_string(),
                (m.occupancy_bits() / 8 / 1024).to_string(),
                match policy {
                    EvictionPolicy::Manual => "-".to_string(),
                    EvictionPolicy::IdleAfter(n) => format!("idle>{n}"),
                    EvictionPolicy::OccupancyAbove { bits, .. } => {
                        (bits * shards as u64 / 8 / 1024).to_string()
                    }
                },
                m.evicted_keys().to_string(),
                totals.evictions().to_string(),
                totals.rematerialized.to_string(),
                m.live_records().to_string(),
            ]);
        }
        let m = store.metrics();
        let hit = m.read_hit_latency();
        let remat = m.read_remat_latency();
        let write = m.write_latency();
        latency_rows.push(vec![
            label.to_string(),
            hit.count().to_string(),
            format!("{:.0}", hit.quantile_us(0.50)),
            format!("{:.0}", hit.quantile_us(0.99)),
            format!("{:.0}", hit.quantile_us(0.999)),
            remat.count().to_string(),
            format!("{:.0}", remat.quantile_us(0.50)),
            format!("{:.0}", remat.quantile_us(0.99)),
            format!("{:.0}", remat.quantile_us(0.999)),
            write.count().to_string(),
            format!("{:.0}", write.quantile_us(0.50)),
            format!("{:.0}", write.quantile_us(0.99)),
        ]);
        if label == "occupancy" {
            governed_store = Some(store);
        } else {
            store.shutdown();
        }
    }
    print_table(
        &format!(
            "memory governance under zipf(0.99) reuse with key churn ({clients} clients x \
             {ops_per_wave} ops/wave, +{keys_per_wave} keys/wave, abd, {shards} shards, \
             truncate-64 history)"
        ),
        &[
            "policy",
            "wave",
            "keys",
            "occ_KiB",
            "bound_KiB",
            "evicted",
            "evs",
            "remat",
            "live_recs",
        ],
        &rows,
    );
    print_table(
        "latency by outcome (store-measured, submit -> completion)",
        &[
            "policy",
            "hits",
            "p50_us",
            "p99_us",
            "p999_us",
            "remats",
            "r_p50_us",
            "r_p99_us",
            "r_p999_us",
            "writes",
            "w_p50_us",
            "w_p99_us",
        ],
        &latency_rows,
    );
    if let Some(store) = governed_store {
        // Histories that span governed eviction/rematerialization cycles
        // must still check out.
        spot_check_consistency(&store, 6);
        store.shutdown();
    }
    println!(
        "governance: `occupancy` holds live occupancy at/below its bound while `unbounded` \
         grows with the key churn; rematerializing reads pay the restore cost in their tail.\n"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var("E9_QUICK").is_ok();
    banner(
        "E9 (sharded store)",
        "shard count × protocol × clients: throughput, latency, live occupancy",
    );

    let protocols = [ProtocolSpec::Abd, ProtocolSpec::Adaptive];
    let shard_counts: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let client_counts: &[usize] = if quick { &[16] } else { &[16, 32] };
    let (keys, ops_per_client) = if quick { (64, 25) } else { (256, 150) };
    let value_len = 64;
    let seed = 42;

    let header = vec![
        "proto", "shards", "clients", "ops", "secs", "kops/s", "mean_us", "p99_us", "occ_KiB",
        "keys",
    ];
    let mut rows = Vec::new();
    let mut best_sharded_kops = 0.0f64;
    let mut showcase: Option<Store> = None;
    for &clients in client_counts {
        let scenario = KeyedScenario::uniform(clients, ops_per_client, keys, 0.5, value_len, seed);
        for &proto in &protocols {
            for &shards in shard_counts {
                let (cell, store) = run_store_cell(proto, shards, &scenario);
                // The headline comparison must be like-for-like: only
                // cells running the exact scenario the single-lock
                // baseline will run (same client count, same op stream).
                if shards > 1 && clients == client_counts[0] {
                    best_sharded_kops = best_sharded_kops.max(cell.kops());
                }
                rows.push(cell_row(proto, shards, clients, &cell));
                // Keep the 8-shard adaptive store for the per-shard table
                // and the consistency spot-check.
                if proto == ProtocolSpec::Adaptive && shards == 8 && showcase.is_none() {
                    showcase = Some(store);
                } else {
                    store.shutdown();
                }
            }
        }
    }
    print_table(
        "store sweep (f = 1, k = 2, D = 512 bits, 50% reads, uniform keys)",
        &header,
        &rows,
    );

    // Key-popularity skew: zipfian runs across shard counts, with the
    // event-driven scheduler's steal counters. The `steal=off` control
    // shows what the work-stealing drivers add on top of ready queues.
    let zipf_clients = client_counts[0];
    let zipf = KeyedScenario::uniform(zipf_clients, ops_per_client, keys, 0.5, value_len, seed + 1)
        .with_zipf(0.99);
    let zipf_shards: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    let mut zipf_rows = Vec::new();
    let mut zipf_run = |label: &str, config: StoreConfig, scenario: &KeyedScenario| {
        let (cell, store) = run_config_cell(config, scenario);
        let totals = store.metrics().totals();
        zipf_rows.push(vec![
            label.to_string(),
            store.shard_count().to_string(),
            zipf_clients.to_string(),
            cell.ops.to_string(),
            format!("{:.1}", cell.kops()),
            format!("{:.0}", cell.p99_us),
            cell.keys.to_string(),
            totals.steals.to_string(),
            totals.stolen.to_string(),
        ]);
        store.shutdown();
    };
    let zipf_reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    for &shards in zipf_shards {
        zipf_run(
            "zipf(0.99)",
            StoreConfig::uniform(shards, ProtocolSpec::Adaptive, zipf_reg),
            &zipf,
        );
    }
    zipf_run(
        "zipf steal=off",
        StoreConfig::uniform(
            *zipf_shards.last().unwrap(),
            ProtocolSpec::Adaptive,
            zipf_reg,
        )
        .with_work_stealing(false),
        &zipf,
    );
    let hot = KeyedScenario::uniform(zipf_clients, ops_per_client, keys, 0.5, value_len, seed + 2)
        .with_hot_spot(2, 0.8);
    zipf_run(
        "hot-spot(2@80%)",
        StoreConfig::uniform(
            *zipf_shards.last().unwrap(),
            ProtocolSpec::Adaptive,
            zipf_reg,
        ),
        &hot,
    );
    print_table(
        "key-distribution effect (adaptive; ready-queue scheduling + work-stealing)",
        &[
            "dist", "shards", "clients", "ops", "kops/s", "p99_us", "keys", "steals", "stolen",
        ],
        &zipf_rows,
    );

    batched_submission_section(quick, value_len);

    history_bounds_section(quick, zipf_clients, value_len);

    memory_governance_section(quick, value_len);

    // Per-shard breakdown + consistency spot-check on the showcase store.
    if let Some(store) = showcase {
        let metrics = store.metrics();
        let shard_header = vec![
            "shard", "proto", "keys", "reads", "writes", "rd_KiB", "wr_KiB", "occ_KiB", "peak_KiB",
            "steals", "stolen", "recs",
        ];
        let shard_rows: Vec<Vec<String>> = metrics
            .shards
            .iter()
            .map(|s| {
                vec![
                    s.shard.to_string(),
                    s.protocol.clone(),
                    s.keys.to_string(),
                    s.ops.reads_completed.to_string(),
                    s.ops.writes_completed.to_string(),
                    (s.ops.bytes_read / 1024).to_string(),
                    (s.ops.bytes_written / 1024).to_string(),
                    (s.occupancy.total() / 8 / 1024).to_string(),
                    (s.peak_register_bits / 8 / 1024).to_string(),
                    s.ops.steals.to_string(),
                    s.ops.stolen.to_string(),
                    s.live_records.to_string(),
                ]
            })
            .collect();
        print_table(
            "per-shard breakdown (adaptive, 8 shards, 16 clients)",
            &shard_header,
            &shard_rows,
        );
        spot_check_consistency(&store, 5);
        store.shutdown();
    }

    // The single-lock baseline: same stream, one register, one lock.
    let base_scenario =
        KeyedScenario::uniform(client_counts[0], ops_per_client, keys, 0.5, value_len, seed);
    let reg = RegisterConfig::paper(1, 2, value_len).expect("valid parameters");
    let mut base_rows = Vec::new();
    let mut base_best_kops = 0.0f64;
    for &proto in &protocols {
        let cell = match proto {
            ProtocolSpec::Abd => run_single_lock(Abd::new(reg), &base_scenario),
            ProtocolSpec::Adaptive => run_single_lock(Adaptive::new(reg), &base_scenario),
            _ => unreachable!("sweep uses abd/adaptive"),
        };
        base_best_kops = base_best_kops.max(cell.kops());
        base_rows.push(cell_row(proto, 1, client_counts[0], &cell));
    }
    print_table(
        "single-lock ThreadedRegister baseline (same op stream, one register)",
        &header,
        &base_rows,
    );
    println!(
        "best multi-shard store: {best_sharded_kops:.1} kops/s vs best single-lock register: \
         {base_best_kops:.1} kops/s  (×{:.1}, same workload: {} clients × {ops_per_client} ops)",
        best_sharded_kops / base_best_kops.max(1e-9),
        client_counts[0],
    );
    println!(
        "paper mapping: occ_KiB per key tracks the space bounds — ABD stores (2f+1)·D per \
         register, the adaptive coder (2f+k)·D/k when quiescent."
    );
}
