//! Load-generating client for a running `e10_store_server`.
//!
//! Closed loop by default; pass `--rate OPS_PER_SEC` for open-loop
//! arrivals (fixed schedule, latency measured from the scheduled start —
//! coordinated-omission-free). Each client thread gets its own TCP
//! connection. Pass `--batch N` to group submissions into `BatchReq`
//! frames of `N` operations per wire round.
//!
//! Pass `--stats` to skip the load entirely and scrape the server's
//! live metrics over the wire instead, printed as Prometheus-style
//! exposition text; add `--check` to also assert the metric invariants
//! (submissions ≥ completions, phase histograms covering completions).
//!
//! ```sh
//! cargo run --release -p rsb-bench --bin e10_store_client -- \
//!     --addr 127.0.0.1:7400 --clients 16 --ops 500 --rate 10000
//! cargo run --release -p rsb-bench --bin e10_store_client -- \
//!     --addr 127.0.0.1:7400 --stats --check
//! ```

use reliable_storage::prelude::*;
use rsb_bench::print_table;
use rsb_store::load::{run_load, LoadMode, LoadReport, LoadSpec};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Scrapes the server's metrics over the wire and prints them. With
/// `check`, asserts the invariants an external monitor may rely on.
fn scrape_stats(addr: std::net::SocketAddr, check: bool) {
    let client: StoreClient<TcpTransport> =
        StoreClient::over(TcpTransport::connect(addr).expect("connect to server"));
    let m = client.stats().expect("stats scrape");
    print!("{}", m.render_prometheus());
    if check {
        let t = m.totals();
        assert!(
            t.submitted() >= t.completed(),
            "submissions {} must cover completions {}",
            t.submitted(),
            t.completed()
        );
        // Phase samples are recorded per completion; a scrape of a live
        // server can catch a completion between its two histogram
        // updates, so allow a sliver of in-flight skew.
        let (q, e) = (m.queue_wait().count(), m.execute().count());
        assert!(
            q.abs_diff(e) <= 16,
            "phase counts diverged: queue {q}, exec {e}"
        );
        assert!(
            q <= t.completed() && m.end_to_end_latency().count() <= t.completed(),
            "phase samples {} exceed completions {}",
            q,
            t.completed()
        );
        // Wire samples lag completions by in-flight response writes.
        assert!(m.wire().count() <= t.completed());
        eprintln!("stats check: ok ({} ops completed)", t.completed());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7400".into());
    if has_flag(&args, "--stats") {
        let sock_addr: std::net::SocketAddr = addr.parse().expect("--addr is host:port");
        scrape_stats(sock_addr, has_flag(&args, "--check"));
        return;
    }
    let clients: usize = flag(&args, "--clients").map_or(8, |v| v.parse().expect("--clients"));
    let ops: usize = flag(&args, "--ops").map_or(200, |v| v.parse().expect("--ops"));
    let keys: usize = flag(&args, "--keys").map_or(128, |v| v.parse().expect("--keys"));
    let value_len: usize =
        flag(&args, "--value-len").map_or(64, |v| v.parse().expect("--value-len"));
    let write_fraction: f64 =
        flag(&args, "--write-frac").map_or(0.5, |v| v.parse().expect("--write-frac"));
    let seed: u64 = flag(&args, "--seed").map_or(1, |v| v.parse().expect("--seed"));
    let rate: Option<f64> = flag(&args, "--rate").map(|v| v.parse().expect("--rate"));
    let batch: usize = flag(&args, "--batch").map_or(1, |v| v.parse().expect("--batch"));

    let spec = LoadSpec {
        clients: 1, // one spec slice per OS thread; each thread owns a connection
        ops_per_client: ops,
        keys,
        write_fraction,
        value_len,
        seed,
        mode: LoadMode::Closed,
        batch,
    };
    let sock_addr: std::net::SocketAddr = addr.parse().expect("--addr is host:port");
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let slice = LoadSpec {
                seed: seed.wrapping_add(c as u64),
                mode: match rate {
                    None => LoadMode::Closed,
                    Some(r) => LoadMode::Open {
                        rate: r / clients as f64,
                    },
                },
                ..spec.clone()
            };
            std::thread::spawn(move || {
                let client: StoreClient<TcpTransport> =
                    StoreClient::over(TcpTransport::connect(sock_addr).expect("connect to server"));
                run_load(&client, &slice)
            })
        })
        .collect();

    let mut merged: Option<LoadReport> = None;
    for h in handles {
        let r = h.join().expect("load thread");
        match &mut merged {
            None => merged = Some(r),
            Some(m) => {
                m.issued += r.issued;
                m.ok += r.ok;
                m.errors += r.errors;
                if m.first_error.is_none() {
                    m.first_error = r.first_error;
                }
                m.elapsed = m.elapsed.max(r.elapsed);
                m.latency.merge(&r.latency);
            }
        }
    }
    let r = merged.expect("at least one client");
    if let Some(err) = &r.first_error {
        eprintln!("first error: {err}");
    }
    print_table(
        &format!(
            "{addr} — {clients} clients x {ops} ops, {}{}",
            rate.map_or_else(|| "closed loop".into(), |x| format!("open loop @ {x:.0}/s")),
            if batch > 1 {
                format!(", batch {batch}")
            } else {
                String::new()
            }
        ),
        &[
            "ops", "ok", "errs", "secs", "kops/s", "p50_us", "p99_us", "p999_us",
        ],
        &[vec![
            r.issued.to_string(),
            r.ok.to_string(),
            r.errors.to_string(),
            format!("{:.3}", r.elapsed.as_secs_f64()),
            format!("{:.1}", r.kops()),
            format!("{:.0}", r.latency.quantile_us(0.50)),
            format!("{:.0}", r.latency.quantile_us(0.99)),
            format!("{:.0}", r.latency.quantile_us(0.999)),
        ]],
    );
    assert_eq!(r.errors, 0, "load run saw errors: {:?}", r.first_error);
}
