//! E11 — Schedule-space model checking: the DPOR explorer over the
//! fault-prone shared-memory simulator, and the bounded-preemption
//! interleaving harness over the store's lock-free hot structures.
//!
//! Two engines, one verdict. The *protocol explorer* enumerates
//! message-delivery interleavings of tiny register configurations and
//! checks the paper's consistency conditions on every maximal schedule;
//! dynamic partial-order reduction (sleep sets + backtrack sets) prunes
//! schedules that only permute independent events. The *interleaving
//! harness* runs the `FlightRecorder` seqlock and `ReadyQueue` stealing
//! protocol on virtual threads, exhausting every schedule within a
//! preemption bound.
//!
//! `--quick` bounds each explorer scenario (still ≥10⁴ distinct
//! schedules per protocol) for the per-commit CI job; the default run
//! exhausts what is tractable. Exits nonzero on any violation.

use rsb_bench::{banner, print_table};
use rsb_consistency::Condition;
use rsb_fpsm::OpRequest;
use rsb_mc::explore::{explore, write_op, ExploreConfig, ExploreReport};
use rsb_mc::{sched, thread as vthread};
use rsb_registers::{Abd, AbdAtomic, ReadyQueue, RegisterConfig, RegisterProtocol, Safe};
use rsb_store::{FlightEventKind, FlightRecorder};
use std::sync::{Arc, Mutex};

fn cfg114() -> RegisterConfig {
    RegisterConfig::paper(1, 1, 4).unwrap()
}

/// One writer, one reader — the acceptance scenario (2 clients × 3 base
/// objects).
fn scripts_1w1r() -> Vec<Vec<OpRequest>> {
    vec![vec![write_op(0, 0, 4)], vec![OpRequest::Read]]
}

/// Two writers, one reader — a larger space for the bounded quick pass.
fn scripts_2w1r() -> Vec<Vec<OpRequest>> {
    vec![
        vec![write_op(0, 0, 4)],
        vec![write_op(1, 0, 4)],
        vec![OpRequest::Read],
    ]
}

struct ExploreRow {
    protocol: &'static str,
    scenario: &'static str,
    condition: Condition,
    report: ExploreReport,
}

fn run_explorer(
    proto: &impl RegisterProtocol,
    protocol: &'static str,
    scenario: &'static str,
    scripts: &[Vec<OpRequest>],
    condition: Condition,
    max_schedules: u64,
) -> ExploreRow {
    let report = explore(
        proto,
        scripts,
        &ExploreConfig {
            condition,
            max_schedules,
            ..ExploreConfig::default()
        },
    );
    ExploreRow {
        protocol,
        scenario,
        condition,
        report,
    }
}

/// DPOR pruning factor on the 1w+1r safe-register scenario (single
/// round-trip per operation, so the naive enumerator has a chance to
/// finish): full backtrack sets and no sleep sets against the DPOR
/// count. The naive space is budget-capped, so the factor is a lower
/// bound when the cap bites.
fn pruning_factor(quick: bool) -> (u64, u64, bool, String) {
    let proto = Safe::new(cfg114());
    let scripts = scripts_1w1r();
    let dpor = explore(&proto, &scripts, &ExploreConfig::default());
    assert!(dpor.exhausted, "DPOR must exhaust the 1w+1r space");
    let naive_cap: u64 = if quick { 300_000 } else { 3_000_000 };
    let naive = explore(
        &proto,
        &scripts,
        &ExploreConfig {
            dpor: false,
            max_schedules: naive_cap,
            ..ExploreConfig::default()
        },
    );
    let factor = naive.schedules as f64 / dpor.schedules as f64;
    let shown = if naive.exhausted {
        format!("{factor:.1}x")
    } else {
        format!(">={factor:.1}x (naive capped)")
    };
    (dpor.schedules, naive.schedules, naive.exhausted, shown)
}

// ---------------------------------------------------------------------------
// Interleaving harness scenarios (mirrors crates/mc/tests/interleavings.rs).
// ---------------------------------------------------------------------------

fn harness_cfg(preemption_bound: usize) -> sched::Config {
    sched::Config {
        preemption_bound,
        max_schedules: 500_000,
        max_steps: 100_000,
    }
}

fn recorder_tear_scenario() -> Result<sched::Report, sched::ModelError> {
    sched::model(&harness_cfg(3), || {
        let rec = Arc::new(FlightRecorder::new(4));
        let r1 = Arc::clone(&rec);
        let r2 = Arc::clone(&rec);
        let w1 = vthread::spawn(move || {
            r1.record(FlightEventKind::SubmitRead, Some(1), 11);
        });
        let w2 = vthread::spawn(move || {
            r2.record(FlightEventKind::SubmitWrite, Some(2), 22);
        });
        for e in rec.dump() {
            let intact = match e.kind {
                FlightEventKind::SubmitRead => e.shard == Some(1) && e.detail == 11,
                FlightEventKind::SubmitWrite => e.shard == Some(2) && e.detail == 22,
                _ => false,
            };
            assert!(intact, "torn or foreign event escaped dump(): {e:?}");
        }
        w1.join().unwrap();
        w2.join().unwrap();
        assert_eq!(rec.dump().len(), 2);
    })
}

fn recorder_wrap_scenario() -> Result<sched::Report, sched::ModelError> {
    sched::model(&harness_cfg(3), || {
        let rec = Arc::new(FlightRecorder::new(2));
        let log = Arc::new(Mutex::new(Vec::<(u64, u64)>::new()));
        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let rec = Arc::clone(&rec);
                let log = Arc::clone(&log);
                vthread::spawn(move || {
                    for k in 0..2u64 {
                        let detail = 10 * (w + 1) + k;
                        let seq = rec.record(FlightEventKind::Steal, Some(w as usize), detail);
                        log.lock().unwrap().push((seq, detail));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = log.lock().unwrap();
        for e in rec.dump() {
            assert!(
                log.contains(&(e.seq, e.detail)),
                "dump mixed sequence {} with payload {}",
                e.seq,
                e.detail
            );
        }
    })
}

fn steal_half_scenario() -> Result<sched::Report, sched::ModelError> {
    sched::model(&harness_cfg(3), || {
        let q = Arc::new(ReadyQueue::new());
        for _ in 0..4 {
            let s = q.register_slot();
            q.enqueue(s);
        }
        let qa = Arc::clone(&q);
        let ran = Arc::new(Mutex::new(Vec::new()));
        let ra = Arc::clone(&ran);
        let home = vthread::spawn(move || {
            while let Some(s) = qa.pop() {
                ra.lock().unwrap().push(s);
                qa.finish(s, false);
            }
        });
        let qb = Arc::clone(&q);
        let rb = Arc::clone(&ran);
        let thief = vthread::spawn(move || {
            for s in qb.pop_half() {
                rb.lock().unwrap().push(s);
                qb.finish(s, false);
            }
        });
        home.join().unwrap();
        thief.join().unwrap();
        let mut all = ran.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "each slot runs exactly once");
    })
}

fn dirty_requeue_scenario() -> Result<sched::Report, sched::ModelError> {
    sched::model(&harness_cfg(3), || {
        let q = Arc::new(ReadyQueue::new());
        let slot = q.register_slot();
        q.enqueue(slot);
        let qw = Arc::clone(&q);
        let runs = Arc::new(Mutex::new(0u32));
        let rw = Arc::clone(&runs);
        let worker = vthread::spawn(move || {
            while let Some(s) = qw.pop() {
                *rw.lock().unwrap() += 1;
                qw.finish(s, false);
            }
        });
        q.enqueue(slot);
        worker.join().unwrap();
        while let Some(s) = q.pop() {
            *runs.lock().unwrap() += 1;
            q.finish(s, false);
        }
        let runs = *runs.lock().unwrap();
        assert!(runs == 1 || runs == 2, "wakeup lost or duplicated: {runs}");
        assert!(q.is_empty());
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    banner(
        "E11 (model checking)",
        "DPOR schedule exploration + bounded-preemption interleaving harness",
    );
    let mut failures = 0usize;

    // -- Protocol explorer ---------------------------------------------------
    // Exhaustive acceptance scenario plus bounded larger spaces; quick
    // mode still drives ≥10⁴ distinct schedules through each protocol.
    let bounded: u64 = if quick { 15_000 } else { 120_000 };
    let rows = vec![
        run_explorer(
            &Abd::new(cfg114()),
            "abd",
            "1w+1r exhaustive",
            &scripts_1w1r(),
            Condition::StrongRegularity,
            u64::MAX,
        ),
        run_explorer(
            &Abd::new(cfg114()),
            "abd",
            "2w+1r bounded",
            &scripts_2w1r(),
            Condition::StrongRegularity,
            bounded,
        ),
        run_explorer(
            &AbdAtomic::new(cfg114()),
            "abd-atomic",
            "1w+1r bounded",
            &scripts_1w1r(),
            Condition::Atomicity,
            bounded,
        ),
        run_explorer(
            &Safe::new(cfg114()),
            "safe",
            "2w+1r bounded",
            &scripts_2w1r(),
            Condition::StrongSafety,
            bounded,
        ),
    ];
    let header = vec![
        "protocol",
        "scenario",
        "condition",
        "schedules",
        "events",
        "max_depth",
        "exhausted",
        "violations",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.protocol.to_string(),
                r.scenario.to_string(),
                r.condition.to_string(),
                r.report.schedules.to_string(),
                r.report.events.to_string(),
                r.report.max_depth.to_string(),
                r.report.exhausted.to_string(),
                r.report.violations.len().to_string(),
            ]
        })
        .collect();
    print_table("protocol explorer (DPOR)", &header, &table);
    for r in &rows {
        if !r.report.ok() {
            failures += 1;
            let cx = &r.report.violations[0];
            println!(
                "VIOLATION {}/{} ({}): {}\n  trace: {}",
                r.protocol, r.scenario, r.condition, cx.message, cx.trace
            );
        }
    }
    let exhaustive = &rows[0].report;
    assert!(
        exhaustive.exhausted,
        "2-client x 3-object abd must be covered exhaustively"
    );

    let (dpor_n, naive_n, naive_done, factor) = pruning_factor(quick);
    println!(
        "DPOR pruning (safe 1w+1r): {dpor_n} schedules vs naive {}{naive_n} -> factor {factor}",
        if naive_done { "" } else { ">=" },
    );

    // -- Interleaving harness ------------------------------------------------
    let scenarios: Vec<(&str, Result<sched::Report, sched::ModelError>)> = vec![
        ("recorder claim/write/publish", recorder_tear_scenario()),
        ("recorder ring wrap-around", recorder_wrap_scenario()),
        ("ready-queue steal-half", steal_half_scenario()),
        ("ready-queue dirty requeue", dirty_requeue_scenario()),
    ];
    let header = vec!["scenario", "schedules", "points", "complete", "verdict"];
    let mut table = Vec::new();
    for (name, outcome) in &scenarios {
        match outcome {
            Ok(rep) => table.push(vec![
                (*name).to_string(),
                rep.schedules.to_string(),
                rep.points.to_string(),
                rep.complete.to_string(),
                "ok".to_string(),
            ]),
            Err(e) => {
                failures += 1;
                table.push(vec![
                    (*name).to_string(),
                    e.schedules_before.to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "VIOLATION".to_string(),
                ]);
                println!(
                    "VIOLATION {name}: {}\n  decisions: {:?}",
                    e.message, e.decisions
                );
            }
        }
    }
    print_table("interleaving harness (preemption bound 3)", &header, &table);

    if failures > 0 {
        println!("e11: {failures} scenario(s) FAILED");
        std::process::exit(1);
    }
    println!("e11: all schedule spaces clean");
}
