//! E4 — the Θ(min(f, c)·D) dichotomy as a measured crossover: peak
//! base-object storage vs concurrency for replication (flat `O(fD)`),
//! pure coding (`O(cD)`), and the adaptive algorithm (the min of both,
//! crossing over at `c ≈ k = f`).

use reliable_storage::prelude::*;
use rsb_bench::{banner, print_table};

fn main() {
    banner(
        "E4 (the Θ(min(f,c)·D) message)",
        "peak storage vs c: abd flat, coded linear, adaptive = min",
    );
    let header = vec!["c", "abd_bits", "coded_bits", "adaptive_bits"];
    for f in [2usize, 4, 8] {
        let k = f;
        let d_bytes = 128;
        let abd = Abd::new(RegisterConfig::new(2 * f + 1, f, 1, d_bytes).unwrap());
        let coded = Coded::new(RegisterConfig::paper(f, k, d_bytes).unwrap());
        let adaptive = Adaptive::new(RegisterConfig::paper(f, k, d_bytes).unwrap());
        let rows: Vec<Vec<String>> = [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32]
            .iter()
            .map(|&c| {
                let a = experiments::measure_storage(&abd, c, 2, 1_000 + c as u64);
                let o = experiments::measure_storage(&coded, c, 2, 2_000 + c as u64);
                let d = experiments::measure_storage(&adaptive, c, 2, 3_000 + c as u64);
                vec![
                    c.to_string(),
                    a.peak_object_bits.to_string(),
                    o.peak_object_bits.to_string(),
                    d.peak_object_bits.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("f = k = {f}, D = {} bits", 8 * d_bytes),
            &header,
            &rows,
        );
    }
    println!("paper: crossover where the coded column passes the abd column lands at c ≈ f.");
}
