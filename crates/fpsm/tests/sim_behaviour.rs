//! Behavioural tests of the simulation substrate using a miniature
//! majority-replication protocol defined in-test.

use rsb_coding::Value;
use rsb_fpsm::{
    run, run_to_completion, run_until, BlockInstance, ClientId, ClientLogic, DeliveryChoice,
    Effects, FairScheduler, ObjectId, ObjectState, OpId, OpRequest, OpResult, Payload,
    RandomScheduler, RmwId, ScriptedScheduler, SimEvent, Simulation,
};
use std::collections::HashSet;

/// Base object: stores one tagged full copy of a value.
#[derive(Debug, Clone, Default)]
struct Store {
    held: Option<(OpId, Value)>,
}

#[derive(Debug, Clone)]
enum Rmw {
    Put { op: OpId, value: Value },
    Get,
}

#[derive(Debug, Clone)]
enum Resp {
    Ack,
    Data(Option<(OpId, Value)>),
}

impl Payload for Store {
    fn blocks(&self) -> Vec<BlockInstance> {
        self.held
            .as_ref()
            .map(|(op, v)| BlockInstance::new(*op, 0, v.size_bits()))
            .into_iter()
            .collect()
    }
}

impl Payload for Rmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            Rmw::Put { op, value } => vec![BlockInstance::new(*op, 0, value.size_bits())],
            Rmw::Get => Vec::new(),
        }
    }
}

impl Payload for Resp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            Resp::Ack => Vec::new(),
            Resp::Data(d) => d
                .as_ref()
                .map(|(op, v)| BlockInstance::new(*op, 0, v.size_bits()))
                .into_iter()
                .collect(),
        }
    }
}

impl ObjectState for Store {
    type Rmw = Rmw;
    type Resp = Resp;

    fn apply(&mut self, _client: ClientId, rmw: &Rmw) -> Resp {
        match rmw {
            Rmw::Put { op, value } => {
                self.held = Some((*op, value.clone()));
                Resp::Ack
            }
            Rmw::Get => Resp::Data(self.held.clone()),
        }
    }
}

/// One in-progress operation of [`Client`].
#[derive(Debug)]
struct Pending {
    op: OpId,
    mine: HashSet<RmwId>,
    acks: usize,
    best: Option<(OpId, Value)>,
}

/// Client: writes put to all objects and await a majority of acks; reads
/// get from all objects and return the value of the newest op seen.
#[derive(Debug)]
struct Client {
    n: usize,
    current: Option<Pending>,
}

impl Client {
    fn new(n: usize) -> Self {
        Client { n, current: None }
    }
    fn majority(&self) -> usize {
        self.n / 2 + 1
    }
}

impl ClientLogic for Client {
    type State = Store;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<Store>) {
        let mut mine = HashSet::new();
        for i in 0..self.n {
            let rmw = match &req {
                OpRequest::Write(v) => Rmw::Put {
                    op,
                    value: v.clone(),
                },
                OpRequest::Read => Rmw::Get,
            };
            mine.insert(eff.trigger(ObjectId(i), rmw));
        }
        self.current = Some(Pending {
            op,
            mine,
            acks: 0,
            best: None,
        });
    }

    fn on_response(&mut self, op: OpId, rmw: RmwId, resp: Resp, eff: &mut Effects<Store>) {
        let majority = self.majority();
        let Some(cur) = self.current.as_mut() else {
            return; // stale response after completion
        };
        if cur.op != op || !cur.mine.contains(&rmw) {
            return; // stale response from a previous operation
        }
        cur.acks += 1;
        if let Resp::Data(Some((src, v))) = resp {
            if cur.best.as_ref().is_none_or(|(b, _)| src > *b) {
                cur.best = Some((src, v));
            }
        }
        if cur.acks >= majority {
            let result = match cur.best.take() {
                Some((_, v)) => OpResult::Read(v),
                None => OpResult::Write, // writes and empty reads
            };
            eff.complete(result);
            self.current = None;
        }
    }
}

fn new_sim(n: usize, clients: usize) -> (Simulation<Store, Client>, Vec<ClientId>) {
    let mut sim = Simulation::new(n, |_| Store::default());
    let ids = (0..clients)
        .map(|_| sim.add_client(Client::new(n)))
        .collect();
    (sim, ids)
}

#[test]
fn write_then_read_roundtrip_fair() {
    let (mut sim, ids) = new_sim(5, 2);
    let v = Value::seeded(42, 100);
    sim.invoke(ids[0], OpRequest::Write(v.clone())).unwrap();
    assert!(run_to_completion(&mut sim, 1_000));
    sim.invoke(ids[1], OpRequest::Read).unwrap();
    assert!(run_to_completion(&mut sim, 1_000));
    let rec = sim.history().last().unwrap();
    assert_eq!(rec.result, Some(OpResult::Read(v)));
}

#[test]
fn random_scheduler_also_completes_and_is_deterministic() {
    for seed in [1u64, 2, 3] {
        let histories: Vec<Vec<(u64, Option<u64>)>> = (0..2)
            .map(|_| {
                let (mut sim, ids) = new_sim(5, 3);
                for (i, &c) in ids.iter().enumerate() {
                    sim.invoke(c, OpRequest::Write(Value::seeded(i as u64, 50)))
                        .unwrap();
                }
                let mut sched = RandomScheduler::new(seed);
                run_until(&mut sim, &mut sched, 10_000, |s| {
                    s.history().iter().all(rsb_fpsm::OpRecord::is_complete)
                });
                sim.history()
                    .iter()
                    .map(|r| (r.invoked_at, r.returned_at))
                    .collect()
            })
            .collect();
        assert_eq!(histories[0], histories[1], "seed {seed} not deterministic");
        assert!(histories[0].iter().all(|(_, ret)| ret.is_some()));
    }
}

#[test]
fn completes_with_f_object_crashes() {
    let (mut sim, ids) = new_sim(5, 1);
    // f = 2 for n = 5 (majority = 3).
    sim.crash_object(ObjectId(0));
    sim.crash_object(ObjectId(4));
    sim.invoke(ids[0], OpRequest::Write(Value::seeded(7, 64)))
        .unwrap();
    assert!(run_to_completion(&mut sim, 1_000));
    assert!(sim.object_crashed(ObjectId(0)));
    assert!(!sim.object_crashed(ObjectId(1)));
}

#[test]
fn blocks_forever_with_majority_crashed_but_no_panic() {
    let (mut sim, ids) = new_sim(3, 1);
    sim.crash_object(ObjectId(0));
    sim.crash_object(ObjectId(1));
    sim.invoke(ids[0], OpRequest::Write(Value::seeded(7, 64)))
        .unwrap();
    assert!(!run_to_completion(&mut sim, 1_000));
    assert!(!sim.history()[0].is_complete());
}

#[test]
fn crashed_client_receives_nothing() {
    let (mut sim, ids) = new_sim(3, 1);
    sim.invoke(ids[0], OpRequest::Write(Value::seeded(1, 32)))
        .unwrap();
    sim.crash_client(ids[0]);
    // Applies are still enabled; deliveries are not.
    let mut fair = FairScheduler::new();
    run(&mut sim, &mut fair, 1_000);
    assert!(!sim.history()[0].is_complete());
    assert!(sim
        .enabled_events()
        .iter()
        .all(|e| !matches!(e, SimEvent::Deliver(_))));
}

#[test]
fn storage_accounting_tracks_all_phases() {
    let (mut sim, ids) = new_sim(3, 1);
    let v = Value::seeded(3, 128); // 1024 bits
    sim.invoke(ids[0], OpRequest::Write(v)).unwrap();

    // All three RMWs triggered, none applied: 3 × 1024 bits in params.
    let cost = sim.storage_cost();
    assert_eq!(cost.inflight_param_bits, 3 * 1024);
    assert_eq!(cost.object_bits, 0);

    // Apply one: its bits move into the object; ack response carries none.
    let first = sim.enabled_events()[0];
    sim.step(first).unwrap();
    let cost = sim.storage_cost();
    assert_eq!(cost.inflight_param_bits, 2 * 1024);
    assert_eq!(cost.object_bits, 1024);
    assert_eq!(cost.inflight_resp_bits, 0);

    assert!(run_to_completion(&mut sim, 1_000));
    // Drain the straggler RMW (the write returned at a majority).
    let mut fair = FairScheduler::new();
    run(&mut sim, &mut fair, 1_000);
    let cost = sim.storage_cost();
    assert_eq!(cost.object_bits, 3 * 1024);
    assert_eq!(cost.inflight_param_bits, 0);
    assert!(sim.peak_storage_bits() >= 3 * 1024);
}

#[test]
fn read_response_bits_are_charged_to_object_side() {
    let (mut sim, ids) = new_sim(1, 2);
    let v = Value::seeded(9, 64); // 512 bits
    sim.invoke(ids[0], OpRequest::Write(v)).unwrap();
    assert!(run_to_completion(&mut sim, 100));
    sim.invoke(ids[1], OpRequest::Read).unwrap();
    // Apply the read's Get, but do not deliver: the response (with data)
    // is in flight from the object.
    let ev = sim.enabled_events()[0];
    sim.step(ev).unwrap();
    let cost = sim.storage_cost();
    assert_eq!(cost.inflight_resp_bits, 512);
    assert_eq!(cost.object_bits, 512);
}

#[test]
fn well_formedness_enforced() {
    let (mut sim, ids) = new_sim(1, 1);
    sim.invoke(ids[0], OpRequest::Read).unwrap();
    let err = sim.invoke(ids[0], OpRequest::Read).unwrap_err();
    assert!(matches!(err, rsb_fpsm::SimError::ClientBusy(_)));
    sim.crash_client(ids[0]);
    let err = sim.invoke(ids[0], OpRequest::Read).unwrap_err();
    assert!(matches!(err, rsb_fpsm::SimError::ClientCrashed(_)));
}

#[test]
fn invalid_events_are_rejected() {
    let (mut sim, ids) = new_sim(1, 1);
    assert!(sim.step(SimEvent::Apply(RmwId(99))).is_err());
    sim.invoke(ids[0], OpRequest::Read).unwrap();
    let ev = sim.enabled_events()[0];
    let SimEvent::Apply(id) = ev else { panic!() };
    assert!(sim.step(SimEvent::Deliver(id)).is_err()); // not applied yet
    sim.step(SimEvent::Apply(id)).unwrap();
    assert!(sim.step(SimEvent::Apply(id)).is_err()); // already applied
}

#[test]
fn inflight_info_and_time_advance() {
    let (mut sim, ids) = new_sim(2, 1);
    let t0 = sim.time();
    sim.invoke(ids[0], OpRequest::Read).unwrap();
    assert!(sim.time() > t0);
    let infos = sim.inflight_rmws();
    assert_eq!(infos.len(), 2);
    assert!(infos.iter().all(|i| !i.applied && i.client == ids[0]));
    assert!(infos[0].rmw < infos[1].rmw);
    assert_eq!(sim.outstanding_ops().len(), 1);
    assert_eq!(sim.outstanding_op(ids[0]), Some(OpId(0)));
}

#[test]
fn storage_series_sampling() {
    let (mut sim, ids) = new_sim(2, 1);
    sim.enable_storage_sampling();
    sim.invoke(ids[0], OpRequest::Write(Value::seeded(0, 16)))
        .unwrap();
    run_to_completion(&mut sim, 100);
    let series = sim.storage_series();
    assert!(series.len() >= 3);
    // Times are nondecreasing.
    assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn scripted_scheduler_replays_an_exact_interleaving() {
    // One write over 3 objects: apply/deliver the first two RMWs in a
    // hand-picked order, by index and by exact event, then stop early.
    let (mut sim, ids) = new_sim(3, 1);
    sim.invoke(ids[0], OpRequest::Write(Value::seeded(7, 16)))
        .unwrap();
    let rmws: Vec<RmwId> = sim.inflight_rmws().iter().map(|i| i.rmw).collect();
    assert_eq!(rmws.len(), 3);
    let mut sched = ScriptedScheduler::new(vec![
        // Apply the *last* triggered RMW first (index into enabled order),
        DeliveryChoice::Index(2),
        // then force two exact events out of trigger order.
        DeliveryChoice::Event(SimEvent::Apply(rmws[1])),
        DeliveryChoice::Event(SimEvent::Deliver(rmws[1])),
        DeliveryChoice::Event(SimEvent::Deliver(rmws[2])),
    ]);
    let outcome = run(&mut sim, &mut sched, 100);
    assert!(outcome.is_quiescent(), "script exhausted stops the run");
    assert_eq!(sched.remaining(), 0, "every choice resolved");
    // Two of three acks delivered: the majority write completed, with
    // rmws[0] still un-applied.
    assert!(sim.history()[0].is_complete());
    assert!(sim
        .inflight_rmws()
        .iter()
        .any(|i| i.rmw == rmws[0] && !i.applied));

    // An unresolvable choice (event no longer enabled) stops the run and
    // leaves the script short.
    let mut stuck = ScriptedScheduler::new(vec![DeliveryChoice::Event(SimEvent::Apply(rmws[1]))]);
    let outcome = run(&mut sim, &mut stuck, 100);
    assert!(outcome.is_quiescent());
    assert_eq!(stuck.remaining(), 1, "unresolvable choice is not consumed");
}
