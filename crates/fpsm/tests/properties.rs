//! Property tests of the simulation substrate: determinism, conservation
//! of RMWs, and storage-accounting consistency along arbitrary schedules.

use proptest::prelude::*;
use rsb_coding::Value;
use rsb_fpsm::{
    BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId, OpRequest,
    OpResult, Payload, RandomScheduler, RmwId, Scheduler, Simulation,
};

/// Toy protocol: object keeps the largest (op, bits) block it has seen;
/// client stores one block per object then completes.
#[derive(Debug, Clone, Default)]
struct Cell {
    held: Option<BlockInstance>,
}

#[derive(Debug, Clone)]
struct Put(BlockInstance);

impl Payload for Put {
    fn blocks(&self) -> Vec<BlockInstance> {
        vec![self.0]
    }
}

impl Payload for Cell {
    fn blocks(&self) -> Vec<BlockInstance> {
        self.held.into_iter().collect()
    }
}

impl ObjectState for Cell {
    type Rmw = Put;
    type Resp = rsb_fpsm::MetadataOnly;

    fn apply(&mut self, _c: ClientId, rmw: &Put) -> rsb_fpsm::MetadataOnly {
        if self.held.is_none_or(|b| b.source_op <= rmw.0.source_op) {
            self.held = Some(rmw.0);
        }
        rsb_fpsm::MetadataOnly
    }
}

#[derive(Debug)]
struct Writer {
    n: usize,
    bits: u64,
    acks: usize,
}

impl ClientLogic for Writer {
    type State = Cell;

    fn on_invoke(&mut self, op: OpId, _req: OpRequest, eff: &mut Effects<Cell>) {
        for i in 0..self.n {
            eff.trigger(
                ObjectId(i),
                Put(BlockInstance::new(op, i as u32, self.bits)),
            );
        }
        self.acks = 0;
    }

    fn on_response(
        &mut self,
        _op: OpId,
        _rmw: RmwId,
        _resp: rsb_fpsm::MetadataOnly,
        eff: &mut Effects<Cell>,
    ) {
        self.acks += 1;
        if self.acks == self.n {
            eff.complete(OpResult::Write);
        }
    }
}

fn build(n: usize, clients: usize, bits: u64) -> Simulation<Cell, Writer> {
    let mut sim = Simulation::new(n, |_| Cell::default());
    for _ in 0..clients {
        let c = sim.add_client(Writer { n, bits, acks: 0 });
        sim.invoke(c, OpRequest::Write(Value::zeroed(1))).unwrap();
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same seed yields byte-identical histories and storage series.
    #[test]
    fn schedules_are_deterministic(seed in any::<u64>(), n in 1usize..6, clients in 1usize..5) {
        let runs: Vec<(Vec<Option<u64>>, u64)> = (0..2)
            .map(|_| {
                let mut sim = build(n, clients, 64);
                sim.enable_storage_sampling();
                let mut sched = RandomScheduler::new(seed);
                while let Some(ev) = Scheduler::<_, _>::next_event(&mut sched, &sim) {
                    sim.step(ev).unwrap();
                }
                (
                    sim.history().iter().map(|r| r.returned_at).collect(),
                    sim.peak_storage_bits(),
                )
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
    }

    /// Conservation: every triggered RMW is applied and delivered exactly
    /// once in a drained run; objects end with exactly one block.
    #[test]
    fn rmw_conservation(seed in any::<u64>(), n in 1usize..6, clients in 1usize..5) {
        let mut sim = build(n, clients, 32);
        let mut sched = RandomScheduler::new(seed);
        while let Some(ev) = Scheduler::<_, _>::next_event(&mut sched, &sim) {
            sim.step(ev).unwrap();
        }
        prop_assert!(sim.inflight_rmws().is_empty());
        prop_assert!(sim.history().iter().all(rsb_fpsm::OpRecord::is_complete));
        let cost = sim.storage_cost();
        prop_assert_eq!(cost.object_bits, (n as u64) * 32);
        prop_assert_eq!(cost.inflight_param_bits, 0);
        prop_assert_eq!(cost.inflight_resp_bits, 0);
    }

    /// The storage series never jumps by more than one RMW payload per
    /// event, and the peak is the max of the series.
    #[test]
    fn storage_series_is_coherent(seed in any::<u64>(), clients in 1usize..5) {
        let bits = 128u64;
        let n = 3usize;
        let mut sim = build(n, clients, bits);
        sim.enable_storage_sampling();
        let mut sched = RandomScheduler::new(seed);
        while let Some(ev) = Scheduler::<_, _>::next_event(&mut sched, &sim) {
            sim.step(ev).unwrap();
        }
        let series = sim.storage_series();
        let max = series.iter().map(|&(_, b)| b).max().unwrap_or(0);
        prop_assert_eq!(max, sim.peak_storage_bits());
        for w in series.windows(2) {
            let delta = w[1].1.abs_diff(w[0].1);
            prop_assert!(delta <= bits * n as u64, "jump of {delta} bits in one event");
        }
    }

    /// Crashing objects mid-run never panics and leaves their RMWs pending.
    #[test]
    fn crashes_are_safe(seed in any::<u64>(), crash_at in 0usize..10) {
        let mut sim = build(3, 2, 16);
        let mut sched = RandomScheduler::new(seed);
        let mut steps = 0usize;
        loop {
            if steps == crash_at {
                sim.crash_object(ObjectId(0));
            }
            match Scheduler::<_, _>::next_event(&mut sched, &sim) {
                Some(ev) => {
                    sim.step(ev).unwrap();
                    steps += 1;
                }
                None => break,
            }
        }
        // All remaining in-flight RMWs target the crashed object.
        for info in sim.inflight_rmws() {
            prop_assert!(!info.applied);
            prop_assert_eq!(info.object, ObjectId(0));
        }
    }
}
