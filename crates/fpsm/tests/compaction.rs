//! History compaction and snapshot/restore semantics of the simulator:
//! op ids stay stable across compaction, the observable frontier is
//! retained, and a quiescent register survives an evict/rematerialize
//! round-trip with its history intact.

use rsb_coding::Value;
use rsb_fpsm::{
    run_to_completion, BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId,
    OpRequest, OpResult, Payload, RmwId, Simulation,
};

/// A single-object register: `Put` stores a tagged copy, `Get` returns it.
#[derive(Debug, Clone, Default)]
struct Cell {
    held: Option<(OpId, Value)>,
}

#[derive(Debug, Clone)]
enum Rmw {
    Put { op: OpId, value: Value },
    Get,
}

#[derive(Debug, Clone)]
enum Resp {
    Ack,
    Data(Option<(OpId, Value)>),
}

impl Payload for Cell {
    fn blocks(&self) -> Vec<BlockInstance> {
        self.held
            .as_ref()
            .map(|(op, v)| BlockInstance::new(*op, 0, v.size_bits()))
            .into_iter()
            .collect()
    }
}

impl Payload for Rmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            Rmw::Put { op, value } => vec![BlockInstance::new(*op, 0, value.size_bits())],
            Rmw::Get => Vec::new(),
        }
    }
}

impl Payload for Resp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            Resp::Ack => Vec::new(),
            Resp::Data(d) => d
                .as_ref()
                .map(|(op, v)| BlockInstance::new(*op, 0, v.size_bits()))
                .into_iter()
                .collect(),
        }
    }
}

impl ObjectState for Cell {
    type Rmw = Rmw;
    type Resp = Resp;

    fn apply(&mut self, _client: ClientId, rmw: &Rmw) -> Resp {
        match rmw {
            Rmw::Put { op, value } => {
                self.held = Some((*op, value.clone()));
                Resp::Ack
            }
            Rmw::Get => Resp::Data(self.held.clone()),
        }
    }
}

#[derive(Debug)]
struct Client;

impl ClientLogic for Client {
    type State = Cell;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<Cell>) {
        match req {
            OpRequest::Write(value) => eff.trigger(ObjectId(0), Rmw::Put { op, value }),
            OpRequest::Read => eff.trigger(ObjectId(0), Rmw::Get),
        };
    }

    fn on_response(&mut self, _op: OpId, _rmw: RmwId, resp: Resp, eff: &mut Effects<Cell>) {
        match resp {
            Resp::Ack => eff.complete(OpResult::Write),
            Resp::Data(d) => eff.complete(OpResult::Read(
                d.map_or_else(|| Value::zeroed(8), |(_, v)| v),
            )),
        }
    }
}

fn new_sim() -> Simulation<Cell, Client> {
    Simulation::new(1, |_| Cell::default())
}

fn run_op(sim: &mut Simulation<Cell, Client>, client: ClientId, req: OpRequest) -> OpId {
    let op = sim.invoke(client, req).unwrap();
    assert!(run_to_completion(sim, 100));
    op
}

#[test]
fn compaction_drops_settled_prefix_and_keeps_frontier() {
    let mut sim = new_sim();
    let c = sim.add_client(Client);
    for i in 0..6u64 {
        run_op(&mut sim, c, OpRequest::Write(Value::seeded(i + 1, 8)));
        run_op(&mut sim, c, OpRequest::Read);
    }
    assert_eq!(sim.live_records(), 12);
    let dropped = sim.compact_history();
    // Everything is settled except the frontier: the last write is the
    // only record a future read may still return.
    assert_eq!(dropped, 11);
    assert_eq!(sim.dropped_records(), 11);
    assert_eq!(sim.live_records(), 1);
    let frontier = sim.retained_history();
    assert_eq!(frontier.len(), 1);
    assert_eq!(
        frontier[0].request,
        OpRequest::Write(Value::seeded(6, 8)),
        "the retained record is the last write"
    );
    // Idempotent when nothing new settled.
    assert_eq!(sim.compact_history(), 0);
}

#[test]
fn op_ids_and_lookups_stay_stable_across_compaction() {
    let mut sim = new_sim();
    let c = sim.add_client(Client);
    for i in 0..5u64 {
        run_op(&mut sim, c, OpRequest::Write(Value::seeded(i + 1, 8)));
    }
    sim.compact_history();
    // New ops continue the global id sequence and are indexable.
    let op = run_op(&mut sim, c, OpRequest::Read);
    assert_eq!(op, OpId(5));
    let rec = sim.op_record(op);
    assert_eq!(rec.result, Some(OpResult::Read(Value::seeded(5, 8))));
    // The checkable history is frontier + tail, in invocation order.
    let full = sim.full_history();
    assert_eq!(full.len(), 2);
    assert!(full[0].invoked_at < full[1].invoked_at);
}

#[test]
fn incomplete_operations_block_the_prefix() {
    let mut sim = new_sim();
    let c1 = sim.add_client(Client);
    let c2 = sim.add_client(Client);
    run_op(&mut sim, c1, OpRequest::Write(Value::seeded(1, 8)));
    // c2's write stays in flight: nothing may be dropped past it.
    sim.invoke(c2, OpRequest::Write(Value::seeded(2, 8)))
        .unwrap();
    assert!(!sim.is_quiescent());
    let before = sim.live_records();
    sim.compact_history();
    // The settled first write is still the frontier (no later completed
    // write supersedes it), and the incomplete one cannot be touched.
    assert_eq!(sim.live_records(), before);
    assert!(run_to_completion(&mut sim, 100));
    assert!(sim.is_quiescent());
}

#[test]
fn snapshot_restore_roundtrip_preserves_value_and_history() {
    let mut sim = new_sim();
    let c = sim.add_client(Client);
    run_op(&mut sim, c, OpRequest::Write(Value::seeded(9, 8)));
    run_op(&mut sim, c, OpRequest::Read);
    sim.compact_history();
    let time_before = sim.time();
    let cost_before = sim.storage_cost();
    let peak_before = sim.peak_storage_bits();
    let snap = sim.snapshot().expect("quiescent register snapshots");
    assert_eq!(snap.records().len(), 1);
    assert_eq!(snap.record_count(), 1);
    // The cached-at-snapshot-time cost equals the live measurement (the
    // snapshot is immutable, so the cache can never go stale), and the
    // register's observed peak rides along for aggregate metrics.
    assert_eq!(snap.storage_bits(), cost_before.object_bits);
    assert_eq!(snap.peak_bits(), peak_before);
    drop(sim);

    let mut sim = Simulation::restore(snap);
    assert!(sim.is_quiescent());
    assert_eq!(sim.storage_cost(), cost_before);
    let c = sim.add_client(Client);
    let op = run_op(&mut sim, c, OpRequest::Read);
    // Ids and time continue the original history, so the frontier write
    // still precedes the new read and the value is the restored one.
    assert_eq!(op, OpId(2));
    assert_eq!(
        sim.op_record(op).result,
        Some(OpResult::Read(Value::seeded(9, 8)))
    );
    let full = sim.full_history();
    assert_eq!(full.len(), 2);
    let frontier = &full[0];
    assert!(frontier.returned_at.unwrap() <= time_before);
    assert!(full[1].invoked_at > time_before);
}

#[test]
fn snapshot_refused_while_work_is_in_flight() {
    let mut sim = new_sim();
    let c = sim.add_client(Client);
    sim.invoke(c, OpRequest::Write(Value::seeded(1, 8)))
        .unwrap();
    assert!(sim.snapshot().is_none());
    assert!(run_to_completion(&mut sim, 100));
    assert!(sim.snapshot().is_some());
}
