//! Base objects: atomic read-modify-write shared-memory cells.

use crate::ids::ClientId;
use crate::payload::Payload;

/// The protocol-defined state of a base object, supporting arbitrary atomic
/// RMW access (the paper's model, Section 2).
///
/// An RMW is *triggered* by a client with parameters of type [`Self::Rmw`];
/// at some later point the scheduler lets it *take effect* atomically via
/// [`ObjectState::apply`], producing a response of type [`Self::Resp`]
/// which is eventually *delivered* back to the client.
///
/// Both the state itself and the RMW/response types implement [`Payload`]
/// so that every code-block bit in the system is accounted for (Definition
/// 2 of the paper charges in-flight parameters to the client and
/// in-flight responses to the base object).
pub trait ObjectState: Payload {
    /// Parameters of an RMW trigger.
    type Rmw: Payload;
    /// The RMW's response.
    type Resp: Payload;

    /// Atomically applies an RMW, mutating the state and producing the
    /// response. `client` identifies the triggering client (protocols use
    /// it for tie-breaking ids, never for covert data channels).
    fn apply(&mut self, client: ClientId, rmw: &Self::Rmw) -> Self::Resp;
}

/// Runtime wrapper of one base object inside the simulation.
#[derive(Debug, Clone)]
pub(crate) struct ObjectRt<S: ObjectState> {
    pub(crate) state: S,
    pub(crate) crashed: bool,
}

impl<S: ObjectState> ObjectRt<S> {
    pub(crate) fn new(state: S) -> Self {
        ObjectRt {
            state,
            crashed: false,
        }
    }

    pub(crate) fn restore(state: S, crashed: bool) -> Self {
        ObjectRt { state, crashed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OpId;
    use crate::payload::{BlockInstance, MetadataOnly};

    /// A toy register storing one opaque block.
    #[derive(Debug, Clone, Default)]
    struct Cell {
        held: Option<BlockInstance>,
    }

    #[derive(Debug, Clone)]
    struct Put(BlockInstance);

    impl Payload for Put {
        fn blocks(&self) -> Vec<BlockInstance> {
            vec![self.0]
        }
    }

    impl Payload for Cell {
        fn blocks(&self) -> Vec<BlockInstance> {
            self.held.into_iter().collect()
        }
    }

    impl ObjectState for Cell {
        type Rmw = Put;
        type Resp = MetadataOnly;

        fn apply(&mut self, _client: ClientId, rmw: &Put) -> MetadataOnly {
            self.held = Some(rmw.0);
            MetadataOnly
        }
    }

    #[test]
    fn apply_mutates_and_accounts() {
        let mut cell = ObjectRt::new(Cell::default());
        assert_eq!(cell.state.block_bits(), 0);
        let b = BlockInstance::new(OpId(1), 0, 128);
        cell.state.apply(ClientId(0), &Put(b));
        assert_eq!(cell.state.block_bits(), 128);
        assert!(!cell.crashed);
    }
}
