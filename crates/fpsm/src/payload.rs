//! Storage-cost accounting per Definition 2 of the paper.
//!
//! Information anywhere in the system is "a list of code blocks plus
//! meta-data"; only the code-block bits are charged. Every block instance
//! carries a *source tag* — the `(write operation, block index)` pair whose
//! encoder oracle produced it — realizing the paper's source function
//! (Definition 4) and enabling the per-write quantity `‖S(t, w)‖`
//! (Definition 6) used throughout the lower bound.

use crate::ids::OpId;
use rsb_coding::BlockIndex;
use serde::{Deserialize, Serialize};

/// One block instance somewhere in the system, reduced to what the
/// accounting needs: who produced it, which block number, how many bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockInstance {
    /// The write operation whose encoder oracle produced this block.
    pub source_op: OpId,
    /// The block number `i` such that the contents are `E(v, i)`.
    pub index: BlockIndex,
    /// The paper's `|e|` — block size in bits.
    pub bits: u64,
}

impl BlockInstance {
    /// Convenience constructor.
    pub fn new(source_op: OpId, index: BlockIndex, bits: u64) -> Self {
        BlockInstance {
            source_op,
            index,
            bits,
        }
    }
}

/// Anything whose storage footprint can be measured: base-object states,
/// client-held data, and RMW parameters/responses in flight.
///
/// Implementations must report **every** code-block instance they contain
/// and **only** code blocks — metadata (timestamps, counters, ids) is free
/// in the paper's cost model.
pub trait Payload: Clone + std::fmt::Debug + Send + 'static {
    /// All block instances contained in this component.
    fn blocks(&self) -> Vec<BlockInstance>;

    /// Total block bits (the summand of Definition 2).
    fn block_bits(&self) -> u64 {
        self.blocks().iter().map(|b| b.bits).sum()
    }
}

/// The trivial payload for RMWs or responses that carry only metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetadataOnly;

impl Payload for MetadataOnly {
    fn blocks(&self) -> Vec<BlockInstance> {
        Vec::new()
    }
}

/// A storage-cost snapshot, broken down by where the bits reside.
///
/// The paper's Definition 2 charges all four categories (in-flight RMW
/// parameters are part of the triggering client's state; undelivered
/// responses are part of the base object's state). The breakdown lets
/// experiments report them separately as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageCost {
    /// Bits in blocks stored in base-object states.
    pub object_bits: u64,
    /// Bits in blocks held by clients (excluding their own oracle state).
    pub client_bits: u64,
    /// Bits in blocks inside triggered-but-not-yet-applied RMW parameters.
    pub inflight_param_bits: u64,
    /// Bits in blocks inside applied-but-not-yet-delivered RMW responses.
    pub inflight_resp_bits: u64,
}

impl StorageCost {
    /// The paper's storage cost at a point in time: the sum of all four
    /// categories.
    pub fn total(&self) -> u64 {
        self.object_bits + self.client_bits + self.inflight_param_bits + self.inflight_resp_bits
    }

    /// Pointwise maximum, used for peak tracking.
    pub fn max(self, other: StorageCost) -> StorageCost {
        // Peaks are tracked per category *and* as a total elsewhere; the
        // per-category max is useful for reporting worst cases per site.
        StorageCost {
            object_bits: self.object_bits.max(other.object_bits),
            client_bits: self.client_bits.max(other.client_bits),
            inflight_param_bits: self.inflight_param_bits.max(other.inflight_param_bits),
            inflight_resp_bits: self.inflight_resp_bits.max(other.inflight_resp_bits),
        }
    }
}

impl std::fmt::Display for StorageCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} bits (objects {}, clients {}, params {}, resps {})",
            self.total(),
            self.object_bits,
            self.client_bits,
            self.inflight_param_bits,
            self.inflight_resp_bits
        )
    }
}

/// Where a block instance lives — the paper's ordered component set `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Stored in a base object's state.
    Object(crate::ids::ObjectId),
    /// Held by a client (outside its own oracle).
    Client(crate::ids::ClientId),
    /// In the parameters of a triggered, not-yet-applied RMW (charged to
    /// the triggering client per the paper's state definition).
    RmwParam {
        /// The in-flight RMW.
        rmw: crate::ids::RmwId,
        /// The client that triggered it.
        client: crate::ids::ClientId,
    },
    /// In the response of an applied, not-yet-delivered RMW (charged to the
    /// base object per the paper's state definition).
    RmwResponse {
        /// The in-flight RMW.
        rmw: crate::ids::RmwId,
        /// The base object it executed on.
        object: crate::ids::ObjectId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_total_and_display() {
        let c = StorageCost {
            object_bits: 100,
            client_bits: 20,
            inflight_param_bits: 3,
            inflight_resp_bits: 7,
        };
        assert_eq!(c.total(), 130);
        let s = c.to_string();
        assert!(s.contains("130 bits"));
    }

    #[test]
    fn cost_max_is_pointwise() {
        let a = StorageCost {
            object_bits: 10,
            client_bits: 0,
            inflight_param_bits: 5,
            inflight_resp_bits: 0,
        };
        let b = StorageCost {
            object_bits: 3,
            client_bits: 8,
            inflight_param_bits: 1,
            inflight_resp_bits: 2,
        };
        let m = a.max(b);
        assert_eq!(m.object_bits, 10);
        assert_eq!(m.client_bits, 8);
        assert_eq!(m.inflight_param_bits, 5);
        assert_eq!(m.inflight_resp_bits, 2);
    }

    #[test]
    fn metadata_only_is_free() {
        assert_eq!(MetadataOnly.block_bits(), 0);
        assert!(MetadataOnly.blocks().is_empty());
    }

    #[test]
    fn block_instance_fields() {
        let b = BlockInstance::new(OpId(4), 2, 64);
        assert_eq!(b.source_op, OpId(4));
        assert_eq!(b.index, 2);
        assert_eq!(b.bits, 64);
    }
}
