//! The deterministic simulation of the asynchronous fault-prone
//! shared-memory system.

use crate::client::{ClientLogic, ClientRt, Effects, OpRequest, OpResult};
use crate::ids::{ClientId, ObjectId, OpId, RmwId};
use crate::object::{ObjectRt, ObjectState};
use crate::payload::{BlockInstance, Component, Payload, StorageCost};
use std::collections::BTreeMap;

/// An internal scheduler-controlled event.
///
/// The environment (scheduler) decides when a triggered RMW atomically
/// takes effect on its base object ([`SimEvent::Apply`]) and when its
/// response reaches the client ([`SimEvent::Deliver`]) — the two degrees of
/// asynchrony in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimEvent {
    /// Let a triggered RMW take effect on its (non-crashed) base object.
    Apply(RmwId),
    /// Deliver the response of an applied RMW to its (non-crashed) client,
    /// running the client's handler.
    Deliver(RmwId),
}

/// Errors from driving the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event references an RMW id that is not in the required phase.
    InvalidEvent(String),
    /// An invocation targeted a client that already has an outstanding
    /// operation (runs must be well-formed).
    ClientBusy(ClientId),
    /// An invocation targeted a crashed client.
    ClientCrashed(ClientId),
    /// The referenced component does not exist.
    NoSuchComponent(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidEvent(msg) => write!(f, "invalid event: {msg}"),
            SimError::ClientBusy(c) => write!(f, "client {c} already has an outstanding operation"),
            SimError::ClientCrashed(c) => write!(f, "client {c} has crashed"),
            SimError::NoSuchComponent(msg) => write!(f, "no such component: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Phase of an in-flight RMW.
#[derive(Debug, Clone)]
enum RmwPhase<R> {
    /// Triggered; has not yet taken effect.
    Triggered,
    /// Took effect; response not yet delivered.
    Applied(R),
}

/// Bookkeeping for one in-flight RMW.
#[derive(Debug, Clone)]
struct RmwRt<S: ObjectState> {
    client: ClientId,
    op: OpId,
    object: ObjectId,
    rmw: S::Rmw,
    phase: RmwPhase<S::Resp>,
    triggered_at: u64,
}

/// Public, copyable summary of an in-flight RMW (for schedulers and the
/// lower-bound adversary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmwInfo {
    /// The RMW's id (trigger-ordered).
    pub rmw: RmwId,
    /// The triggering client.
    pub client: ClientId,
    /// The operation it belongs to.
    pub op: OpId,
    /// The target base object.
    pub object: ObjectId,
    /// Logical time at which it was triggered.
    pub triggered_at: u64,
    /// Whether it has already taken effect (else merely triggered).
    pub applied: bool,
}

/// The record of one emulated operation, for histories and checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Operation id.
    pub op: OpId,
    /// Invoking client.
    pub client: ClientId,
    /// The request.
    pub request: OpRequest,
    /// Logical invocation time.
    pub invoked_at: u64,
    /// The result, once returned.
    pub result: Option<OpResult>,
    /// Logical return time, once returned.
    pub returned_at: Option<u64>,
}

impl OpRecord {
    /// Whether the operation has returned.
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }
}

/// The simulated system: `n` base objects, a growable set of clients, and
/// in-flight RMWs, advanced one scheduler-chosen event at a time.
///
/// Logical time increases by one at every action (invocation, apply,
/// deliver), matching the paper's notion of time as an action index.
#[derive(Debug)]
pub struct Simulation<S: ObjectState, L: ClientLogic<State = S>> {
    objects: Vec<ObjectRt<S>>,
    clients: Vec<ClientRt<L>>,
    rmws: BTreeMap<RmwId, RmwRt<S>>,
    records: Vec<OpRecord>,
    /// Op id of `records[0]`: compaction drops a settled prefix and
    /// advances this base, so op ids stay stable identifiers forever.
    records_base: u64,
    /// Frontier writes older than `records_base` that a future read may
    /// still legally return — kept so compacted histories remain
    /// checkable (see [`Simulation::compact_history`]).
    retained: Vec<OpRecord>,
    /// Records dropped by compaction so far.
    dropped_records: u64,
    time: u64,
    next_rmw: u64,
    /// Running Definition-2 cost, maintained *incrementally*: each event
    /// re-measures only the components it touched (one object, one
    /// client, one RMW) instead of rescanning the whole system — the
    /// difference between O(1) and O(n + clients + rmws) accounting per
    /// event on the store's hot path.
    cost: StorageCost,
    peak_total_bits: u64,
    peak_cost: StorageCost,
    sample_storage: bool,
    storage_series: Vec<(u64, u64)>,
}

/// The portable state of a *quiescent* simulation: cloned base-object
/// states plus the compacted operation history and the logical-time /
/// id-allocation cursors. A snapshotted register can be dropped and later
/// rebuilt with [`Simulation::restore`] — new operations continue the same
/// history (later timestamps, later op ids), so consistency checkers keep
/// accepting the recorded trace across an evict/rematerialize cycle.
#[derive(Debug, Clone)]
pub struct SimSnapshot<S: ObjectState> {
    objects: Vec<(S, bool)>,
    records: Vec<OpRecord>,
    next_op: u64,
    time: u64,
    next_rmw: u64,
    peak_total_bits: u64,
    peak_cost: StorageCost,
    /// Object bits, measured once at snapshot time: a snapshot is
    /// immutable, so its storage cost never needs re-scanning — metrics
    /// sweeps over many evicted keys stay O(keys), not O(keys × objects).
    object_bits: u64,
}

impl<S: ObjectState> SimSnapshot<S> {
    /// Total bits held by the snapshotted base objects (cached at
    /// snapshot time; O(1)).
    pub fn storage_bits(&self) -> u64 {
        self.object_bits
    }

    /// The operation records preserved by the snapshot.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// How many operation records the snapshot preserves.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Peak total storage the register had observed before eviction —
    /// carried so aggregate peak metrics survive an evict/rematerialize
    /// cycle instead of silently dropping the key's contribution.
    pub fn peak_bits(&self) -> u64 {
        self.peak_total_bits
    }
}

impl<S: ObjectState, L: ClientLogic<State = S>> Simulation<S, L> {
    /// Creates a simulation with `n` base objects, each initialized by
    /// `init` (typically holding blocks of the initial value `v₀`).
    pub fn new(n: usize, mut init: impl FnMut(ObjectId) -> S) -> Self {
        let objects = (0..n).map(|i| ObjectRt::new(init(ObjectId(i)))).collect();
        let mut sim = Simulation {
            objects,
            clients: Vec::new(),
            rmws: BTreeMap::new(),
            records: Vec::new(),
            records_base: 0,
            retained: Vec::new(),
            dropped_records: 0,
            time: 0,
            next_rmw: 0,
            cost: StorageCost::default(),
            peak_total_bits: 0,
            peak_cost: StorageCost::default(),
            sample_storage: false,
            storage_series: Vec::new(),
        };
        sim.cost = sim.compute_storage_cost();
        sim.note_storage();
        sim
    }

    /// Rebuilds a simulation from a snapshot taken at quiescence: the base
    /// objects resume their exact states (crash flags included), the
    /// snapshot's records become the retained history, and time / op / RMW
    /// ids continue where they left off. Clients are *not* restored — add
    /// fresh ones; because every protocol here lets any client read or
    /// write, client churn is semantically invisible.
    pub fn restore(snapshot: SimSnapshot<S>) -> Self {
        let SimSnapshot {
            objects,
            records,
            next_op,
            time,
            next_rmw,
            peak_total_bits,
            peak_cost,
            object_bits: _,
        } = snapshot;
        let mut sim = Simulation {
            objects: objects
                .into_iter()
                .map(|(state, crashed)| ObjectRt::restore(state, crashed))
                .collect(),
            clients: Vec::new(),
            rmws: BTreeMap::new(),
            records: Vec::new(),
            records_base: next_op,
            retained: records,
            dropped_records: 0,
            time,
            next_rmw,
            cost: StorageCost::default(),
            peak_total_bits,
            peak_cost,
            sample_storage: false,
            storage_series: Vec::new(),
        };
        sim.cost = sim.compute_storage_cost();
        sim
    }

    /// Enables recording of a `(time, total_bits)` series at every event.
    pub fn enable_storage_sampling(&mut self) {
        self.sample_storage = true;
    }

    /// Adds a client running `logic`, returning its id.
    pub fn add_client(&mut self, logic: L) -> ClientId {
        let id = ClientId(self.clients.len());
        self.clients.push(ClientRt::new(logic));
        self.cost.client_bits += self.client_block_bits(id);
        id
    }

    /// Number of base objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of clients added so far.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Current logical time (number of actions so far).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Invokes an operation on a client.
    ///
    /// # Errors
    ///
    /// Fails if the client is crashed or already has an outstanding
    /// operation (runs are well-formed).
    pub fn invoke(&mut self, client: ClientId, req: OpRequest) -> Result<OpId, SimError> {
        let rt = self
            .clients
            .get(client.0)
            .ok_or_else(|| SimError::NoSuchComponent(format!("{client}")))?;
        if rt.crashed {
            return Err(SimError::ClientCrashed(client));
        }
        if rt.outstanding.is_some() {
            return Err(SimError::ClientBusy(client));
        }
        let op = OpId(self.records_base + self.records.len() as u64);
        self.time += 1;
        self.records.push(OpRecord {
            op,
            client,
            request: req.clone(),
            invoked_at: self.time,
            result: None,
            returned_at: None,
        });
        self.clients[client.0].outstanding = Some(op);
        let client_bits_before = self.client_block_bits(client);
        let mut eff = Effects::new(self.next_rmw);
        self.clients[client.0].logic.on_invoke(op, req, &mut eff);
        self.process_effects(client, op, eff);
        let client_bits_after = self.client_block_bits(client);
        self.cost.client_bits = self.cost.client_bits - client_bits_before + client_bits_after;
        self.note_storage();
        Ok(op)
    }

    /// Executes one scheduler-chosen event.
    ///
    /// # Errors
    ///
    /// Fails if the event is not currently enabled (wrong phase, crashed
    /// target, unknown id).
    pub fn step(&mut self, event: SimEvent) -> Result<(), SimError> {
        match event {
            SimEvent::Apply(id) => self.apply_rmw(id),
            SimEvent::Deliver(id) => self.deliver_rmw(id),
        }
    }

    fn apply_rmw(&mut self, id: RmwId) -> Result<(), SimError> {
        let rt = self
            .rmws
            .get_mut(&id)
            .ok_or_else(|| SimError::InvalidEvent(format!("{id} not in flight")))?;
        if !matches!(rt.phase, RmwPhase::Triggered) {
            return Err(SimError::InvalidEvent(format!("{id} already applied")));
        }
        let obj = rt.object;
        if self.objects[obj.0].crashed {
            return Err(SimError::InvalidEvent(format!("{obj} has crashed")));
        }
        let client = rt.client;
        let object_bits_before = self.objects[obj.0].state.block_bits();
        let resp = self.objects[obj.0].state.apply(client, &rt.rmw);
        self.cost.object_bits =
            self.cost.object_bits - object_bits_before + self.objects[obj.0].state.block_bits();
        self.cost.inflight_param_bits -= rt.rmw.block_bits();
        self.cost.inflight_resp_bits += resp.block_bits();
        rt.phase = RmwPhase::Applied(resp);
        self.time += 1;
        self.note_storage();
        Ok(())
    }

    fn deliver_rmw(&mut self, id: RmwId) -> Result<(), SimError> {
        let rt = self
            .rmws
            .get(&id)
            .ok_or_else(|| SimError::InvalidEvent(format!("{id} not in flight")))?;
        if !matches!(rt.phase, RmwPhase::Applied(_)) {
            return Err(SimError::InvalidEvent(format!("{id} not applied yet")));
        }
        let client = rt.client;
        if self.clients[client.0].crashed {
            return Err(SimError::InvalidEvent(format!("{client} has crashed")));
        }
        let rt = self.rmws.remove(&id).expect("checked above");
        let resp = match rt.phase {
            RmwPhase::Applied(r) => r,
            RmwPhase::Triggered => unreachable!(),
        };
        self.cost.inflight_resp_bits -= resp.block_bits();
        self.time += 1;
        let client_bits_before = self.client_block_bits(client);
        let mut eff = Effects::new(self.next_rmw);
        self.clients[client.0]
            .logic
            .on_response(rt.op, id, resp, &mut eff);
        self.process_effects(client, rt.op, eff);
        self.cost.client_bits =
            self.cost.client_bits - client_bits_before + self.client_block_bits(client);
        self.note_storage();
        Ok(())
    }

    fn process_effects(&mut self, client: ClientId, op: OpId, eff: Effects<S>) {
        let (triggers, completion) = eff.into_parts();
        for (id, obj, rmw) in triggers {
            debug_assert_eq!(id.0, self.next_rmw);
            self.next_rmw = id.0 + 1;
            self.cost.inflight_param_bits += rmw.block_bits();
            self.rmws.insert(
                id,
                RmwRt {
                    client,
                    op,
                    object: obj,
                    rmw,
                    phase: RmwPhase::Triggered,
                    triggered_at: self.time,
                },
            );
        }
        if let Some(result) = completion {
            let rec = &mut self.records[(op.0 - self.records_base) as usize];
            debug_assert!(rec.result.is_none(), "operation {op} returned twice");
            rec.result = Some(result);
            rec.returned_at = Some(self.time);
            self.clients[client.0].outstanding = None;
        }
    }

    /// Crashes a base object: pending RMWs on it never take effect and it
    /// accepts no further RMWs. Idempotent.
    pub fn crash_object(&mut self, obj: ObjectId) {
        self.objects[obj.0].crashed = true;
    }

    /// Crashes a client: no responses are delivered to it and it takes no
    /// further steps. Idempotent.
    pub fn crash_client(&mut self, client: ClientId) {
        self.clients[client.0].crashed = true;
    }

    /// Whether the object has crashed.
    pub fn object_crashed(&self, obj: ObjectId) -> bool {
        self.objects[obj.0].crashed
    }

    /// Whether the client has crashed.
    pub fn client_crashed(&self, client: ClientId) -> bool {
        self.clients[client.0].crashed
    }

    /// Read access to a base object's protocol state (for assertions and
    /// adversaries; a real client could not do this without an RMW).
    pub fn object_state(&self, obj: ObjectId) -> &S {
        &self.objects[obj.0].state
    }

    /// Read access to a client's protocol logic.
    pub fn client_logic(&self, client: ClientId) -> &L {
        &self.clients[client.0].logic
    }

    /// The outstanding operation of a client, if any.
    pub fn outstanding_op(&self, client: ClientId) -> Option<OpId> {
        self.clients[client.0].outstanding
    }

    /// All operations with an invocation but no return yet.
    pub fn outstanding_ops(&self) -> Vec<&OpRecord> {
        self.records.iter().filter(|r| !r.is_complete()).collect()
    }

    /// The record of an operation.
    ///
    /// # Panics
    ///
    /// Panics if the record was dropped by [`Simulation::compact_history`]
    /// (compaction only touches settled operations, so live runtimes never
    /// look up a compacted record).
    pub fn op_record(&self, op: OpId) -> &OpRecord {
        let idx =
            op.0.checked_sub(self.records_base)
                .expect("operation record was compacted away");
        &self.records[idx as usize]
    }

    /// The live (uncompacted) tail of the operation history. Without
    /// compaction this is the full history; with compaction, frontier
    /// writes that predate the tail live in
    /// [`Simulation::retained_history`].
    pub fn history(&self) -> &[OpRecord] {
        &self.records
    }

    /// Frontier writes preserved from compacted history epochs.
    pub fn retained_history(&self) -> &[OpRecord] {
        &self.retained
    }

    /// The checkable history: retained frontier writes followed by the
    /// live tail, in op-id (= invocation) order.
    pub fn full_history(&self) -> Vec<OpRecord> {
        let mut out = Vec::with_capacity(self.retained.len() + self.records.len());
        out.extend_from_slice(&self.retained);
        out.extend_from_slice(&self.records);
        out
    }

    /// Records currently held (retained frontier + live tail).
    pub fn live_records(&self) -> usize {
        self.retained.len() + self.records.len()
    }

    /// Records dropped by compaction so far.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Whether the register is quiescent: no in-flight RMWs and every
    /// invoked operation has returned.
    pub fn is_quiescent(&self) -> bool {
        self.rmws.is_empty() && self.records.iter().all(OpRecord::is_complete)
    }

    /// Whether any scheduler event is currently enabled (cheaper than
    /// materializing [`Simulation::enabled_events`]).
    pub fn has_enabled_event(&self) -> bool {
        self.first_enabled_event().is_some()
    }

    /// The first enabled event in trigger order, without materializing the
    /// whole enabled set — the fair-scheduler hot path.
    pub fn first_enabled_event(&self) -> Option<SimEvent> {
        self.rmws.iter().find_map(|(&id, rt)| match &rt.phase {
            RmwPhase::Triggered if !self.objects[rt.object.0].crashed => Some(SimEvent::Apply(id)),
            RmwPhase::Applied(_) if !self.clients[rt.client.0].crashed => {
                Some(SimEvent::Deliver(id))
            }
            _ => None,
        })
    }

    /// Compacts settled history, returning how many records were dropped.
    ///
    /// The longest all-complete prefix of the live tail is drained;
    /// within it, completed reads are dropped, and completed writes are
    /// dropped when *stale* — some completed write `w'` was invoked after
    /// they returned and returned before every kept operation's
    /// invocation, so no kept or future read may legally return them.
    /// Non-stale writes (the observable frontier) move to the retained
    /// set, which the same rule re-filters. The surviving history
    /// (`retained ++ tail`) therefore stays acceptable to the regularity /
    /// atomicity checkers: dropped reads only remove ordering constraints,
    /// and dropped writes can no longer be observed — a read that returns
    /// one anyway still fails the check (as `UnwrittenValue` instead of
    /// `StaleRead`).
    pub fn compact_history(&mut self) -> u64 {
        let cut = self
            .records
            .iter()
            .position(|r| !r.is_complete())
            .unwrap_or(self.records.len());
        if cut == 0 && self.retained.is_empty() {
            return 0;
        }
        // Invocation of the first kept tail record: completed writes
        // returning before it can prove staleness for every kept op.
        let horizon = self.records.get(cut).map(|r| r.invoked_at);
        let returned_before_horizon = |r: &OpRecord| match (r.returned_at, horizon) {
            (Some(ret), Some(h)) => ret < h,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let mut latest_proof_invocation: Option<u64> = None;
        for r in self.retained.iter().chain(self.records.iter()) {
            if matches!(r.request, OpRequest::Write(_)) && returned_before_horizon(r) {
                latest_proof_invocation =
                    Some(latest_proof_invocation.map_or(r.invoked_at, |m| m.max(r.invoked_at)));
            }
        }
        let stale = |r: &OpRecord| match (r.returned_at, latest_proof_invocation) {
            (Some(ret), Some(proof_inv)) => ret < proof_inv,
            _ => false,
        };
        let mut dropped = 0u64;
        let old_retained = std::mem::take(&mut self.retained);
        for r in old_retained {
            if stale(&r) {
                dropped += 1;
            } else {
                self.retained.push(r);
            }
        }
        for r in self.records.drain(..cut) {
            if matches!(r.request, OpRequest::Write(_)) && !stale(&r) {
                self.retained.push(r);
            } else {
                dropped += 1;
            }
        }
        self.records_base += cut as u64;
        self.dropped_records += dropped;
        dropped
    }

    /// Summaries of all in-flight RMWs, in trigger order.
    pub fn inflight_rmws(&self) -> Vec<RmwInfo> {
        self.rmws
            .iter()
            .map(|(&rmw, rt)| RmwInfo {
                rmw,
                client: rt.client,
                op: rt.op,
                object: rt.object,
                triggered_at: rt.triggered_at,
                applied: matches!(rt.phase, RmwPhase::Applied(_)),
            })
            .collect()
    }

    /// Events currently enabled: applies on live objects, deliveries to
    /// live clients, in trigger order.
    pub fn enabled_events(&self) -> Vec<SimEvent> {
        self.rmws
            .iter()
            .filter_map(|(&id, rt)| match &rt.phase {
                RmwPhase::Triggered if !self.objects[rt.object.0].crashed => {
                    Some(SimEvent::Apply(id))
                }
                RmwPhase::Applied(_) if !self.clients[rt.client.0].crashed => {
                    Some(SimEvent::Deliver(id))
                }
                _ => None,
            })
            .collect()
    }

    /// Captures a quiescent register's full state for eviction: object
    /// states, the (compacted) history, and the time / id cursors.
    /// Returns `None` unless the simulation is quiescent — with RMWs in
    /// flight the state is not portable.
    pub fn snapshot(&self) -> Option<SimSnapshot<S>>
    where
        S: Clone,
    {
        if !self.is_quiescent() {
            return None;
        }
        // At quiescence there are no in-flight RMWs, so the incremental
        // cost's object share *is* the snapshot's storage bill.
        let object_bits = self.objects.iter().map(|o| o.state.block_bits()).sum();
        Some(SimSnapshot {
            objects: self
                .objects
                .iter()
                .map(|o| (o.state.clone(), o.crashed))
                .collect(),
            records: self.full_history(),
            next_op: self.records_base + self.records.len() as u64,
            time: self.time,
            next_rmw: self.next_rmw,
            peak_total_bits: self.peak_total_bits,
            peak_cost: self.peak_cost,
            object_bits,
        })
    }

    /// The storage cost right now (Definition 2), broken down by site.
    /// O(1): the cost is maintained incrementally as events execute.
    pub fn storage_cost(&self) -> StorageCost {
        debug_assert_eq!(
            self.cost,
            self.compute_storage_cost(),
            "incremental storage accounting drifted from ground truth"
        );
        self.cost
    }

    /// Recomputes the Definition-2 cost from scratch — the ground truth
    /// the incremental `cost` field is initialized from (and checked
    /// against in debug builds).
    fn compute_storage_cost(&self) -> StorageCost {
        let mut cost = StorageCost::default();
        for o in &self.objects {
            cost.object_bits += o.state.block_bits();
        }
        for c in &self.clients {
            cost.client_bits += c.logic.stored_blocks().iter().map(|b| b.bits).sum::<u64>();
        }
        for rt in self.rmws.values() {
            match &rt.phase {
                RmwPhase::Triggered => cost.inflight_param_bits += rt.rmw.block_bits(),
                RmwPhase::Applied(r) => cost.inflight_resp_bits += r.block_bits(),
            }
        }
        cost
    }

    /// Block bits currently held by one client's logic.
    fn client_block_bits(&self, client: ClientId) -> u64 {
        self.clients[client.0]
            .logic
            .stored_blocks()
            .iter()
            .map(|b| b.bits)
            .sum()
    }

    /// Every block instance in the system, tagged by component — the raw
    /// material for the lower-bound quantities `‖S(t, w)‖` and `F(t)`.
    pub fn component_blocks(&self) -> Vec<(Component, Vec<BlockInstance>)> {
        let mut out = Vec::new();
        for (i, o) in self.objects.iter().enumerate() {
            out.push((Component::Object(ObjectId(i)), o.state.blocks()));
        }
        for (i, c) in self.clients.iter().enumerate() {
            out.push((Component::Client(ClientId(i)), c.logic.stored_blocks()));
        }
        for (&id, rt) in &self.rmws {
            match &rt.phase {
                RmwPhase::Triggered => out.push((
                    Component::RmwParam {
                        rmw: id,
                        client: rt.client,
                    },
                    rt.rmw.blocks(),
                )),
                RmwPhase::Applied(r) => out.push((
                    Component::RmwResponse {
                        rmw: id,
                        object: rt.object,
                    },
                    r.blocks(),
                )),
            }
        }
        out
    }

    /// Peak total storage cost observed so far (bits).
    pub fn peak_storage_bits(&self) -> u64 {
        self.peak_total_bits
    }

    /// Per-category peaks observed so far.
    pub fn peak_storage_cost(&self) -> StorageCost {
        self.peak_cost
    }

    /// The sampled `(time, total_bits)` series, if sampling was enabled.
    pub fn storage_series(&self) -> &[(u64, u64)] {
        &self.storage_series
    }

    /// Folds the running cost into the peak trackers (and the sampled
    /// series); called after every action.
    fn note_storage(&mut self) {
        let cost = self.cost;
        self.peak_total_bits = self.peak_total_bits.max(cost.total());
        self.peak_cost = self.peak_cost.max(cost);
        if self.sample_storage {
            self.storage_series.push((self.time, cost.total()));
        }
    }
}
