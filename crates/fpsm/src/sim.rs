//! The deterministic simulation of the asynchronous fault-prone
//! shared-memory system.

use crate::client::{ClientLogic, ClientRt, Effects, OpRequest, OpResult};
use crate::ids::{ClientId, ObjectId, OpId, RmwId};
use crate::object::{ObjectRt, ObjectState};
use crate::payload::{BlockInstance, Component, Payload, StorageCost};
use std::collections::BTreeMap;

/// An internal scheduler-controlled event.
///
/// The environment (scheduler) decides when a triggered RMW atomically
/// takes effect on its base object ([`SimEvent::Apply`]) and when its
/// response reaches the client ([`SimEvent::Deliver`]) — the two degrees of
/// asynchrony in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimEvent {
    /// Let a triggered RMW take effect on its (non-crashed) base object.
    Apply(RmwId),
    /// Deliver the response of an applied RMW to its (non-crashed) client,
    /// running the client's handler.
    Deliver(RmwId),
}

/// Errors from driving the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event references an RMW id that is not in the required phase.
    InvalidEvent(String),
    /// An invocation targeted a client that already has an outstanding
    /// operation (runs must be well-formed).
    ClientBusy(ClientId),
    /// An invocation targeted a crashed client.
    ClientCrashed(ClientId),
    /// The referenced component does not exist.
    NoSuchComponent(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidEvent(msg) => write!(f, "invalid event: {msg}"),
            SimError::ClientBusy(c) => write!(f, "client {c} already has an outstanding operation"),
            SimError::ClientCrashed(c) => write!(f, "client {c} has crashed"),
            SimError::NoSuchComponent(msg) => write!(f, "no such component: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Phase of an in-flight RMW.
#[derive(Debug, Clone)]
enum RmwPhase<R> {
    /// Triggered; has not yet taken effect.
    Triggered,
    /// Took effect; response not yet delivered.
    Applied(R),
}

/// Bookkeeping for one in-flight RMW.
#[derive(Debug, Clone)]
struct RmwRt<S: ObjectState> {
    client: ClientId,
    op: OpId,
    object: ObjectId,
    rmw: S::Rmw,
    phase: RmwPhase<S::Resp>,
    triggered_at: u64,
}

/// Public, copyable summary of an in-flight RMW (for schedulers and the
/// lower-bound adversary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmwInfo {
    /// The RMW's id (trigger-ordered).
    pub rmw: RmwId,
    /// The triggering client.
    pub client: ClientId,
    /// The operation it belongs to.
    pub op: OpId,
    /// The target base object.
    pub object: ObjectId,
    /// Logical time at which it was triggered.
    pub triggered_at: u64,
    /// Whether it has already taken effect (else merely triggered).
    pub applied: bool,
}

/// The record of one emulated operation, for histories and checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Operation id.
    pub op: OpId,
    /// Invoking client.
    pub client: ClientId,
    /// The request.
    pub request: OpRequest,
    /// Logical invocation time.
    pub invoked_at: u64,
    /// The result, once returned.
    pub result: Option<OpResult>,
    /// Logical return time, once returned.
    pub returned_at: Option<u64>,
}

impl OpRecord {
    /// Whether the operation has returned.
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }
}

/// The simulated system: `n` base objects, a growable set of clients, and
/// in-flight RMWs, advanced one scheduler-chosen event at a time.
///
/// Logical time increases by one at every action (invocation, apply,
/// deliver), matching the paper's notion of time as an action index.
#[derive(Debug)]
pub struct Simulation<S: ObjectState, L: ClientLogic<State = S>> {
    objects: Vec<ObjectRt<S>>,
    clients: Vec<ClientRt<L>>,
    rmws: BTreeMap<RmwId, RmwRt<S>>,
    records: Vec<OpRecord>,
    time: u64,
    next_rmw: u64,
    peak_total_bits: u64,
    peak_cost: StorageCost,
    sample_storage: bool,
    storage_series: Vec<(u64, u64)>,
}

impl<S: ObjectState, L: ClientLogic<State = S>> Simulation<S, L> {
    /// Creates a simulation with `n` base objects, each initialized by
    /// `init` (typically holding blocks of the initial value `v₀`).
    pub fn new(n: usize, mut init: impl FnMut(ObjectId) -> S) -> Self {
        let objects = (0..n).map(|i| ObjectRt::new(init(ObjectId(i)))).collect();
        let mut sim = Simulation {
            objects,
            clients: Vec::new(),
            rmws: BTreeMap::new(),
            records: Vec::new(),
            time: 0,
            next_rmw: 0,
            peak_total_bits: 0,
            peak_cost: StorageCost::default(),
            sample_storage: false,
            storage_series: Vec::new(),
        };
        sim.note_storage();
        sim
    }

    /// Enables recording of a `(time, total_bits)` series at every event.
    pub fn enable_storage_sampling(&mut self) {
        self.sample_storage = true;
    }

    /// Adds a client running `logic`, returning its id.
    pub fn add_client(&mut self, logic: L) -> ClientId {
        let id = ClientId(self.clients.len());
        self.clients.push(ClientRt::new(logic));
        id
    }

    /// Number of base objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of clients added so far.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Current logical time (number of actions so far).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Invokes an operation on a client.
    ///
    /// # Errors
    ///
    /// Fails if the client is crashed or already has an outstanding
    /// operation (runs are well-formed).
    pub fn invoke(&mut self, client: ClientId, req: OpRequest) -> Result<OpId, SimError> {
        let rt = self
            .clients
            .get(client.0)
            .ok_or_else(|| SimError::NoSuchComponent(format!("{client}")))?;
        if rt.crashed {
            return Err(SimError::ClientCrashed(client));
        }
        if rt.outstanding.is_some() {
            return Err(SimError::ClientBusy(client));
        }
        let op = OpId(self.records.len() as u64);
        self.time += 1;
        self.records.push(OpRecord {
            op,
            client,
            request: req.clone(),
            invoked_at: self.time,
            result: None,
            returned_at: None,
        });
        self.clients[client.0].outstanding = Some(op);
        let mut eff = Effects::new(self.next_rmw);
        self.clients[client.0].logic.on_invoke(op, req, &mut eff);
        self.process_effects(client, op, eff);
        self.note_storage();
        Ok(op)
    }

    /// Executes one scheduler-chosen event.
    ///
    /// # Errors
    ///
    /// Fails if the event is not currently enabled (wrong phase, crashed
    /// target, unknown id).
    pub fn step(&mut self, event: SimEvent) -> Result<(), SimError> {
        match event {
            SimEvent::Apply(id) => self.apply_rmw(id),
            SimEvent::Deliver(id) => self.deliver_rmw(id),
        }
    }

    fn apply_rmw(&mut self, id: RmwId) -> Result<(), SimError> {
        let rt = self
            .rmws
            .get_mut(&id)
            .ok_or_else(|| SimError::InvalidEvent(format!("{id} not in flight")))?;
        if !matches!(rt.phase, RmwPhase::Triggered) {
            return Err(SimError::InvalidEvent(format!("{id} already applied")));
        }
        let obj = rt.object;
        if self.objects[obj.0].crashed {
            return Err(SimError::InvalidEvent(format!("{obj} has crashed")));
        }
        let client = rt.client;
        let resp = self.objects[obj.0].state.apply(client, &rt.rmw);
        rt.phase = RmwPhase::Applied(resp);
        self.time += 1;
        self.note_storage();
        Ok(())
    }

    fn deliver_rmw(&mut self, id: RmwId) -> Result<(), SimError> {
        let rt = self
            .rmws
            .get(&id)
            .ok_or_else(|| SimError::InvalidEvent(format!("{id} not in flight")))?;
        if !matches!(rt.phase, RmwPhase::Applied(_)) {
            return Err(SimError::InvalidEvent(format!("{id} not applied yet")));
        }
        let client = rt.client;
        if self.clients[client.0].crashed {
            return Err(SimError::InvalidEvent(format!("{client} has crashed")));
        }
        let rt = self.rmws.remove(&id).expect("checked above");
        let resp = match rt.phase {
            RmwPhase::Applied(r) => r,
            RmwPhase::Triggered => unreachable!(),
        };
        self.time += 1;
        let mut eff = Effects::new(self.next_rmw);
        self.clients[client.0]
            .logic
            .on_response(rt.op, id, resp, &mut eff);
        self.process_effects(client, rt.op, eff);
        self.note_storage();
        Ok(())
    }

    fn process_effects(&mut self, client: ClientId, op: OpId, eff: Effects<S>) {
        let (triggers, completion) = eff.into_parts();
        for (id, obj, rmw) in triggers {
            debug_assert_eq!(id.0, self.next_rmw);
            self.next_rmw = id.0 + 1;
            self.rmws.insert(
                id,
                RmwRt {
                    client,
                    op,
                    object: obj,
                    rmw,
                    phase: RmwPhase::Triggered,
                    triggered_at: self.time,
                },
            );
        }
        if let Some(result) = completion {
            let rec = &mut self.records[op.0 as usize];
            debug_assert!(rec.result.is_none(), "operation {op} returned twice");
            rec.result = Some(result);
            rec.returned_at = Some(self.time);
            self.clients[client.0].outstanding = None;
        }
    }

    /// Crashes a base object: pending RMWs on it never take effect and it
    /// accepts no further RMWs. Idempotent.
    pub fn crash_object(&mut self, obj: ObjectId) {
        self.objects[obj.0].crashed = true;
    }

    /// Crashes a client: no responses are delivered to it and it takes no
    /// further steps. Idempotent.
    pub fn crash_client(&mut self, client: ClientId) {
        self.clients[client.0].crashed = true;
    }

    /// Whether the object has crashed.
    pub fn object_crashed(&self, obj: ObjectId) -> bool {
        self.objects[obj.0].crashed
    }

    /// Whether the client has crashed.
    pub fn client_crashed(&self, client: ClientId) -> bool {
        self.clients[client.0].crashed
    }

    /// Read access to a base object's protocol state (for assertions and
    /// adversaries; a real client could not do this without an RMW).
    pub fn object_state(&self, obj: ObjectId) -> &S {
        &self.objects[obj.0].state
    }

    /// Read access to a client's protocol logic.
    pub fn client_logic(&self, client: ClientId) -> &L {
        &self.clients[client.0].logic
    }

    /// The outstanding operation of a client, if any.
    pub fn outstanding_op(&self, client: ClientId) -> Option<OpId> {
        self.clients[client.0].outstanding
    }

    /// All operations with an invocation but no return yet.
    pub fn outstanding_ops(&self) -> Vec<&OpRecord> {
        self.records.iter().filter(|r| !r.is_complete()).collect()
    }

    /// The record of an operation.
    pub fn op_record(&self, op: OpId) -> &OpRecord {
        &self.records[op.0 as usize]
    }

    /// The full operation history so far.
    pub fn history(&self) -> &[OpRecord] {
        &self.records
    }

    /// Summaries of all in-flight RMWs, in trigger order.
    pub fn inflight_rmws(&self) -> Vec<RmwInfo> {
        self.rmws
            .iter()
            .map(|(&rmw, rt)| RmwInfo {
                rmw,
                client: rt.client,
                op: rt.op,
                object: rt.object,
                triggered_at: rt.triggered_at,
                applied: matches!(rt.phase, RmwPhase::Applied(_)),
            })
            .collect()
    }

    /// Events currently enabled: applies on live objects, deliveries to
    /// live clients, in trigger order.
    pub fn enabled_events(&self) -> Vec<SimEvent> {
        self.rmws
            .iter()
            .filter_map(|(&id, rt)| match &rt.phase {
                RmwPhase::Triggered if !self.objects[rt.object.0].crashed => {
                    Some(SimEvent::Apply(id))
                }
                RmwPhase::Applied(_) if !self.clients[rt.client.0].crashed => {
                    Some(SimEvent::Deliver(id))
                }
                _ => None,
            })
            .collect()
    }

    /// The storage cost right now (Definition 2), broken down by site.
    pub fn storage_cost(&self) -> StorageCost {
        let mut cost = StorageCost::default();
        for o in &self.objects {
            cost.object_bits += o.state.block_bits();
        }
        for c in &self.clients {
            cost.client_bits += c.logic.stored_blocks().iter().map(|b| b.bits).sum::<u64>();
        }
        for rt in self.rmws.values() {
            match &rt.phase {
                RmwPhase::Triggered => cost.inflight_param_bits += rt.rmw.block_bits(),
                RmwPhase::Applied(r) => cost.inflight_resp_bits += r.block_bits(),
            }
        }
        cost
    }

    /// Every block instance in the system, tagged by component — the raw
    /// material for the lower-bound quantities `‖S(t, w)‖` and `F(t)`.
    pub fn component_blocks(&self) -> Vec<(Component, Vec<BlockInstance>)> {
        let mut out = Vec::new();
        for (i, o) in self.objects.iter().enumerate() {
            out.push((Component::Object(ObjectId(i)), o.state.blocks()));
        }
        for (i, c) in self.clients.iter().enumerate() {
            out.push((Component::Client(ClientId(i)), c.logic.stored_blocks()));
        }
        for (&id, rt) in &self.rmws {
            match &rt.phase {
                RmwPhase::Triggered => out.push((
                    Component::RmwParam {
                        rmw: id,
                        client: rt.client,
                    },
                    rt.rmw.blocks(),
                )),
                RmwPhase::Applied(r) => out.push((
                    Component::RmwResponse {
                        rmw: id,
                        object: rt.object,
                    },
                    r.blocks(),
                )),
            }
        }
        out
    }

    /// Peak total storage cost observed so far (bits).
    pub fn peak_storage_bits(&self) -> u64 {
        self.peak_total_bits
    }

    /// Per-category peaks observed so far.
    pub fn peak_storage_cost(&self) -> StorageCost {
        self.peak_cost
    }

    /// The sampled `(time, total_bits)` series, if sampling was enabled.
    pub fn storage_series(&self) -> &[(u64, u64)] {
        &self.storage_series
    }

    fn note_storage(&mut self) {
        let cost = self.storage_cost();
        self.peak_total_bits = self.peak_total_bits.max(cost.total());
        self.peak_cost = self.peak_cost.max(cost);
        if self.sample_storage {
            self.storage_series.push((self.time, cost.total()));
        }
    }
}
