//! Asynchronous fault-prone shared memory, simulated deterministically.
//!
//! This crate realizes the system model of *"Space Bounds for Reliable
//! Storage: Fundamental Limits of Coding"* (Spiegelman, Cassuto, Chockler,
//! Keidar; PODC 2016), Section 2:
//!
//! * a set `B = {bo₁, …, boₙ}` of **base objects** supporting arbitrary
//!   atomic read-modify-write (RMW) access — the [`ObjectState`] trait;
//! * an unbounded set `Π` of **clients** emulating high-level register
//!   operations via triggered RMWs — the [`ClientLogic`] trait;
//! * **asynchrony**: an RMW *triggers*, later atomically *takes effect*,
//!   and later still its response is *delivered*; a [`Scheduler`] (the
//!   environment/adversary) controls both delays;
//! * **crash failures** of up to `f < n/2` base objects and any number of
//!   clients;
//! * **storage accounting** per the paper's Definition 2: every code-block
//!   bit in base objects, clients, in-flight RMW parameters, and in-flight
//!   responses is charged; metadata is free. Every block instance carries a
//!   source tag (write operation × block index) realizing the paper's
//!   source function (Definition 4).
//!
//! Protocols (crate `rsb-registers`) plug in by choosing an [`ObjectState`]
//! and a [`ClientLogic`]; adversaries (crate `rsb-lowerbound`) plug in as
//! [`Scheduler`]s.
//!
//! # Example: a trivial protocol end-to-end
//!
//! ```
//! use rsb_fpsm::{
//!     ClientLogic, Effects, MetadataOnly, ObjectState, OpId, OpRequest, OpResult,
//!     Payload, RmwId, Simulation, run_to_completion, BlockInstance, ClientId, ObjectId,
//! };
//!
//! // One base object counting pings; a client that pings once and returns.
//! #[derive(Debug, Clone, Default)]
//! struct Counter(u64);
//! impl Payload for Counter {
//!     fn blocks(&self) -> Vec<BlockInstance> { Vec::new() }
//! }
//! impl ObjectState for Counter {
//!     type Rmw = MetadataOnly;
//!     type Resp = MetadataOnly;
//!     fn apply(&mut self, _c: ClientId, _r: &MetadataOnly) -> MetadataOnly {
//!         self.0 += 1;
//!         MetadataOnly
//!     }
//! }
//! #[derive(Debug)]
//! struct Pinger;
//! impl ClientLogic for Pinger {
//!     type State = Counter;
//!     fn on_invoke(&mut self, _op: OpId, _req: OpRequest, eff: &mut Effects<Counter>) {
//!         eff.trigger(ObjectId(0), MetadataOnly);
//!     }
//!     fn on_response(&mut self, _op: OpId, _rmw: RmwId, _r: MetadataOnly,
//!                    eff: &mut Effects<Counter>) {
//!         eff.complete(OpResult::Write);
//!     }
//! }
//!
//! let mut sim = Simulation::new(1, |_| Counter::default());
//! let c = sim.add_client(Pinger);
//! sim.invoke(c, OpRequest::Write(rsb_coding::Value::zeroed(1))).unwrap();
//! assert!(run_to_completion(&mut sim, 100));
//! assert_eq!(sim.object_state(ObjectId(0)).0, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod ids;
mod object;
mod payload;
mod scheduler;
mod sim;

pub use client::{ClientLogic, Effects, OpRequest, OpResult};
pub use ids::{ClientId, ObjectId, OpId, RmwId};
pub use object::ObjectState;
pub use payload::{BlockInstance, Component, MetadataOnly, Payload, StorageCost};
pub use scheduler::{
    run, run_to_completion, run_until, DeliveryChoice, FairScheduler, RandomScheduler, RunOutcome,
    Scheduler, ScriptedScheduler,
};
pub use sim::{OpRecord, RmwInfo, SimError, SimEvent, SimSnapshot, Simulation};
