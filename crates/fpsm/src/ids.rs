//! Identifiers for the components of the shared-memory model.

use serde::{Deserialize, Serialize};

/// Identifies one of the `n` base objects `bo₁ … boₙ`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub usize);

/// Identifies a client from the (conceptually infinite) client set `Π`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub usize);

/// Identifies a high-level (emulated-register) operation instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OpId(pub u64);

/// Identifies one low-level RMW triggered on a base object.
///
/// Ids are assigned in trigger order, so ordering by `RmwId` is ordering by
/// trigger time — which is what the paper's adversary uses to pick "the
/// longest pending" RMW.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RmwId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bo{}", self.0)
    }
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl std::fmt::Display for RmwId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rmw{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ObjectId(3).to_string(), "bo3");
        assert_eq!(ClientId(0).to_string(), "c0");
        assert_eq!(OpId(12).to_string(), "op12");
        assert_eq!(RmwId(7).to_string(), "rmw7");
    }

    #[test]
    fn ordering_matches_inner() {
        assert!(RmwId(1) < RmwId(2));
        assert!(OpId(0) < OpId(10));
    }
}
