//! Clients: deterministic state machines emulating register operations.

use crate::ids::{ObjectId, OpId, RmwId};
use crate::object::ObjectState;
use crate::payload::BlockInstance;
#[cfg(test)]
use crate::payload::Payload;
use rsb_coding::Value;
use serde::{Deserialize, Serialize};

/// An invocation on the emulated register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpRequest {
    /// `write(v)`.
    Write(Value),
    /// `read()`.
    Read,
}

impl OpRequest {
    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, OpRequest::Write(_))
    }

    /// The written value, if a write.
    pub fn written_value(&self) -> Option<&Value> {
        match self {
            OpRequest::Write(v) => Some(v),
            OpRequest::Read => None,
        }
    }
}

/// The return of an emulated operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpResult {
    /// A write returned ("ok").
    Write,
    /// A read returned this value.
    Read(Value),
}

impl OpResult {
    /// The value returned by a read, if any.
    pub fn read_value(&self) -> Option<&Value> {
        match self {
            OpResult::Read(v) => Some(v),
            OpResult::Write => None,
        }
    }
}

/// RMWs triggered by a handler, in trigger order: `(id, target, payload)`.
pub(crate) type Triggers<S> = Vec<(RmwId, ObjectId, <S as ObjectState>::Rmw)>;

/// Effects a client handler may produce: triggering RMWs and/or completing
/// the outstanding operation.
///
/// RMW ids are assigned eagerly so protocol logic can remember which
/// in-flight RMW belongs to which round.
#[derive(Debug)]
pub struct Effects<S: ObjectState> {
    next_rmw: u64,
    triggers: Triggers<S>,
    completion: Option<OpResult>,
}

impl<S: ObjectState> Effects<S> {
    pub(crate) fn new(next_rmw: u64) -> Self {
        Effects {
            next_rmw,
            triggers: Vec::new(),
            completion: None,
        }
    }

    /// Triggers an RMW on base object `obj`, returning its id.
    pub fn trigger(&mut self, obj: ObjectId, rmw: S::Rmw) -> RmwId {
        let id = RmwId(self.next_rmw);
        self.next_rmw += 1;
        self.triggers.push((id, obj, rmw));
        id
    }

    /// Completes the outstanding operation with `result`.
    ///
    /// # Panics
    ///
    /// Panics if called twice within one handler (a protocol bug).
    pub fn complete(&mut self, result: OpResult) {
        assert!(
            self.completion.is_none(),
            "operation completed twice in one handler"
        );
        self.completion = Some(result);
    }

    pub(crate) fn into_parts(self) -> (Triggers<S>, Option<OpResult>) {
        (self.triggers, self.completion)
    }
}

/// Protocol logic of one client: a deterministic automaton reacting to
/// operation invocations and RMW responses.
///
/// Handlers correspond to the paper's client actions; they run atomically
/// at a scheduler step. A handler may trigger any number of RMWs and may
/// complete the outstanding operation.
pub trait ClientLogic: std::fmt::Debug + Send + 'static {
    /// The base-object state type this protocol runs against.
    type State: ObjectState;

    /// A new operation `op` with request `req` was invoked on this client.
    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<Self::State>);

    /// The response of RMW `rmw` (triggered earlier by this client, during
    /// operation `op`) was delivered. Responses for superseded rounds or
    /// completed operations may still arrive and must be ignored by the
    /// protocol.
    fn on_response(
        &mut self,
        op: OpId,
        rmw: RmwId,
        resp: <Self::State as ObjectState>::Resp,
        eff: &mut Effects<Self::State>,
    );

    /// Code blocks held in the client's protocol state, **excluding** its
    /// own encoder-oracle state (a writer's private copy of its value is
    /// free per the paper's cost model; anything it stores of *other*
    /// operations' blocks is charged). Default: none.
    fn stored_blocks(&self) -> Vec<BlockInstance> {
        Vec::new()
    }
}

/// Runtime wrapper of one client inside the simulation.
#[derive(Debug)]
pub(crate) struct ClientRt<L> {
    pub(crate) logic: L,
    pub(crate) crashed: bool,
    pub(crate) outstanding: Option<OpId>,
}

impl<L> ClientRt<L> {
    pub(crate) fn new(logic: L) -> Self {
        ClientRt {
            logic,
            crashed: false,
            outstanding: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::payload::MetadataOnly;

    #[derive(Debug, Clone, Default)]
    struct Nop;

    impl Payload for Nop {
        fn blocks(&self) -> Vec<BlockInstance> {
            Vec::new()
        }
    }

    impl ObjectState for Nop {
        type Rmw = MetadataOnly;
        type Resp = MetadataOnly;
        fn apply(&mut self, _c: ClientId, _r: &MetadataOnly) -> MetadataOnly {
            MetadataOnly
        }
    }

    #[test]
    fn effects_assign_sequential_ids() {
        let mut eff: Effects<Nop> = Effects::new(10);
        let a = eff.trigger(ObjectId(0), MetadataOnly);
        let b = eff.trigger(ObjectId(1), MetadataOnly);
        assert_eq!(a, RmwId(10));
        assert_eq!(b, RmwId(11));
        let (triggers, completion) = eff.into_parts();
        assert_eq!(triggers.len(), 2);
        assert!(completion.is_none());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut eff: Effects<Nop> = Effects::new(0);
        eff.complete(OpResult::Write);
        eff.complete(OpResult::Write);
    }

    #[test]
    fn op_request_accessors() {
        let w = OpRequest::Write(Value::zeroed(4));
        assert!(w.is_write());
        assert_eq!(w.written_value().unwrap().len(), 4);
        assert!(!OpRequest::Read.is_write());
        assert!(OpRequest::Read.written_value().is_none());
    }

    #[test]
    fn op_result_accessors() {
        let r = OpResult::Read(Value::zeroed(2));
        assert!(r.read_value().is_some());
        assert!(OpResult::Write.read_value().is_none());
    }
}
