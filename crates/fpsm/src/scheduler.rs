//! Schedulers: the environment's half of the game.
//!
//! A [`Scheduler`] picks the next enabled event. The paper's liveness
//! properties are conditioned on *fair* runs; [`FairScheduler`] realizes
//! fairness by FIFO processing, [`RandomScheduler`] explores the schedule
//! space with a seed, and the lower-bound crate supplies the unfair
//! adversary `Ad` as a third implementation of the same trait.

use crate::client::ClientLogic;
use crate::object::ObjectState;
use crate::sim::{SimEvent, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses the next event to execute.
pub trait Scheduler<S: ObjectState, L: ClientLogic<State = S>> {
    /// Returns the next event, or `None` to stop (e.g., quiescence or an
    /// adversary declaring victory).
    fn next_event(&mut self, sim: &Simulation<S, L>) -> Option<SimEvent>;
}

/// FIFO scheduler: the oldest actionable RMW (by trigger order) goes first,
/// applies before later deliveries. Every RMW by a correct client on a
/// correct object is eventually applied and delivered, so runs driven to
/// quiescence by this scheduler are fair.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairScheduler;

impl FairScheduler {
    /// Creates a fair scheduler.
    pub fn new() -> Self {
        FairScheduler
    }
}

impl<S: ObjectState, L: ClientLogic<State = S>> Scheduler<S, L> for FairScheduler {
    fn next_event(&mut self, sim: &Simulation<S, L>) -> Option<SimEvent> {
        sim.enabled_events().into_iter().next()
    }
}

/// Seeded uniformly-random scheduler over the enabled events. Still fair
/// with probability 1 in finite runs driven to quiescence (every enabled
/// event is eventually chosen), but explores interleavings.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<S: ObjectState, L: ClientLogic<State = S>> Scheduler<S, L> for RandomScheduler {
    fn next_event(&mut self, sim: &Simulation<S, L>) -> Option<SimEvent> {
        let events = sim.enabled_events();
        if events.is_empty() {
            None
        } else {
            let i = self.rng.gen_range(0..events.len());
            Some(events[i])
        }
    }
}

/// One scripted scheduling decision for [`ScriptedScheduler`].
///
/// This is the injection point model checkers use to force a specific
/// delivery interleaving: a choice either names an exact event or picks
/// the *k*-th currently-enabled event (in trigger order, the order
/// [`Simulation::enabled_events`] returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryChoice {
    /// The `k`-th enabled event at this step.
    Index(usize),
    /// Exactly this event; the run stops if it is not enabled.
    Event(SimEvent),
}

/// Replays a fixed sequence of [`DeliveryChoice`]s, then stops.
///
/// Unlike [`FairScheduler`] this makes the environment's nondeterminism
/// externally controlled: `rsb-mc` drives its schedule exploration and
/// counterexample replay through this scheduler. A choice that cannot be
/// resolved (index out of range, event not enabled) stops the run; use
/// [`ScriptedScheduler::remaining`] to detect a script that did not fully
/// execute.
#[derive(Debug, Clone)]
pub struct ScriptedScheduler {
    script: Vec<DeliveryChoice>,
    pos: usize,
}

impl ScriptedScheduler {
    /// Creates a scheduler that plays `script` front to back.
    #[must_use]
    pub fn new(script: Vec<DeliveryChoice>) -> Self {
        ScriptedScheduler { script, pos: 0 }
    }

    /// Choices not yet consumed (nonzero after a run means the script was
    /// cut short by an unresolvable choice).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.script.len() - self.pos
    }
}

impl<S: ObjectState, L: ClientLogic<State = S>> Scheduler<S, L> for ScriptedScheduler {
    fn next_event(&mut self, sim: &Simulation<S, L>) -> Option<SimEvent> {
        let choice = *self.script.get(self.pos)?;
        let resolved = match choice {
            DeliveryChoice::Index(k) => sim.enabled_events().get(k).copied(),
            DeliveryChoice::Event(ev) => sim.enabled_events().contains(&ev).then_some(ev),
        };
        if resolved.is_some() {
            self.pos += 1;
        }
        resolved
    }
}

/// Outcome of [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The scheduler returned `None` (quiescence or adversary stop).
    Quiescent {
        /// Events executed before stopping.
        steps: u64,
    },
    /// The step budget was exhausted first.
    BudgetExhausted,
}

impl RunOutcome {
    /// Whether the run reached quiescence within budget.
    pub fn is_quiescent(&self) -> bool {
        matches!(self, RunOutcome::Quiescent { .. })
    }
}

/// Drives the simulation with `scheduler` until it stops or `max_steps`
/// events have executed.
///
/// # Panics
///
/// Panics if the scheduler returns an event that is not enabled — that is
/// a bug in the scheduler, not a legal run.
pub fn run<S, L>(
    sim: &mut Simulation<S, L>,
    scheduler: &mut impl Scheduler<S, L>,
    max_steps: u64,
) -> RunOutcome
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    for steps in 0..max_steps {
        match scheduler.next_event(sim) {
            None => return RunOutcome::Quiescent { steps },
            Some(ev) => sim
                .step(ev)
                .unwrap_or_else(|e| panic!("scheduler chose disabled event {ev:?}: {e}")),
        }
    }
    RunOutcome::BudgetExhausted
}

/// Drives the simulation until `done(sim)` holds, the scheduler stops, or
/// the budget runs out. Returns whether `done` held on exit.
pub fn run_until<S, L>(
    sim: &mut Simulation<S, L>,
    scheduler: &mut impl Scheduler<S, L>,
    max_steps: u64,
    mut done: impl FnMut(&Simulation<S, L>) -> bool,
) -> bool
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    for _ in 0..max_steps {
        if done(sim) {
            return true;
        }
        match scheduler.next_event(sim) {
            None => return done(sim),
            Some(ev) => sim
                .step(ev)
                .unwrap_or_else(|e| panic!("scheduler chose disabled event {ev:?}: {e}")),
        }
    }
    done(sim)
}

/// Convenience: drives with [`FairScheduler`] until all invoked operations
/// have returned. Returns `true` on success within the budget.
pub fn run_to_completion<S, L>(sim: &mut Simulation<S, L>, max_steps: u64) -> bool
where
    S: ObjectState,
    L: ClientLogic<State = S>,
{
    let mut fair = FairScheduler::new();
    run_until(sim, &mut fair, max_steps, |s| {
        s.history().iter().all(super::sim::OpRecord::is_complete)
    })
}
