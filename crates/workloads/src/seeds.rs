//! Deterministic seed derivation.

/// A SplitMix64 stream for deriving independent sub-seeds from one master
/// seed — so every component of a scenario (scheduler, per-client values,
/// failure times) gets its own reproducible randomness.
///
/// ```
/// use rsb_workloads::SeedSequence;
/// let mut a = SeedSequence::new(42);
/// let mut b = SeedSequence::new(42);
/// assert_eq!(a.next_seed(), b.next_seed());
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence {
            state: master ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// The next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A labelled sub-sequence (e.g. per client), independent of call
    /// order on the parent.
    pub fn fork(&self, label: u64) -> SeedSequence {
        let mut tmp = SeedSequence {
            state: self.state ^ label.wrapping_mul(0xa076_1d64_78bd_642f),
        };
        // Burn one step so forks with nearby labels decorrelate.
        tmp.next_seed();
        tmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut s = SeedSequence::new(7);
        let a = s.next_seed();
        let b = s.next_seed();
        assert_ne!(a, b);
        let mut s2 = SeedSequence::new(7);
        assert_eq!(s2.next_seed(), a);
    }

    #[test]
    fn forks_are_independent_of_order() {
        let s = SeedSequence::new(1);
        let mut f1a = s.fork(10);
        let mut f2 = s.fork(20);
        let mut f1b = s.fork(10);
        let _ = f2.next_seed();
        assert_eq!(f1a.next_seed(), f1b.next_seed());
    }
}
