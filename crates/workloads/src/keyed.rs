//! Keyed (multi-register) traffic generation for the sharded store.
//!
//! A [`KeyedScenario`] describes heavy multi-key traffic the way storage
//! benchmarks do: a key population with a popularity distribution
//! (uniform or zipfian), a read/write mix, and a value-size distribution.
//! Every client's operation stream is deterministic given the scenario
//! seed (clients get independent forked sub-seeds), and written values
//! are globally unique — the first 8 bytes pack `(client, sequence)` — so
//! the strong consistency checkers apply to recorded histories.

use crate::seeds::SeedSequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsb_coding::Value;

/// How keys are chosen per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-like popularity: key rank `i` (0-based) has weight
    /// `1/(i+1)^theta`. `theta = 0` degenerates to uniform; common
    /// benchmark skew is `theta ≈ 0.99`.
    Zipfian {
        /// The skew exponent.
        theta: f64,
    },
    /// Adversarial hot-set skew: a fraction `hot_fraction` of operations
    /// lands uniformly on the first `hot` keys, the rest uniformly on
    /// the remainder — the worst case for a sharded store, since a tiny
    /// hot set can pin one shard's driver (what work-stealing flattens).
    HotSpot {
        /// Number of hot keys (ranks `0..hot`).
        hot: usize,
        /// Probability an operation targets the hot set, in `[0, 1]`.
        hot_fraction: f64,
    },
}

/// How value payload sizes are drawn for writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueSizeDist {
    /// Every write the same size.
    Fixed(usize),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest payload, in bytes (≥ 8 for value uniqueness).
        min: usize,
        /// Largest payload, in bytes.
        max: usize,
    },
    /// Mostly `small`, occasionally `large` — the classic metadata/blob
    /// mix.
    Bimodal {
        /// The common payload size.
        small: usize,
        /// The rare payload size.
        large: usize,
        /// Probability of drawing `large`, in `[0, 1]`.
        large_fraction: f64,
    },
}

impl ValueSizeDist {
    /// The largest size the distribution can draw.
    pub fn max_len(&self) -> usize {
        match *self {
            ValueSizeDist::Fixed(n) => n,
            ValueSizeDist::Uniform { max, .. } => max,
            ValueSizeDist::Bimodal { small, large, .. } => small.max(large),
        }
    }

    fn min_len(&self) -> usize {
        match *self {
            ValueSizeDist::Fixed(n) => n,
            ValueSizeDist::Uniform { min, .. } => min,
            ValueSizeDist::Bimodal { small, large, .. } => small.min(large),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            ValueSizeDist::Fixed(n) => n,
            ValueSizeDist::Uniform { min, max } => rng.gen_range(min..=max),
            ValueSizeDist::Bimodal {
                small,
                large,
                large_fraction,
            } => {
                if rng.gen_bool(large_fraction) {
                    large
                } else {
                    small
                }
            }
        }
    }
}

/// A population of keys with a sampling distribution.
///
/// Keys are named `k000000`, `k000001`, … so independently generated
/// streams agree on the namespace.
#[derive(Debug, Clone)]
pub struct KeySpace {
    count: usize,
    /// Cumulative weights for zipfian sampling; empty for uniform.
    cumulative: Vec<f64>,
    /// Hot-set sampling parameters, if the distribution is `HotSpot`.
    hot_spot: Option<(usize, f64)>,
}

impl KeySpace {
    /// Builds a key space of `count` keys under `dist`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, a zipfian `theta` is negative, or a
    /// hot-spot configuration is out of range (`hot` must be in
    /// `1..=count`, `hot_fraction` in `[0, 1]`).
    pub fn new(count: usize, dist: KeyDist) -> Self {
        assert!(count > 0, "a key space needs at least one key");
        let mut hot_spot = None;
        let cumulative = match dist {
            KeyDist::Uniform => Vec::new(),
            KeyDist::Zipfian { theta } => {
                assert!(theta >= 0.0, "zipfian theta must be non-negative");
                let mut acc = 0.0;
                let mut cumulative = Vec::with_capacity(count);
                for i in 0..count {
                    acc += 1.0 / ((i + 1) as f64).powf(theta);
                    cumulative.push(acc);
                }
                cumulative
            }
            KeyDist::HotSpot { hot, hot_fraction } => {
                assert!(
                    (1..=count).contains(&hot),
                    "hot-set size must be in 1..=count"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_fraction),
                    "hot_fraction must be in [0, 1]"
                );
                hot_spot = Some((hot, hot_fraction));
                Vec::new()
            }
        };
        KeySpace {
            count,
            cumulative,
            hot_spot,
        }
    }

    /// The theoretical probability of key rank `i` under the space's
    /// distribution (what empirical frequencies should converge to).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        assert!(i < self.count, "key rank out of range");
        if let Some((hot, hot_fraction)) = self.hot_spot {
            // A hot set covering the whole space degenerates to uniform
            // (sampling ignores hot_fraction then — see `sample`).
            return if self.count == hot {
                1.0 / self.count as f64
            } else if i < hot {
                hot_fraction / hot as f64
            } else {
                (1.0 - hot_fraction) / (self.count - hot) as f64
            };
        }
        if self.cumulative.is_empty() {
            return 1.0 / self.count as f64;
        }
        let total = *self.cumulative.last().expect("non-empty cumulative");
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the space is empty (never: construction requires ≥ 1 key).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The canonical name of key index `i`.
    pub fn name(&self, i: usize) -> String {
        format!("k{i:06}")
    }

    /// Parses a canonical key name back to its rank, or `None` when the
    /// key is not shaped `k<digits>` or its rank is outside this space —
    /// the defensive inverse of [`KeySpace::name`]. Use this instead of
    /// `key[1..].parse().unwrap()`: consumers (consistency spot-checks,
    /// hit-rate tables) must *skip or report* foreign keys, not panic on
    /// a future custom key distribution (or a multi-byte first char,
    /// where the slice itself panics).
    pub fn rank_of(&self, key: &str) -> Option<usize> {
        let rank = key_rank(key)?;
        (rank < self.count).then_some(rank)
    }

    /// Samples a key index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        if let Some((hot, hot_fraction)) = self.hot_spot {
            return if self.count == hot || rng.gen_bool(hot_fraction) {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(hot..self.count)
            };
        }
        if self.cumulative.is_empty() {
            return rng.gen_range(0..self.count);
        }
        let total = *self.cumulative.last().expect("non-empty cumulative");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let target = unit * total;
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&target).expect("weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.count - 1),
        }
    }
}

use rand::RngCore;

/// Parses a canonical `k<digits>` key name to its rank, or `None` for
/// any other shape (empty string, different prefix, non-digits, or a
/// value that overflows `usize`). Never panics, whatever the input.
pub fn key_rank(key: &str) -> Option<usize> {
    let digits = key.strip_prefix('k')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A keyed multi-register traffic scenario.
#[derive(Debug, Clone)]
pub struct KeyedScenario {
    /// Concurrent clients.
    pub clients: usize,
    /// Operations each client performs.
    pub ops_per_client: usize,
    /// Key population size.
    pub keys: usize,
    /// Key popularity distribution.
    pub key_dist: KeyDist,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Value payload sizes for writes.
    pub value_sizes: ValueSizeDist,
    /// Master seed; fully determines every client's stream.
    pub seed: u64,
}

impl KeyedScenario {
    /// A uniform-key, fixed-size scenario — the baseline shape.
    pub fn uniform(
        clients: usize,
        ops_per_client: usize,
        keys: usize,
        read_fraction: f64,
        value_len: usize,
        seed: u64,
    ) -> Self {
        KeyedScenario {
            clients,
            ops_per_client,
            keys,
            key_dist: KeyDist::Uniform,
            read_fraction,
            value_sizes: ValueSizeDist::Fixed(value_len),
            seed,
        }
    }

    /// Switches key choice to zipfian with the given skew.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.key_dist = KeyDist::Zipfian { theta };
        self
    }

    /// Switches key choice to an adversarial hot set: `hot_fraction` of
    /// operations land on the first `hot` keys.
    pub fn with_hot_spot(mut self, hot: usize, hot_fraction: f64) -> Self {
        self.key_dist = KeyDist::HotSpot { hot, hot_fraction };
        self
    }

    /// Switches the value-size distribution.
    pub fn with_value_sizes(mut self, sizes: ValueSizeDist) -> Self {
        self.value_sizes = sizes;
        self
    }

    /// Total operations across all clients.
    pub fn total_ops(&self) -> usize {
        self.clients * self.ops_per_client
    }

    /// The deterministic operation stream of one client.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range, the smallest drawable value
    /// size is under 8 bytes (uniqueness needs room for the tag), or
    /// `read_fraction` is outside `[0, 1]`.
    pub fn client_ops(&self, client: usize) -> KeyedOpStream {
        assert!(client < self.clients, "client index out of range");
        assert!(
            self.value_sizes.min_len() >= 8,
            "value sizes must be at least 8 bytes for write uniqueness"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read_fraction must be in [0, 1]"
        );
        let seeds = SeedSequence::new(self.seed).fork(client as u64);
        let mut seeds = seeds;
        KeyedOpStream {
            space: KeySpace::new(self.keys, self.key_dist),
            read_fraction: self.read_fraction,
            value_sizes: self.value_sizes,
            rng: StdRng::seed_from_u64(seeds.next_seed()),
            filler: seeds.next_seed(),
            client: client as u32,
            remaining: self.ops_per_client,
            sequence: 0,
        }
    }
}

/// What one keyed operation does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyedAction {
    /// Read the key's register.
    Read,
    /// Write this value to the key's register.
    Write(Value),
}

/// One operation of a keyed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedOp {
    /// The target key (canonical `k######` name).
    pub key: String,
    /// Read, or write with a payload.
    pub action: KeyedAction,
}

/// Deterministic iterator over one client's keyed operations.
#[derive(Debug, Clone)]
pub struct KeyedOpStream {
    space: KeySpace,
    read_fraction: f64,
    value_sizes: ValueSizeDist,
    rng: StdRng,
    filler: u64,
    client: u32,
    remaining: usize,
    sequence: u32,
}

impl KeyedOpStream {
    /// Builds a write payload of `len` bytes whose first 8 bytes pack
    /// `(client, sequence)` — globally unique across the scenario.
    fn next_value(&mut self, len: usize) -> Value {
        self.sequence += 1;
        let mut bytes = Vec::with_capacity(len);
        bytes.extend_from_slice(&self.client.to_le_bytes());
        bytes.extend_from_slice(&self.sequence.to_le_bytes());
        let mut state = self.filler ^ u64::from(self.sequence);
        while bytes.len() < len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            bytes.push((state >> 33) as u8);
        }
        Value::from_bytes(bytes)
    }
}

impl Iterator for KeyedOpStream {
    type Item = KeyedOp;

    fn next(&mut self) -> Option<KeyedOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let key = self.space.name(self.space.sample(&mut self.rng));
        let action = if self.rng.gen_bool(self.read_fraction) {
            KeyedAction::Read
        } else {
            let len = self.value_sizes.sample(&mut self.rng);
            KeyedAction::Write(self.next_value(len))
        };
        Some(KeyedOp { key, action })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn scenario() -> KeyedScenario {
        KeyedScenario::uniform(4, 100, 32, 0.5, 16, 7)
    }

    #[test]
    fn streams_are_deterministic() {
        let s = scenario();
        let a: Vec<KeyedOp> = s.client_ops(2).collect();
        let b: Vec<KeyedOp> = s.client_ops(2).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn clients_get_distinct_streams_and_unique_writes() {
        let s = scenario();
        let mut written: HashSet<Value> = HashSet::new();
        for client in 0..s.clients {
            for op in s.client_ops(client) {
                if let KeyedAction::Write(v) = op.action {
                    assert!(written.insert(v), "write values must be globally unique");
                }
            }
        }
        assert!(written.len() > 100, "roughly half of 400 ops are writes");
    }

    #[test]
    fn read_fraction_is_respected() {
        let s = KeyedScenario::uniform(1, 2000, 8, 0.9, 16, 3);
        let reads = s
            .client_ops(0)
            .filter(|op| op.action == KeyedAction::Read)
            .count();
        assert!((1700..=2000).contains(&reads), "got {reads} reads");
    }

    #[test]
    fn zipfian_skews_towards_low_ranks() {
        let s = KeyedScenario::uniform(1, 4000, 64, 0.0, 16, 5).with_zipf(0.99);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for op in s.client_ops(0) {
            *counts.entry(op.key).or_default() += 1;
        }
        let top = counts.get("k000000").copied().unwrap_or(0);
        let uniform_share = 4000 / 64;
        assert!(
            top > 3 * uniform_share,
            "rank-0 key should be heavily favored: {top} vs uniform {uniform_share}"
        );
        // Uniform control: no key gets that kind of share.
        let u = KeyedScenario::uniform(1, 4000, 64, 0.0, 16, 5);
        let mut ucounts: HashMap<String, usize> = HashMap::new();
        for op in u.client_ops(0) {
            *ucounts.entry(op.key).or_default() += 1;
        }
        let umax = ucounts.values().copied().max().unwrap_or(0);
        assert!(umax < top, "uniform max {umax} < zipf top {top}");
    }

    #[test]
    fn zipf_empirical_frequencies_match_theta() {
        // Deterministic: fixed seed, large sample. The empirical
        // frequency of each of the top ranks must match the configured
        // theta's theoretical weight within a generous tolerance, and
        // the harmonic normalization must make all weights sum to 1.
        let theta = 0.99;
        let keys = 64;
        let samples = 40_000;
        let s = KeyedScenario::uniform(1, samples, keys, 0.0, 16, 77).with_zipf(theta);
        let space = KeySpace::new(keys, KeyDist::Zipfian { theta });
        let total_prob: f64 = (0..keys).map(|i| space.probability(i)).sum();
        assert!((total_prob - 1.0).abs() < 1e-9, "probabilities sum to 1");

        let mut counts = vec![0usize; keys];
        for op in s.client_ops(0) {
            let rank = space.rank_of(&op.key).expect("canonical k###### name");
            counts[rank] += 1;
        }
        for (rank, &count) in counts.iter().take(8).enumerate() {
            let expected = space.probability(rank);
            let got = count as f64 / samples as f64;
            assert!(
                (got - expected).abs() < 0.25 * expected + 0.002,
                "rank {rank}: empirical {got:.4} vs theoretical {expected:.4} (theta {theta})"
            );
        }
        // Skew direction: ranks must be (weakly) less popular going down
        // the long tail in aggregate.
        let head: usize = counts[..8].iter().sum();
        let tail: usize = counts[keys - 8..].iter().sum();
        assert!(head > 4 * tail, "head {head} should dwarf tail {tail}");
    }

    #[test]
    fn hot_spot_concentrates_traffic() {
        let s = KeyedScenario::uniform(1, 8000, 32, 0.0, 16, 13).with_hot_spot(2, 0.9);
        let space = KeySpace::new(
            32,
            KeyDist::HotSpot {
                hot: 2,
                hot_fraction: 0.9,
            },
        );
        assert!((space.probability(0) - 0.45).abs() < 1e-9);
        assert!((space.probability(5) - (0.1 / 30.0)).abs() < 1e-9);
        let mut hot_hits = 0usize;
        for op in s.client_ops(0) {
            // Defensive parse: a foreign key would be skipped, not panic.
            if space.rank_of(&op.key).is_some_and(|rank| rank < 2) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / 8000.0;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac} ≈ 0.9");
    }

    #[test]
    fn hot_spot_covering_the_whole_space_degenerates_to_uniform() {
        // When hot == count, sampling ignores hot_fraction (the "cold"
        // range is empty); probability() must agree and still sum to 1.
        let space = KeySpace::new(
            4,
            KeyDist::HotSpot {
                hot: 4,
                hot_fraction: 0.5,
            },
        );
        for i in 0..4 {
            assert!((space.probability(i) - 0.25).abs() < 1e-9);
        }
        let total: f64 = (0..4).map(|i| space.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn key_rank_parses_canonical_names_and_rejects_everything_else() {
        let space = KeySpace::new(32, KeyDist::Uniform);
        for i in [0usize, 1, 7, 31] {
            assert_eq!(key_rank(&space.name(i)), Some(i));
            assert_eq!(space.rank_of(&space.name(i)), Some(i));
        }
        // Unpadded canonical-ish names still parse.
        assert_eq!(key_rank("k7"), Some(7));
        // Foreign shapes must come back as None, never panic — including
        // the multi-byte first char that would make `key[1..]` itself
        // panic on a byte-offset boundary.
        for foreign in [
            "",
            "k",
            "x000001",
            "k-1",
            "k1.5",
            "kabc",
            "k1a",
            "user:42",
            "é42",
            "k99999999999999999999999999",
        ] {
            assert_eq!(key_rank(foreign), None, "key {foreign:?}");
        }
        // In-space check: rank must also be inside the population.
        assert_eq!(space.rank_of("k000031"), Some(31));
        assert_eq!(space.rank_of("k000032"), None);
    }

    #[test]
    fn value_size_distributions_sample_in_range() {
        let sizes = ValueSizeDist::Uniform { min: 8, max: 32 };
        let s = KeyedScenario::uniform(1, 500, 4, 0.0, 16, 9).with_value_sizes(sizes);
        for op in s.client_ops(0) {
            if let KeyedAction::Write(v) = op.action {
                assert!((8..=32).contains(&v.len()));
            }
        }
        let bimodal = ValueSizeDist::Bimodal {
            small: 16,
            large: 256,
            large_fraction: 0.1,
        };
        let s = KeyedScenario::uniform(1, 500, 4, 0.0, 16, 9).with_value_sizes(bimodal);
        let mut larges = 0;
        for op in s.client_ops(0) {
            if let KeyedAction::Write(v) = op.action {
                assert!(v.len() == 16 || v.len() == 256);
                if v.len() == 256 {
                    larges += 1;
                }
            }
        }
        assert!((10..=120).contains(&larges), "got {larges} large writes");
    }
}
