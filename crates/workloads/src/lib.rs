//! Workload generation for the register emulations: deterministic value
//! streams, concurrency scenarios, and failure-injection plans.
//!
//! Everything is seeded and reproducible: a [`Scenario`] plus a seed fully
//! determines the run (the simulator is deterministic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod keyed;
mod scenario;
mod seeds;
mod values;

pub use keyed::{
    key_rank, KeyDist, KeySpace, KeyedAction, KeyedOp, KeyedOpStream, KeyedScenario, ValueSizeDist,
};
pub use scenario::{run_scenario, FailurePlan, Scenario, ScenarioOutcome};
pub use seeds::SeedSequence;
pub use values::ValueStream;
