//! Closed-loop concurrency scenarios with failure injection.

use crate::seeds::SeedSequence;
use crate::values::ValueStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsb_fpsm::{
    ClientId, ObjectId, OpRequest, RandomScheduler, Scheduler, Simulation, StorageCost,
};
use rsb_registers::RegisterProtocol;

/// When to crash which components during a scenario run.
///
/// Steps count executed scheduler events; crashes fire the first time the
/// step counter reaches the given value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// `(step, object)` crash points.
    pub object_crashes: Vec<(u64, ObjectId)>,
    /// `(step, client index)` crash points (index into the scenario's
    /// client list, writers first, then readers).
    pub client_crashes: Vec<(u64, usize)>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Crash `count` objects (ids `0..count`) at evenly spread steps up
    /// to `horizon`.
    pub fn spread_object_crashes(count: usize, horizon: u64) -> Self {
        let gap = horizon / (count.max(1) as u64 + 1);
        FailurePlan {
            object_crashes: (0..count)
                .map(|i| ((i as u64 + 1) * gap, ObjectId(i)))
                .collect(),
            client_crashes: Vec::new(),
        }
    }
}

/// A closed-loop scenario: `writers` clients each performing
/// `writes_per_writer` writes and `readers` clients each performing
/// `reads_per_reader` reads, all eagerly re-invoking, under a seeded
/// random schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Number of writer clients (the scenario's concurrency level `c`).
    pub writers: usize,
    /// Number of reader clients.
    pub readers: usize,
    /// Writes each writer performs.
    pub writes_per_writer: usize,
    /// Reads each reader performs.
    pub reads_per_reader: usize,
    /// Master seed (scheduler, values, interleaving).
    pub seed: u64,
    /// Failure injection plan.
    pub failures: FailurePlan,
    /// Event budget.
    pub max_steps: u64,
}

impl Scenario {
    /// A write-only scenario at concurrency `c` — the shape of every
    /// storage experiment in the paper.
    pub fn write_burst(c: usize, writes_each: usize, seed: u64) -> Self {
        Scenario {
            writers: c,
            readers: 0,
            writes_per_writer: writes_each,
            reads_per_reader: 0,
            seed,
            failures: FailurePlan::none(),
            max_steps: 5_000_000,
        }
    }

    /// A mixed read/write scenario.
    pub fn mixed(writers: usize, readers: usize, ops_each: usize, seed: u64) -> Self {
        Scenario {
            writers,
            readers,
            writes_per_writer: ops_each,
            reads_per_reader: ops_each,
            seed,
            failures: FailurePlan::none(),
            max_steps: 5_000_000,
        }
    }
}

/// What a scenario run produced.
#[derive(Debug)]
pub struct ScenarioOutcome<P: RegisterProtocol> {
    /// The simulation in its final state (history, storage, …).
    pub sim: Simulation<P::Object, P::Client>,
    /// Whether every operation of a non-crashed client completed within
    /// the budget.
    pub completed: bool,
    /// Events executed.
    pub steps: u64,
    /// Peak total storage cost in bits over the run.
    pub peak_bits: u64,
    /// Per-category peaks.
    pub peak_cost: StorageCost,
    /// The clients that were crashed by the failure plan.
    pub crashed_clients: Vec<usize>,
}

/// Runs a scenario against a protocol.
///
/// Clients re-invoke eagerly: whenever a client is idle and has budget
/// left, its next operation is invoked before the next scheduler event,
/// so the scenario sustains its nominal concurrency level throughout.
pub fn run_scenario<P: RegisterProtocol>(proto: &P, scenario: &Scenario) -> ScenarioOutcome<P> {
    let mut seeds = SeedSequence::new(scenario.seed);
    let mut sim = proto.new_sim();
    let total_clients = scenario.writers + scenario.readers;
    let clients: Vec<ClientId> = (0..total_clients)
        .map(|_| proto.add_client(&mut sim))
        .collect();
    let mut budgets: Vec<usize> = (0..total_clients)
        .map(|i| {
            if i < scenario.writers {
                scenario.writes_per_writer
            } else {
                scenario.reads_per_reader
            }
        })
        .collect();
    let mut values = ValueStream::new(seeds.next_seed(), proto.config().value_len.max(8));
    let mut sched = RandomScheduler::new(seeds.next_seed());
    let mut invoke_rng = StdRng::seed_from_u64(seeds.next_seed());

    let mut object_crashes = scenario.failures.object_crashes.clone();
    let mut client_crashes = scenario.failures.client_crashes.clone();
    object_crashes.sort_by_key(|&(s, _)| s);
    client_crashes.sort_by_key(|&(s, _)| s);
    let mut crashed_clients = Vec::new();

    let mut steps = 0u64;
    loop {
        // Fire due failures.
        while let Some(&(at, obj)) = object_crashes.first() {
            if at <= steps {
                sim.crash_object(obj);
                object_crashes.remove(0);
            } else {
                break;
            }
        }
        while let Some(&(at, idx)) = client_crashes.first() {
            if at <= steps {
                if idx < clients.len() {
                    sim.crash_client(clients[idx]);
                    crashed_clients.push(idx);
                }
                client_crashes.remove(0);
            } else {
                break;
            }
        }
        // Eagerly invoke on idle clients with budget (random order).
        let mut order: Vec<usize> = (0..total_clients).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, invoke_rng.gen_range(0..=i));
        }
        for idx in order {
            if budgets[idx] > 0
                && !sim.client_crashed(clients[idx])
                && sim.outstanding_op(clients[idx]).is_none()
            {
                let req = if idx < scenario.writers {
                    OpRequest::Write(values.next_value())
                } else {
                    OpRequest::Read
                };
                sim.invoke(clients[idx], req).expect("idle live client");
                budgets[idx] -= 1;
            }
        }
        // Done?
        let all_quiet = (0..total_clients).all(|idx| {
            sim.client_crashed(clients[idx])
                || (budgets[idx] == 0 && sim.outstanding_op(clients[idx]).is_none())
        });
        if all_quiet || steps >= scenario.max_steps {
            break;
        }
        // One scheduler event.
        match Scheduler::<P::Object, P::Client>::next_event(&mut sched, &sim) {
            Some(ev) => {
                sim.step(ev).expect("scheduler picks enabled events");
                steps += 1;
            }
            None => {
                // Nothing enabled: if invocations are still possible the
                // loop continues; otherwise the system is stuck.
                if !all_quiet {
                    break;
                }
            }
        }
    }

    let completed = sim
        .history()
        .iter()
        .all(|r| r.is_complete() || sim.client_crashed(r.client));
    ScenarioOutcome {
        completed,
        steps,
        peak_bits: sim.peak_storage_bits(),
        peak_cost: sim.peak_storage_cost(),
        crashed_clients,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_registers::{Abd, Adaptive, RegisterConfig};

    #[test]
    fn write_burst_completes_and_is_deterministic() {
        let proto = Adaptive::new(RegisterConfig::paper(1, 2, 16).unwrap());
        let scenario = Scenario::write_burst(3, 2, 11);
        let a = run_scenario(&proto, &scenario);
        let b = run_scenario(&proto, &scenario);
        assert!(a.completed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.peak_bits, b.peak_bits);
        assert_eq!(a.sim.history().len(), 6);
    }

    #[test]
    fn mixed_scenario_with_reads() {
        let proto = Adaptive::new(RegisterConfig::paper(1, 2, 16).unwrap());
        let scenario = Scenario::mixed(2, 2, 2, 5);
        let out = run_scenario(&proto, &scenario);
        assert!(out.completed, "steps: {}", out.steps);
        assert_eq!(out.sim.history().len(), 8);
    }

    #[test]
    fn object_failures_do_not_block_completion() {
        let proto = Abd::new(RegisterConfig::new(5, 2, 1, 16).unwrap());
        let mut scenario = Scenario::write_burst(2, 3, 9);
        scenario.failures = FailurePlan {
            object_crashes: vec![(5, ObjectId(0)), (20, ObjectId(1))],
            client_crashes: vec![],
        };
        let out = run_scenario(&proto, &scenario);
        assert!(out.completed);
    }

    #[test]
    fn client_crash_is_excused() {
        let proto = Abd::new(RegisterConfig::new(3, 1, 1, 16).unwrap());
        let mut scenario = Scenario::write_burst(2, 5, 13);
        scenario.failures = FailurePlan {
            object_crashes: vec![],
            client_crashes: vec![(10, 0)],
        };
        let out = run_scenario(&proto, &scenario);
        assert!(out.completed); // crashed client's ops are excused
        assert_eq!(out.crashed_clients, vec![0]);
    }
}
