//! Streams of unique register values.

use crate::seeds::SeedSequence;
use rsb_coding::Value;

/// Produces pairwise-distinct values of a fixed length, deterministically
/// from a seed.
///
/// Uniqueness is structural: the first 8 bytes embed a global counter, so
/// two values from the same stream never collide and the strong
/// consistency checkers (which need distinct written values) always apply.
/// Values are also never equal to the all-zero `v₀`.
///
/// # Panics
///
/// Construction panics for values shorter than 8 bytes (the counter would
/// not fit; all experiments use ≥ 8-byte values).
#[derive(Debug, Clone)]
pub struct ValueStream {
    len: usize,
    counter: u64,
    seeds: SeedSequence,
}

impl ValueStream {
    /// Creates a stream of `len`-byte values.
    pub fn new(seed: u64, len: usize) -> Self {
        assert!(len >= 8, "values must be at least 8 bytes for uniqueness");
        ValueStream {
            len,
            counter: 0,
            seeds: SeedSequence::new(seed),
        }
    }

    /// The next unique value.
    pub fn next_value(&mut self) -> Value {
        self.counter += 1;
        let filler = self.seeds.next_seed();
        let mut bytes = Vec::with_capacity(self.len);
        bytes.extend_from_slice(&self.counter.to_le_bytes());
        let mut state = filler;
        while bytes.len() < self.len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            bytes.push((state >> 33) as u8);
        }
        Value::from_bytes(bytes)
    }
}

impl Iterator for ValueStream {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        Some(self.next_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_unique_and_nonzero() {
        let mut stream = ValueStream::new(3, 16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = stream.next_value();
            assert_eq!(v.len(), 16);
            assert_ne!(v, Value::zeroed(16));
            assert!(seen.insert(v));
        }
    }

    #[test]
    fn deterministic_across_streams() {
        let a: Vec<Value> = ValueStream::new(9, 8).take(5).collect();
        let b: Vec<Value> = ValueStream::new(9, 8).take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 8 bytes")]
    fn short_values_rejected() {
        ValueStream::new(0, 4);
    }
}
