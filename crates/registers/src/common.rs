//! Machinery shared by all register emulations: timestamps, tagged code
//! blocks, quorum-round tracking, and protocol configuration.

use rsb_coding::{Block, BlockIndex, CodingError, ReedSolomon, Value};
use rsb_fpsm::{BlockInstance, ClientId, ObjectId, OpId, RmwId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The reserved operation id of the synthetic initial write `w₀` that
/// installed `v₀` "at time 0" (the paper's convention in Definition 8).
pub const INITIAL_OP: OpId = OpId(u64::MAX);

/// A logical timestamp `⟨num, client⟩ ∈ N × Π`, ordered lexicographically
/// (the paper's `TimeStamps` domain, Algorithm 1 line 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp {
    /// The sequence number.
    pub num: u64,
    /// The writer's client id, breaking ties.
    pub client: u64,
}

impl Timestamp {
    /// The initial timestamp `⟨0, 0⟩` associated with `v₀`.
    pub const ZERO: Timestamp = Timestamp { num: 0, client: 0 };

    /// Creates a timestamp.
    pub fn new(num: u64, client: ClientId) -> Self {
        Timestamp {
            num,
            client: client.0 as u64,
        }
    }

    /// The successor timestamp for a writer: `⟨num + 1, client⟩`.
    pub fn successor(self, client: ClientId) -> Timestamp {
        Timestamp {
            num: self.num + 1,
            client: client.0 as u64,
        }
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{},{}⟩", self.num, self.client)
    }
}

/// A code block together with the operation whose encoder produced it —
/// the source tag of the paper's Definition 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedBlock {
    /// The producing write operation.
    pub source_op: OpId,
    /// The block itself.
    pub block: Block,
}

impl TaggedBlock {
    /// Creates a tagged block.
    pub fn new(source_op: OpId, block: Block) -> Self {
        TaggedBlock { source_op, block }
    }

    /// The accounting record for this block instance.
    pub fn instance(&self) -> BlockInstance {
        BlockInstance::new(self.source_op, self.block.index(), self.block.size_bits())
    }
}

/// A timestamped code block — the paper's `Chunks = Pieces × TimeStamps`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The write timestamp.
    pub ts: Timestamp,
    /// The tagged piece.
    pub piece: TaggedBlock,
}

impl Chunk {
    /// Creates a chunk.
    pub fn new(ts: Timestamp, piece: TaggedBlock) -> Self {
        Chunk { ts, piece }
    }

    /// The accounting record.
    pub fn instance(&self) -> BlockInstance {
        self.piece.instance()
    }
}

/// Collects block instances from a slice of chunks.
pub fn chunk_instances(chunks: &[Chunk]) -> Vec<BlockInstance> {
    chunks.iter().map(Chunk::instance).collect()
}

/// Configuration shared by the register emulations.
///
/// The paper fixes `n = 2f + k`; we admit any `n ≥ 2f + k` (two
/// `(n−f)`-quorums then intersect in at least `k` base objects, which is
/// what every proof uses). `k = 1` degenerates to replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterConfig {
    /// Number of base objects.
    pub n: usize,
    /// Number of tolerated base-object crash failures.
    pub f: usize,
    /// Erasure-code reconstruction threshold.
    pub k: usize,
    /// Register value size in bytes (`D/8`).
    pub value_len: usize,
}

/// Errors constructing a protocol configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid register configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl RegisterConfig {
    /// Creates and validates a configuration.
    ///
    /// # Errors
    ///
    /// Requires `k ≥ 1`, `f ≥ 1`, `n ≥ 2f + k`, `n ≤ 256`, `value_len ≥ 1`.
    pub fn new(n: usize, f: usize, k: usize, value_len: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError("k must be ≥ 1".into()));
        }
        if f == 0 {
            return Err(ConfigError("f must be ≥ 1".into()));
        }
        if n < 2 * f + k {
            return Err(ConfigError(format!(
                "n ({n}) must be ≥ 2f + k ({})",
                2 * f + k
            )));
        }
        if n > 256 {
            return Err(ConfigError(format!("n ({n}) must be ≤ 256")));
        }
        if value_len == 0 {
            return Err(ConfigError("value length must be ≥ 1".into()));
        }
        Ok(RegisterConfig { n, f, k, value_len })
    }

    /// The paper's canonical shape: `n = 2f + k`.
    ///
    /// # Errors
    ///
    /// Same constraints as [`RegisterConfig::new`].
    pub fn paper(f: usize, k: usize, value_len: usize) -> Result<Self, ConfigError> {
        RegisterConfig::new(2 * f + k, f, k, value_len)
    }

    /// Quorum size `n − f`.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// The data size `D` in bits.
    pub fn data_bits(&self) -> u64 {
        8 * self.value_len as u64
    }

    /// The initial value `v₀` (all zeros).
    pub fn initial_value(&self) -> Value {
        Value::zeroed(self.value_len)
    }

    /// Builds the `k`-of-`n` Reed–Solomon code for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates invalid parameters (cannot occur for validated configs).
    pub fn code(&self) -> Result<ReedSolomon, CodingError> {
        ReedSolomon::new(self.k, self.n, self.value_len)
    }
}

/// Tracks one round of "trigger RMWs on all `n` objects, await `n − f`
/// responses", the universal communication pattern of the algorithms.
///
/// Responses for RMW ids the round does not know (stragglers from earlier
/// rounds or operations) are rejected by [`QuorumRound::accept`].
#[derive(Debug, Clone)]
pub struct QuorumRound<R> {
    expected: HashMap<RmwId, ObjectId>,
    responses: Vec<(ObjectId, R)>,
}

impl<R> Default for QuorumRound<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> QuorumRound<R> {
    /// Creates an empty round.
    pub fn new() -> Self {
        QuorumRound {
            expected: HashMap::new(),
            responses: Vec::new(),
        }
    }

    /// Registers a triggered RMW and its target object.
    pub fn expect(&mut self, rmw: RmwId, obj: ObjectId) {
        self.expected.insert(rmw, obj);
    }

    /// Accepts a response if it belongs to this round. Returns `true` if
    /// accepted.
    pub fn accept(&mut self, rmw: RmwId, resp: R) -> bool {
        match self.expected.remove(&rmw) {
            Some(obj) => {
                self.responses.push((obj, resp));
                true
            }
            None => false,
        }
    }

    /// Number of responses collected.
    pub fn count(&self) -> usize {
        self.responses.len()
    }

    /// The collected responses with their source objects.
    pub fn responses(&self) -> &[(ObjectId, R)] {
        &self.responses
    }

    /// Consumes the round, yielding the responses.
    pub fn into_responses(self) -> Vec<(ObjectId, R)> {
        self.responses
    }
}

/// Finds, among `chunks`, the highest timestamp `ts ≥ min_ts` for which at
/// least `k` blocks with distinct indices are present; returns that
/// timestamp with one block per distinct index.
///
/// This is the read-side test of both the adaptive algorithm (Algorithm 2
/// lines 18–21) and the safe register (Algorithm 5 lines 15–17).
pub fn best_decodable(
    chunks: &[Chunk],
    min_ts: Timestamp,
    k: usize,
) -> Option<(Timestamp, Vec<Block>)> {
    let mut by_ts: HashMap<Timestamp, HashMap<BlockIndex, Block>> = HashMap::new();
    for c in chunks {
        if c.ts >= min_ts {
            by_ts
                .entry(c.ts)
                .or_default()
                .entry(c.piece.block.index())
                .or_insert_with(|| c.piece.block.clone());
        }
    }
    by_ts
        .into_iter()
        .filter(|(_, blocks)| blocks.len() >= k)
        .max_by_key(|(ts, _)| *ts)
        .map(|(ts, blocks)| (ts, blocks.into_values().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_coding::Code;

    #[test]
    fn timestamp_order_is_lexicographic() {
        let a = Timestamp { num: 1, client: 9 };
        let b = Timestamp { num: 2, client: 0 };
        assert!(a < b);
        let c = Timestamp { num: 1, client: 10 };
        assert!(a < c);
        assert_eq!(
            Timestamp::ZERO.successor(ClientId(3)),
            Timestamp { num: 1, client: 3 }
        );
        assert_eq!(Timestamp::ZERO.to_string(), "⟨0,0⟩");
    }

    #[test]
    fn config_validation() {
        assert!(RegisterConfig::new(5, 2, 1, 8).is_ok());
        assert!(RegisterConfig::new(4, 2, 1, 8).is_err()); // n < 2f + k
        assert!(RegisterConfig::new(5, 0, 1, 8).is_err());
        assert!(RegisterConfig::new(5, 2, 0, 8).is_err());
        assert!(RegisterConfig::new(5, 2, 1, 0).is_err());
        let cfg = RegisterConfig::paper(2, 3, 16).unwrap();
        assert_eq!(cfg.n, 7);
        assert_eq!(cfg.quorum(), 5);
        assert_eq!(cfg.data_bits(), 128);
        assert_eq!(cfg.code().unwrap().reconstruction_threshold(), 3);
    }

    #[test]
    fn quorum_round_accepts_only_expected() {
        let mut round: QuorumRound<u32> = QuorumRound::new();
        round.expect(RmwId(1), ObjectId(0));
        round.expect(RmwId(2), ObjectId(1));
        assert!(round.accept(RmwId(1), 10));
        assert!(!round.accept(RmwId(1), 10)); // double delivery rejected
        assert!(!round.accept(RmwId(9), 10)); // stranger rejected
        assert_eq!(round.count(), 1);
        assert!(round.accept(RmwId(2), 20));
        assert_eq!(round.into_responses().len(), 2);
    }

    fn chunk(ts: Timestamp, idx: BlockIndex, bytes: usize) -> Chunk {
        Chunk::new(
            ts,
            TaggedBlock::new(INITIAL_OP, Block::new(idx, vec![0u8; bytes])),
        )
    }

    #[test]
    fn best_decodable_picks_highest_complete_ts() {
        let t1 = Timestamp { num: 1, client: 0 };
        let t2 = Timestamp { num: 2, client: 0 };
        let chunks = vec![
            chunk(t1, 0, 4),
            chunk(t1, 1, 4),
            chunk(t2, 0, 4),
            chunk(t2, 1, 4),
            chunk(t2, 1, 4), // duplicate index does not help
        ];
        let (ts, blocks) = best_decodable(&chunks, Timestamp::ZERO, 2).unwrap();
        assert_eq!(ts, t2);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn best_decodable_respects_min_ts_and_k() {
        let t1 = Timestamp { num: 1, client: 0 };
        let t2 = Timestamp { num: 2, client: 0 };
        let chunks = vec![chunk(t1, 0, 4), chunk(t1, 1, 4), chunk(t2, 0, 4)];
        // t2 lacks k = 2 distinct pieces; t1 is below min_ts.
        assert!(best_decodable(&chunks, t2, 2).is_none());
        // Duplicate indices below k.
        assert!(best_decodable(&[chunk(t1, 0, 4), chunk(t1, 0, 4)], Timestamp::ZERO, 2).is_none());
    }

    #[test]
    fn tagged_block_instance_fields() {
        let tb = TaggedBlock::new(OpId(5), Block::new(3, vec![1, 2]));
        let inst = tb.instance();
        assert_eq!(inst.source_op, OpId(5));
        assert_eq!(inst.index, 3);
        assert_eq!(inst.bits, 16);
    }
}
