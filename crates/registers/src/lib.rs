//! Register emulations over asynchronous fault-prone shared memory.
//!
//! Four protocols from (or implied by) *"Space Bounds for Reliable
//! Storage: Fundamental Limits of Coding"* (Spiegelman, Cassuto, Chockler,
//! Keidar; PODC 2016), all implementing [`RegisterProtocol`] over the
//! `rsb-fpsm` substrate:
//!
//! | Protocol | Paper source | Consistency | Liveness | Storage |
//! |---|---|---|---|---|
//! | [`Adaptive`] | Section 5, Algorithms 1–3 | strongly regular | FW-terminating | `min((c+1)(2f+k)D/k, (2f+k)²D)` |
//! | [`Safe`] | Appendix E, Algorithms 4–5 | strongly safe | wait-free | `(2f+k)·D/k` (constant) |
//! | [`Abd`] | baseline [4] | strongly regular | wait-free | `(2f+1)·D` (constant, `O(fD)`) |
//! | [`AbdAtomic`] | extension (write-back) | atomic | wait-free* | `(2f+1)·D` |
//! | [`Coded`] | baselines [5, 6, 8, 9] | strongly regular | FW-terminating | `O(c·D)` under concurrency |
//!
//! # Example
//!
//! ```
//! use rsb_registers::{Adaptive, RegisterConfig, RegisterProtocol};
//! use rsb_fpsm::{run_to_completion, OpRequest, OpResult};
//! use rsb_coding::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // f = 2 failures tolerated, k = 2 code, 1 KiB values, n = 2f+k = 6.
//! let proto = Adaptive::new(RegisterConfig::paper(2, 2, 1024)?);
//! let mut sim = proto.new_sim();
//! let writer = proto.add_client(&mut sim);
//! let reader = proto.add_client(&mut sim);
//!
//! let v = Value::seeded(7, 1024);
//! sim.invoke(writer, OpRequest::Write(v.clone()))?;
//! assert!(run_to_completion(&mut sim, 100_000));
//! sim.invoke(reader, OpRequest::Read)?;
//! assert!(run_to_completion(&mut sim, 100_000));
//! assert_eq!(sim.history().last().unwrap().result, Some(OpResult::Read(v)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod adaptive;
pub mod coded;
pub mod common;
pub mod lockorder;
pub mod protocol;
pub mod safe;
pub mod threaded;

pub use abd::{Abd, AbdAtomic};
pub use adaptive::Adaptive;
pub use coded::Coded;
pub use common::{
    best_decodable, Chunk, ConfigError, QuorumRound, RegisterConfig, TaggedBlock, Timestamp,
    INITIAL_OP,
};
pub use protocol::RegisterProtocol;
pub use safe::Safe;
pub use threaded::{
    spawn_driver, ClientHandle, CompletionSlot, DriverCore, OpOutcome, ReadyQueue, RegisterCell,
    ThreadedError, ThreadedRegister, WorkGroup,
};
