//! The Appendix-E algorithm: a wait-free, strongly *safe* MWMR register
//! with constant storage `n·D/k = (2f/k + 1)·D` bits.
//!
//! Each base object stores exactly one timestamped piece. A write reads
//! timestamps from a quorum, then conditionally overwrites each object's
//! piece; a read samples a quorum once and returns a decoded value if some
//! timestamp has `k` distinct pieces, else `v₀` (legal under safety, since
//! that can only happen when writes are concurrent with the read).
//!
//! Its existence proves the paper's lower bound is specific to *regular*
//! semantics (Corollary 7): safe registers escape `Ω(min(f, c)·D)`.

use crate::common::{
    best_decodable, Chunk, QuorumRound, RegisterConfig, TaggedBlock, Timestamp, INITIAL_OP,
};
use crate::protocol::RegisterProtocol;
use rsb_coding::{Block, Code, ReedSolomon};
use rsb_fpsm::{
    BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId, OpRequest,
    OpResult, Payload, RmwId, Simulation,
};

/// Base-object state: exactly one timestamped piece (Algorithm 4).
#[derive(Debug, Clone)]
pub struct SafeObject {
    chunk: Chunk,
}

impl SafeObject {
    /// Initial state holding piece `i` of `v₀` at timestamp `⟨0, 0⟩`.
    pub fn initial(piece: TaggedBlock) -> Self {
        SafeObject {
            chunk: Chunk::new(Timestamp::ZERO, piece),
        }
    }

    /// The stored chunk.
    pub fn chunk(&self) -> &Chunk {
        &self.chunk
    }
}

/// RMWs of the safe register (Algorithm 5).
#[derive(Debug, Clone)]
pub enum SafeRmw {
    /// Write round 1: fetch the stored timestamp (metadata only).
    ReadTs,
    /// Read round: fetch the stored chunk.
    ReadChunk,
    /// Write round 2: the `update` routine (lines 10–12) — overwrite iff
    /// the new timestamp is larger.
    Store {
        /// The write's timestamp.
        ts: Timestamp,
        /// Piece `i` for this object.
        piece: TaggedBlock,
    },
}

impl Payload for SafeRmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            SafeRmw::ReadTs | SafeRmw::ReadChunk => Vec::new(),
            SafeRmw::Store { piece, .. } => vec![piece.instance()],
        }
    }
}

/// Responses of the safe register's RMWs.
#[derive(Debug, Clone)]
pub enum SafeResp {
    /// Ack for `Store`.
    Ack,
    /// Timestamp only.
    Ts(Timestamp),
    /// The stored chunk.
    Data(Chunk),
}

impl Payload for SafeResp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            SafeResp::Ack | SafeResp::Ts(_) => Vec::new(),
            SafeResp::Data(c) => vec![c.instance()],
        }
    }
}

impl Payload for SafeObject {
    fn blocks(&self) -> Vec<BlockInstance> {
        vec![self.chunk.instance()]
    }
}

impl ObjectState for SafeObject {
    type Rmw = SafeRmw;
    type Resp = SafeResp;

    fn apply(&mut self, _client: ClientId, rmw: &SafeRmw) -> SafeResp {
        match rmw {
            SafeRmw::ReadTs => SafeResp::Ts(self.chunk.ts),
            SafeRmw::ReadChunk => SafeResp::Data(self.chunk.clone()),
            SafeRmw::Store { ts, piece } => {
                if *ts > self.chunk.ts {
                    self.chunk = Chunk::new(*ts, piece.clone());
                }
                SafeResp::Ack
            }
        }
    }
}

/// Per-operation phase of the safe-register client.
#[derive(Debug)]
enum Phase {
    Idle,
    WriteReadTs { round: QuorumRound<Timestamp> },
    WriteStore { round: QuorumRound<()> },
    Read { round: QuorumRound<Chunk> },
}

/// Client automaton of the safe register (Algorithm 5).
#[derive(Debug)]
pub struct SafeClient {
    cfg: RegisterConfig,
    code: ReedSolomon,
    me: ClientId,
    phase: Phase,
    write_set: Vec<Block>,
    current_op: Option<OpId>,
}

impl SafeClient {
    /// Creates the automaton for client `me`.
    pub fn new(cfg: RegisterConfig, me: ClientId) -> Self {
        let code = cfg.code().expect("validated config builds a code");
        SafeClient {
            cfg,
            code,
            me,
            phase: Phase::Idle,
            write_set: Vec::new(),
            current_op: None,
        }
    }
}

impl ClientLogic for SafeClient {
    type State = SafeObject;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<SafeObject>) {
        self.current_op = Some(op);
        match req {
            OpRequest::Write(v) => {
                self.write_set = self.code.encode(&v);
                let mut round = QuorumRound::new();
                for i in 0..self.cfg.n {
                    let id = eff.trigger(ObjectId(i), SafeRmw::ReadTs);
                    round.expect(id, ObjectId(i));
                }
                self.phase = Phase::WriteReadTs { round };
            }
            OpRequest::Read => {
                let mut round = QuorumRound::new();
                for i in 0..self.cfg.n {
                    let id = eff.trigger(ObjectId(i), SafeRmw::ReadChunk);
                    round.expect(id, ObjectId(i));
                }
                self.phase = Phase::Read { round };
            }
        }
    }

    fn on_response(&mut self, op: OpId, rmw: RmwId, resp: SafeResp, eff: &mut Effects<SafeObject>) {
        if self.current_op != Some(op) {
            return;
        }
        match &mut self.phase {
            Phase::Idle => {}
            Phase::WriteReadTs { round } => {
                let SafeResp::Ts(ts) = resp else { return };
                if !round.accept(rmw, ts) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    // Line 4: ts ← ⟨max + 1, j⟩.
                    let max = round
                        .responses()
                        .iter()
                        .map(|(_, ts)| *ts)
                        .max()
                        .expect("quorum is nonempty");
                    let ts = Timestamp::new(max.num + 1, self.me);
                    // Lines 5–6: store piece i at boᵢ.
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            SafeRmw::Store {
                                ts,
                                piece: TaggedBlock::new(op, self.write_set[i].clone()),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = Phase::WriteStore { round };
                }
            }
            Phase::WriteStore { round } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    self.phase = Phase::Idle;
                    self.write_set.clear();
                    self.current_op = None;
                    eff.complete(OpResult::Write);
                }
            }
            Phase::Read { round } => {
                let SafeResp::Data(chunk) = resp else { return };
                if !round.accept(rmw, chunk) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    // Lines 15–18: decode if some ts has k pieces, else v₀.
                    let chunks: Vec<Chunk> =
                        round.responses().iter().map(|(_, c)| c.clone()).collect();
                    let value = match best_decodable(&chunks, Timestamp::ZERO, self.cfg.k) {
                        Some((_, blocks)) => self
                            .code
                            .decode(&blocks)
                            .expect("k distinct pieces of one write decode"),
                        None => self.cfg.initial_value(),
                    };
                    self.phase = Phase::Idle;
                    self.current_op = None;
                    eff.complete(OpResult::Read(value));
                }
            }
        }
    }

    fn stored_blocks(&self) -> Vec<BlockInstance> {
        match &self.phase {
            Phase::Read { round } => round
                .responses()
                .iter()
                .map(|(_, c)| c.instance())
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Factory for the safe-register protocol.
#[derive(Debug, Clone)]
pub struct Safe {
    cfg: RegisterConfig,
    initial_blocks: Vec<Block>,
}

impl Safe {
    /// Creates the protocol for a validated configuration.
    pub fn new(cfg: RegisterConfig) -> Self {
        let code = cfg.code().expect("validated config builds a code");
        let initial_blocks = code.encode(&cfg.initial_value());
        Safe {
            cfg,
            initial_blocks,
        }
    }
}

impl RegisterProtocol for Safe {
    type Object = SafeObject;
    type Client = SafeClient;

    fn name(&self) -> &'static str {
        "safe"
    }

    fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn new_sim(&self) -> Simulation<SafeObject, SafeClient> {
        let blocks = self.initial_blocks.clone();
        Simulation::new(self.cfg.n, move |obj: ObjectId| {
            SafeObject::initial(TaggedBlock::new(INITIAL_OP, blocks[obj.0].clone()))
        })
    }

    fn add_client(&self, sim: &mut Simulation<SafeObject, SafeClient>) -> ClientId {
        let id = ClientId(sim.client_count());
        sim.add_client(SafeClient::new(self.cfg, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_coding::Value;
    use rsb_fpsm::{run_to_completion, run_until, RandomScheduler};

    fn proto(f: usize, k: usize, len: usize) -> Safe {
        Safe::new(RegisterConfig::paper(f, k, len).unwrap())
    }

    #[test]
    fn quiet_write_then_read() {
        let p = proto(1, 2, 30);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        let v = Value::seeded(8, 30);
        sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        // Drain stragglers so all n objects hold the new pieces.
        let mut fair = rsb_fpsm::FairScheduler::new();
        rsb_fpsm::run(&mut sim, &mut fair, 10_000);
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(v))
        );
    }

    #[test]
    fn storage_is_constant_n_over_k() {
        let p = proto(2, 2, 64); // n = 6, piece 32 B = 256 bits
        let mut sim = p.new_sim();
        let ws: Vec<_> = (0..4).map(|_| p.add_client(&mut sim)).collect();
        let expected = 6 * 256;
        assert_eq!(sim.storage_cost().object_bits, expected);
        for (i, &w) in ws.iter().enumerate() {
            sim.invoke(w, OpRequest::Write(Value::seeded(i as u64, 64)))
                .unwrap();
        }
        let mut sched = RandomScheduler::new(3);
        assert!(run_until(&mut sim, &mut sched, 100_000, |s| s
            .history()
            .iter()
            .all(rsb_fpsm::OpRecord::is_complete)));
        let mut fair = rsb_fpsm::FairScheduler::new();
        rsb_fpsm::run(&mut sim, &mut fair, 100_000);
        // Object storage never grows beyond n pieces.
        assert_eq!(sim.storage_cost().object_bits, expected);
        assert_eq!(sim.peak_storage_cost().object_bits, expected);
    }

    #[test]
    fn read_with_no_concurrent_writes_returns_last_value() {
        let p = proto(1, 3, 60);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        for seed in 0..3 {
            sim.invoke(w, OpRequest::Write(Value::seeded(seed, 60)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 10_000));
            let mut fair = rsb_fpsm::FairScheduler::new();
            rsb_fpsm::run(&mut sim, &mut fair, 10_000);
        }
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(Value::seeded(2, 60)))
        );
    }

    #[test]
    fn reads_are_wait_free_even_with_stuck_writers() {
        // A writer stuck mid-round-2 partially overwrites pieces; the read
        // must still return (possibly v₀) after ONE round — wait-freedom.
        let p = proto(1, 2, 16); // n = 4
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        sim.invoke(w, OpRequest::Write(Value::seeded(1, 16)))
            .unwrap();
        // Run the writer's first round and exactly one Store apply+deliver.
        let mut fair = rsb_fpsm::FairScheduler::new();
        for _ in 0..10 {
            if let Some(ev) =
                rsb_fpsm::Scheduler::<SafeObject, SafeClient>::next_event(&mut fair, &sim)
            {
                sim.step(ev).unwrap();
            }
        }
        sim.crash_client(w);
        let read_op = sim.invoke(r, OpRequest::Read).unwrap();
        let mut fair = rsb_fpsm::FairScheduler::new();
        assert!(run_until(&mut sim, &mut fair, 10_000, |s| {
            s.op_record(read_op).is_complete()
        }));
        let got = sim.history().last().unwrap().result.clone().unwrap();
        let got = got.read_value().unwrap().clone();
        assert!(got == Value::zeroed(16) || got == Value::seeded(1, 16));
    }
}
