//! A thread-based runtime: run any [`RegisterProtocol`] with real
//! concurrent clients.
//!
//! The deterministic simulator is the right tool for experiments (it can
//! realize adversarial schedules), but it is also useful to see the
//! protocols run under genuine parallelism. Two reusable pieces live here
//! and are shared with the sharded store runtime in `rsb-store`:
//!
//! * [`DriverCore`] — the lock + condvar + stop-flag cell a *network
//!   driver* thread and its clients rendezvous on;
//! * [`CompletionSlot`] — a per-operation completion cell a client can
//!   either block on (condvar) or poll as a future (waker), filled by the
//!   driver when the operation returns inside the simulation;
//! * [`ReadyQueue`] — the event-driven scheduling companion of
//!   [`DriverCore`] for *multi-key* drivers: a queue of key slots with
//!   enabled simulator events, so a driver batch does O(enabled) work
//!   instead of rescanning every materialized key;
//! * [`WorkGroup`] — the rendezvous for a *pool* of driver threads
//!   sharing ready queues (the sharded store's work-stealing drivers):
//!   lost-wakeup-free parking, and a stop request every parked driver
//!   observes promptly.
//!
//! [`ThreadedRegister`] composes them for a single register: the driver
//! thread plays a fair scheduler over one simulation, while any number of
//! application threads perform blocking `read`/`write` operations through
//! [`ClientHandle`]s.
//!
//! Asynchrony is real here: the interleaving of RMW applies/deliveries
//! against invocations depends on OS scheduling — but safety never does
//! (that is the point of the protocols).
//!
//! # Example
//!
//! ```
//! use rsb_registers::{Adaptive, RegisterConfig};
//! use rsb_registers::threaded::ThreadedRegister;
//! use rsb_coding::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reg = ThreadedRegister::start(Adaptive::new(RegisterConfig::paper(1, 2, 64)?));
//! let w = reg.client();
//! let r = reg.client();
//! let v = Value::seeded(1, 64);
//! w.write(v.clone())?;
//! assert_eq!(r.read()?, v);
//! reg.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::lockorder::{ranks, tracked_lock, Tracked};
use crate::protocol::RegisterProtocol;
use parking_lot::{Condvar, Mutex, MutexGuard};
// Under the `mc` feature the ReadyQueue's lock comes from the
// rsb-mcsync interleaving checker (a transparent passthrough outside a
// model run), so `crates/mc` can exhaustively explore the steal-half
// protocol. Everything else in this file stays on parking_lot.
#[cfg(not(feature = "mc"))]
use parking_lot as ready_sync;
use rsb_coding::Value;
use rsb_fpsm::{ClientId, OpId, OpRequest, OpResult, Simulation};
#[cfg(feature = "mc")]
use rsb_mcsync::sync as ready_sync;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// Errors from the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// The runtime has been shut down.
    ShutDown,
    /// The underlying simulation rejected the invocation.
    Rejected(String),
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::ShutDown => write!(f, "register runtime has shut down"),
            ThreadedError::Rejected(msg) => write!(f, "invocation rejected: {msg}"),
        }
    }
}

impl std::error::Error for ThreadedError {}

/// The rendezvous cell between one driver thread and its clients: a guarded
/// state `T`, a progress condvar the driver parks on while idle, and a stop
/// flag.
///
/// [`ThreadedRegister`] guards a single simulation with one of these; the
/// sharded store guards a whole shard (many key simulations) per core —
/// that per-shard granularity, instead of one global lock, is what the
/// store's scalability comes from.
#[derive(Debug)]
pub struct DriverCore<T> {
    core_state: Mutex<T>,
    progress: Condvar,
    stop: AtomicBool,
}

impl<T> DriverCore<T> {
    /// Creates a core around the guarded state.
    pub fn new(state: T) -> Self {
        DriverCore {
            core_state: Mutex::new(state),
            progress: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    /// Locks the guarded state (through the lock-hierarchy checker; see
    /// [`crate::lockorder`]).
    pub fn lock(&self) -> Tracked<MutexGuard<'_, T>> {
        tracked_lock(ranks::DRIVER_CORE, "driver_core", || self.core_state.lock())
    }

    /// Wakes the driver (and anyone else parked on the progress condvar).
    pub fn notify(&self) {
        self.progress.notify_all();
    }

    /// Parks on the progress condvar with the guard relinquished, until
    /// notified.
    pub fn wait(&self, guard: &mut Tracked<MutexGuard<'_, T>>) {
        self.progress.wait(guard.raw_mut());
    }

    /// Requests the driver to stop, and wakes it.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Taking the state lock orders this notify after any driver's
        // check-stop-then-wait sequence (the driver holds the lock from
        // its check until the wait releases it), so an untimed wait can
        // never miss the stop signal.
        let guard = tracked_lock(ranks::DRIVER_CORE, "driver_core", || self.core_state.lock());
        drop(guard);
        self.progress.notify_all();
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Scheduling state of one [`ReadyQueue`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// No enabled work known; not in the queue.
    Idle,
    /// In the queue, waiting for a driver.
    Queued,
    /// Popped by a driver; the driver owns the slot until it finishes.
    Running,
    /// Popped by a driver, and new work arrived meanwhile — the finishing
    /// driver must re-enqueue.
    RunningDirty,
}

/// A queue of key-slot tokens with enabled simulator events.
///
/// Slots are small integers registered once per key; drivers [`pop`] a
/// slot, step its simulation while *owning* it (a popped slot cannot be
/// popped again until [`finish`]ed, which preserves per-key
/// serialization even across stealing drivers), and re-enqueue it when
/// more events remain or new work arrived during the run.
///
/// [`pop`]: ReadyQueue::pop
/// [`finish`]: ReadyQueue::finish
#[derive(Debug, Default)]
pub struct ReadyQueue {
    ready: ready_sync::Mutex<ReadyInner>,
}

#[derive(Debug, Default)]
struct ReadyInner {
    queue: std::collections::VecDeque<usize>,
    states: Vec<SlotState>,
}

impl ReadyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Registers a new slot (one per key), returning its token.
    pub fn register_slot(&self) -> usize {
        let mut inner = tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock());
        inner.states.push(SlotState::Idle);
        inner.states.len() - 1
    }

    /// Marks a slot as having enabled work. Returns `true` when the slot
    /// was newly enqueued (the caller should wake a driver); `false` when
    /// it was already queued or a running driver will re-enqueue it.
    pub fn enqueue(&self, slot: usize) -> bool {
        let mut inner = tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock());
        match inner.states[slot] {
            SlotState::Idle => {
                inner.states[slot] = SlotState::Queued;
                inner.queue.push_back(slot);
                true
            }
            SlotState::Running => {
                inner.states[slot] = SlotState::RunningDirty;
                false
            }
            SlotState::Queued | SlotState::RunningDirty => false,
        }
    }

    /// Pops the next ready slot, transferring ownership to the caller
    /// until [`ReadyQueue::finish`].
    pub fn pop(&self) -> Option<usize> {
        let mut inner = tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock());
        let slot = inner.queue.pop_front()?;
        debug_assert_eq!(inner.states[slot], SlotState::Queued);
        inner.states[slot] = SlotState::Running;
        Some(slot)
    }

    /// Pops up to half the queued slots (at least one when the queue is
    /// non-empty) in one lock acquisition, transferring ownership of each
    /// to the caller until its [`ReadyQueue::finish`]. This is the batch
    /// face of stealing: a thief drains `ceil(len/2)` of the victim's
    /// backlog in one pass instead of re-acquiring the queue lock per key.
    pub fn pop_half(&self) -> Vec<usize> {
        let mut inner = tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock());
        let take = inner.queue.len().div_ceil(2);
        let mut slots = Vec::with_capacity(take);
        for _ in 0..take {
            let Some(slot) = inner.queue.pop_front() else {
                break;
            };
            debug_assert_eq!(inner.states[slot], SlotState::Queued);
            inner.states[slot] = SlotState::Running;
            slots.push(slot);
        }
        slots
    }

    /// Releases a popped slot. `more` reports whether the slot still has
    /// enabled events; the slot is re-enqueued when `more` holds or work
    /// arrived while it ran. Returns `true` if it was re-enqueued.
    pub fn finish(&self, slot: usize, more: bool) -> bool {
        let mut inner = tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock());
        let requeue = more || inner.states[slot] == SlotState::RunningDirty;
        if requeue {
            inner.states[slot] = SlotState::Queued;
            inner.queue.push_back(slot);
        } else {
            inner.states[slot] = SlotState::Idle;
        }
        requeue
    }

    /// Queued slots right now.
    pub fn len(&self) -> usize {
        tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock())
            .queue
            .len()
    }

    /// Whether no slot is queued.
    pub fn is_empty(&self) -> bool {
        tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock())
            .queue
            .is_empty()
    }
}

/// The rendezvous of a pool of driver threads over a set of ready queues.
///
/// Parking is lost-wakeup-free by the same lock-ordering argument as
/// [`DriverCore`]: a parking driver re-checks for work *under the group
/// lock*, and both [`WorkGroup::notify`] and [`WorkGroup::request_stop`]
/// acquire that lock before signalling, so a wakeup issued after the
/// check cannot be missed — and a driver parked on an empty ready queue
/// observes shutdown promptly, with no timed waits anywhere.
#[derive(Debug, Default)]
pub struct WorkGroup {
    mu: Mutex<()>,
    cv: Condvar,
    stop: AtomicBool,
    broadcast: bool,
    /// Drivers that announced intent to park (eventcount fast path):
    /// while this is zero, [`WorkGroup::notify`] is one atomic load.
    sleepers: std::sync::atomic::AtomicUsize,
}

impl WorkGroup {
    /// Creates a group whose [`WorkGroup::notify`] wakes a single parked
    /// driver — correct when every driver can run any queue's work
    /// (work-stealing pools), and avoids thundering-herd wakeups on
    /// every submission.
    pub fn new() -> Self {
        WorkGroup::default()
    }

    /// Creates a group whose [`WorkGroup::notify`] wakes *every* parked
    /// driver. Required when drivers serve disjoint queues (stealing
    /// disabled): a single wakeup could land on a driver whose own queue
    /// is empty, stranding the work. Spuriously woken drivers re-check
    /// their predicate and re-park immediately.
    pub fn new_broadcast() -> Self {
        WorkGroup {
            broadcast: true,
            ..WorkGroup::default()
        }
    }

    /// Wakes a parked driver (after enqueueing work) — one driver, or
    /// all of them for a [`WorkGroup::new_broadcast`] group.
    ///
    /// Fast path: when no driver has announced intent to park, this is a
    /// single atomic load. The SeqCst pairing with
    /// [`WorkGroup::park_unless`] makes the skip sound: a parker
    /// announces itself (SeqCst RMW) *before* re-checking for work, so
    /// either this load observes the sleeper (and notifies), or the
    /// parker's work check observes the enqueue that preceded this call.
    pub fn notify(&self) {
        // The fence orders the caller's enqueue (a release under the
        // queue lock) before the sleepers load — without it, StoreLoad
        // reordering could let both the notifier miss the sleeper and
        // the parker miss the enqueue.
        // audit:allow(atomics-seqcst) — the eventcount protocol needs the
        // StoreLoad barrier this fence provides (see the comment above);
        // acquire/release cannot order a prior store against a later load.
        std::sync::atomic::fence(Ordering::SeqCst);
        // audit:allow(atomics-seqcst) — part of the same single total order
        // as the parkers' announcements; see `WorkGroup::notify`'s docs.
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let guard = tracked_lock(ranks::WORKGROUP, "workgroup", || self.mu.lock());
        drop(guard);
        if self.broadcast {
            self.cv.notify_all();
        } else {
            self.cv.notify_one();
        }
    }

    /// Parks the calling driver until notified — unless `has_work`
    /// reports pending work or a stop was requested, both re-checked
    /// after announcing intent to park (see [`WorkGroup::notify`]) and
    /// again under the group lock (so a notify issued between the check
    /// and the wait cannot be missed).
    pub fn park_unless(&self, has_work: impl Fn() -> bool) {
        // audit:allow(atomics-seqcst) — the park announcement must be
        // totally ordered against the notifier's fast-path load, or a
        // sleeper and an enqueue could both go unobserved (lost wakeup);
        // see `WorkGroup::notify`.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = tracked_lock(ranks::WORKGROUP, "workgroup", || self.mu.lock());
        if self.is_stopped() || has_work() {
            drop(guard);
            // audit:allow(atomics-seqcst) — symmetric with the announcement
            // above; keeps the sleeper count in the same total order.
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.cv.wait(guard.raw_mut());
        drop(guard);
        // audit:allow(atomics-seqcst) — symmetric with the announcement
        // above; keeps the sleeper count in the same total order.
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Like [`WorkGroup::park_unless`], but wakes after `timeout` even
    /// with no notify — for drivers that must run periodic duties (e.g.
    /// wall-clock key aging) on a fully idle store, where no submission
    /// will ever notify them. Same lost-wakeup-free protocol; the timeout
    /// only adds an upper bound on how long the park lasts.
    pub fn park_timeout_unless(&self, timeout: std::time::Duration, has_work: impl Fn() -> bool) {
        // audit:allow(atomics-seqcst) — the park announcement must be
        // totally ordered against the notifier's fast-path load, or a
        // sleeper and an enqueue could both go unobserved (lost wakeup);
        // see `WorkGroup::notify`.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = tracked_lock(ranks::WORKGROUP, "workgroup", || self.mu.lock());
        if self.is_stopped() || has_work() {
            drop(guard);
            // audit:allow(atomics-seqcst) — symmetric with the announcement
            // above; keeps the sleeper count in the same total order.
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _ = self.cv.wait_for(guard.raw_mut(), timeout);
        drop(guard);
        // audit:allow(atomics-seqcst) — symmetric with the announcement
        // above; keeps the sleeper count in the same total order.
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests the pool to stop and wakes every parked driver.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let guard = tracked_lock(ranks::WORKGROUP, "workgroup", || self.mu.lock());
        drop(guard);
        self.cv.notify_all();
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Spawns a named driver thread over a [`DriverCore`].
///
/// The driver repeatedly calls `step` under the lock; `step` returns
/// whether it made progress. When it did not, the driver parks on the
/// progress condvar until a submitter calls [`DriverCore::notify`] — no
/// timed polling: work can only be created under the lock the driver
/// holds from its `step` through the wait's release, and
/// [`DriverCore::request_stop`] takes that lock before notifying, so no
/// wakeup is lost. After a stop request the driver runs `on_stop` under
/// the lock — the place to fail pending completions so no client hangs —
/// and exits.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_driver<T, F, G>(
    name: &str,
    core: Arc<DriverCore<T>>,
    mut step: F,
    on_stop: G,
) -> std::thread::JoinHandle<()>
where
    T: Send + 'static,
    F: FnMut(&mut T) -> bool + Send + 'static,
    G: FnOnce(&mut T) + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            loop {
                let mut state = core.lock();
                if !step(&mut state) {
                    // Re-checked under the lock: request_stop's notify
                    // is ordered after this check (it takes the lock),
                    // so either we see the flag here or the wait below
                    // is woken by it.
                    if core.is_stopped() {
                        break;
                    }
                    core.wait(&mut state);
                }
                if core.is_stopped() {
                    break;
                }
            }
            let mut state = core.lock();
            on_stop(&mut state);
        })
        // audit:allow(panic-path) — thread spawn fails only when the OS is
        // out of resources at startup; there is no driver to hand back, so
        // aborting is the only honest outcome.
        .expect("spawning a driver thread")
}

/// The result type a completion slot carries.
pub type OpOutcome = Result<OpResult, ThreadedError>;

#[derive(Debug, Default)]
struct SlotInner {
    result: Option<OpOutcome>,
    waker: Option<Waker>,
}

/// A one-shot completion cell for a single emulated operation.
///
/// The driver thread fills it exactly once; the submitting client either
/// blocks on it ([`CompletionSlot::wait`]) or polls it from a hand-rolled
/// future ([`CompletionSlot::poll_outcome`]) — both work without any async
/// runtime.
#[derive(Debug, Default)]
pub struct CompletionSlot {
    inner: Mutex<SlotInner>,
    done: Condvar,
}

impl CompletionSlot {
    /// Creates an empty slot.
    pub fn new() -> Self {
        CompletionSlot::default()
    }

    /// Fills the slot, waking blocked waiters and any registered waker.
    /// A second fill is ignored (first outcome wins).
    pub fn fill(&self, outcome: OpOutcome) {
        let waker = {
            let mut inner = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
            if inner.result.is_some() {
                return;
            }
            inner.result = Some(outcome);
            self.done.notify_all();
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// The outcome, if already filled.
    pub fn try_outcome(&self) -> Option<OpOutcome> {
        tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock())
            .result
            .clone()
    }

    /// Blocks until the slot is filled.
    pub fn wait(&self) -> OpOutcome {
        let mut inner = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
        loop {
            if let Some(outcome) = inner.result.clone() {
                return outcome;
            }
            self.done.wait(inner.raw_mut());
        }
    }

    /// Future-style poll: ready with the outcome, or registers the waker.
    pub fn poll_outcome(&self, cx: &mut Context<'_>) -> Poll<OpOutcome> {
        let mut inner = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
        if let Some(outcome) = inner.result.clone() {
            Poll::Ready(outcome)
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// The state a [`ThreadedRegister`]'s driver guards: the simulation plus
/// the completion slots of in-flight operations.
#[derive(Debug)]
pub struct RegisterCell<P: RegisterProtocol + 'static> {
    /// The hosted simulation.
    pub sim: Simulation<P::Object, P::Client>,
    /// `(op, slot)` pairs not yet completed.
    pub pending: Vec<(OpId, Arc<CompletionSlot>)>,
}

impl<P: RegisterProtocol + 'static> RegisterCell<P> {
    /// Wraps a fresh simulation.
    pub fn new(sim: Simulation<P::Object, P::Client>) -> Self {
        RegisterCell {
            sim,
            pending: Vec::new(),
        }
    }

    /// Executes up to `budget` enabled events; returns how many ran.
    /// Call [`RegisterCell::complete_pending`] (or the `_with` variant)
    /// afterwards to fill the slots of operations that returned.
    ///
    /// # Panics
    ///
    /// Panics if the simulation rejects an event it reported enabled
    /// (a bug in the protocol machinery, not a runtime condition).
    pub fn step_events(&mut self, budget: usize) -> usize {
        let mut stepped = 0;
        while stepped < budget {
            let Some(ev) = self.sim.first_enabled_event() else {
                break;
            };
            // audit:allow(panic-path) — `ev` came from `first_enabled_event`
            // one line up with no intervening mutation, so `step` accepting it
            // is an invariant of the simulator, not a runtime condition.
            self.sim.step(ev).expect("enabled event applies");
            stepped += 1;
        }
        stepped
    }

    /// Whether the simulation has an enabled event (more work to run).
    pub fn has_enabled(&self) -> bool {
        self.sim.has_enabled_event()
    }

    /// Fills the slots of every operation that has returned.
    pub fn complete_pending(&mut self) {
        self.complete_pending_with(|_, _| {});
    }

    /// Like [`RegisterCell::complete_pending`], additionally visiting each
    /// completed `(op, result)` pair (the hook shard metrics and per-op
    /// latency accounting hang off).
    pub fn complete_pending_with(&mut self, mut visit: impl FnMut(OpId, &OpResult)) {
        let sim = &self.sim;
        self.pending.retain(|(op, slot)| {
            if let Some(result) = sim.op_record(*op).result.clone() {
                visit(*op, &result);
                slot.fill(Ok(result));
                false
            } else {
                true
            }
        });
    }

    /// Fails every pending operation (used at shutdown).
    pub fn fail_pending(&mut self, err: &ThreadedError) {
        for (_, slot) in self.pending.drain(..) {
            slot.fill(Err(err.clone()));
        }
    }

    /// Submits one operation: invokes it and returns its op id plus a
    /// completion slot (already filled if the operation completed
    /// synchronously).
    ///
    /// # Errors
    ///
    /// Fails if the simulation rejects the invocation.
    pub fn submit(
        &mut self,
        client: ClientId,
        req: OpRequest,
    ) -> Result<(OpId, Arc<CompletionSlot>), ThreadedError> {
        let op = self
            .sim
            .invoke(client, req)
            .map_err(|e| ThreadedError::Rejected(e.to_string()))?;
        let slot = Arc::new(CompletionSlot::new());
        if let Some(result) = self.sim.op_record(op).result.clone() {
            slot.fill(Ok(result));
        } else {
            self.pending.push((op, Arc::clone(&slot)));
        }
        Ok((op, slot))
    }
}

/// A live register service backed by a driver thread.
pub struct ThreadedRegister<P: RegisterProtocol + 'static> {
    proto: P,
    core: Arc<DriverCore<RegisterCell<P>>>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl<P: RegisterProtocol + 'static> std::fmt::Debug for ThreadedRegister<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedRegister")
            .field("protocol", &self.proto.name())
            .field("driver_running", &self.driver.is_some())
            .finish_non_exhaustive()
    }
}

impl<P: RegisterProtocol + 'static> ThreadedRegister<P> {
    /// Starts the service: builds the simulation and spawns the driver.
    pub fn start(proto: P) -> Self {
        let core = Arc::new(DriverCore::new(RegisterCell::<P>::new(proto.new_sim())));
        let driver = spawn_driver(
            "register-driver",
            Arc::clone(&core),
            |cell: &mut RegisterCell<P>| {
                if cell.step_events(1) > 0 {
                    cell.complete_pending();
                    true
                } else {
                    false
                }
            },
            |cell: &mut RegisterCell<P>| {
                cell.complete_pending();
                cell.fail_pending(&ThreadedError::ShutDown);
            },
        );
        ThreadedRegister {
            proto,
            core,
            driver: Some(driver),
        }
    }

    /// Creates a new client handle (usable from any thread).
    pub fn client(&self) -> ClientHandle<P> {
        let mut cell = self.core.lock();
        let id = self.proto.add_client(&mut cell.sim);
        drop(cell);
        ClientHandle {
            core: Arc::clone(&self.core),
            id,
        }
    }

    /// Crashes a base object (fault injection).
    pub fn crash_object(&self, obj: rsb_fpsm::ObjectId) {
        self.core.lock().sim.crash_object(obj);
    }

    /// Current storage cost snapshot.
    pub fn storage_cost(&self) -> rsb_fpsm::StorageCost {
        self.core.lock().sim.storage_cost()
    }

    /// Peak total storage in bits observed so far.
    pub fn peak_storage_bits(&self) -> u64 {
        self.core.lock().sim.peak_storage_bits()
    }

    /// Stops the driver thread. Idempotent; also called on drop.
    pub fn shutdown(mut self) {
        self.stop_driver();
    }

    fn stop_driver(&mut self) {
        self.core.request_stop();
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

impl<P: RegisterProtocol + 'static> Drop for ThreadedRegister<P> {
    fn drop(&mut self) {
        self.stop_driver();
    }
}

/// A blocking client of a [`ThreadedRegister`].
pub struct ClientHandle<P: RegisterProtocol + 'static> {
    core: Arc<DriverCore<RegisterCell<P>>>,
    id: ClientId,
}

impl<P: RegisterProtocol + 'static> std::fmt::Debug for ClientHandle<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<P: RegisterProtocol + 'static> ClientHandle<P> {
    /// The client id inside the simulation.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Performs a blocking `write(v)`.
    ///
    /// # Errors
    ///
    /// Fails if the runtime is shut down or the invocation is rejected
    /// (e.g., re-entrant use of one handle from two threads).
    pub fn write(&self, value: Value) -> Result<(), ThreadedError> {
        self.run_op(OpRequest::Write(value)).map(|_| ())
    }

    /// Performs a blocking `read()`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientHandle::write`].
    pub fn read(&self) -> Result<Value, ThreadedError> {
        match self.run_op(OpRequest::Read)? {
            OpResult::Read(v) => Ok(v),
            // audit:allow(panic-path) — the driver answers a `Read` request
            // with a `Read` result by construction; a write ack here is a
            // protocol-machinery bug worth crashing on.
            OpResult::Write => unreachable!("read returned a write ack"),
        }
    }

    fn run_op(&self, req: OpRequest) -> Result<OpResult, ThreadedError> {
        let slot = {
            let mut cell = self.core.lock();
            if self.core.is_stopped() {
                return Err(ThreadedError::ShutDown);
            }
            let (_, slot) = cell.submit(self.id, req)?;
            slot
        };
        // Wake the driver, then wait on the slot (not the sim lock).
        self.core.notify();
        slot.wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abd, Adaptive, RegisterConfig, Safe};

    #[test]
    fn concurrent_threads_adaptive() {
        let reg = ThreadedRegister::start(Adaptive::new(RegisterConfig::paper(1, 2, 32).unwrap()));
        let writers: Vec<_> = (0..4).map(|_| reg.client()).collect();
        let handles: Vec<_> = writers
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                std::thread::spawn(move || {
                    for round in 0..5u64 {
                        c.write(Value::seeded(i as u64 * 100 + round, 32)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let reader = reg.client();
        let got = reader.read().unwrap();
        assert_eq!(got.len(), 32);
        reg.shutdown();
    }

    #[test]
    fn abd_roundtrip_threaded() {
        let reg = ThreadedRegister::start(Abd::new(RegisterConfig::new(3, 1, 1, 16).unwrap()));
        let c = reg.client();
        let v = Value::seeded(9, 16);
        c.write(v.clone()).unwrap();
        assert_eq!(c.read().unwrap(), v);
        reg.shutdown();
    }

    #[test]
    fn safe_register_with_crash_threaded() {
        let reg = ThreadedRegister::start(Safe::new(RegisterConfig::paper(1, 2, 16).unwrap()));
        reg.crash_object(rsb_fpsm::ObjectId(0));
        let c = reg.client();
        let v = Value::seeded(2, 16);
        c.write(v.clone()).unwrap();
        let got = c.read().unwrap();
        // Safe semantics: with no concurrent writes the value must match.
        assert_eq!(got, v);
        reg.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_ops() {
        let reg = ThreadedRegister::start(Abd::new(RegisterConfig::new(3, 1, 1, 8).unwrap()));
        let c = reg.client();
        reg.shutdown();
        assert_eq!(c.read().unwrap_err(), ThreadedError::ShutDown);
    }

    #[test]
    fn pop_half_takes_ceil_half_and_owns_slots() {
        let q = ReadyQueue::new();
        let slots: Vec<usize> = (0..5).map(|_| q.register_slot()).collect();
        for &s in &slots {
            assert!(q.enqueue(s));
        }
        // 5 queued → ceil(5/2) = 3 popped, all owned by the thief.
        let stolen = q.pop_half();
        assert_eq!(stolen, slots[..3].to_vec());
        assert_eq!(q.len(), 2);
        // An owned slot cannot be enqueued again — it goes dirty and the
        // finishing thief re-enqueues it.
        assert!(!q.enqueue(stolen[0]));
        assert!(q.finish(stolen[0], false), "dirty slot re-enqueues");
        assert!(!q.finish(stolen[1], false));
        assert!(q.finish(stolen[2], true), "more work re-enqueues");
        assert_eq!(q.len(), 4);
        // Empty queue → empty batch.
        while q.pop().is_some() {}
        assert!(q.pop_half().is_empty());
    }

    #[test]
    fn park_timeout_unless_wakes_without_notify() {
        let group = WorkGroup::new();
        let start = std::time::Instant::now();
        group.park_timeout_unless(std::time::Duration::from_millis(10), || false);
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
        // Pending work skips the park entirely.
        let start = std::time::Instant::now();
        group.park_timeout_unless(std::time::Duration::from_mins(1), || true);
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn completion_slot_blocks_and_polls() {
        use std::task::{Context, Poll, Wake, Waker};

        struct Flag(std::sync::atomic::AtomicBool);
        impl Wake for Flag {
            fn wake(self: Arc<Self>) {
                // audit:allow(atomics-relaxed) — the filler thread is joined
                // before the flag is read; the join is the sync point.
                self.0.store(true, Ordering::Relaxed);
            }
        }

        let slot = Arc::new(CompletionSlot::new());
        let flag = Arc::new(Flag(std::sync::atomic::AtomicBool::new(false)));
        let waker = Waker::from(Arc::clone(&flag));
        let mut cx = Context::from_waker(&waker);
        assert!(slot.poll_outcome(&mut cx).is_pending());

        let filler = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.fill(Ok(OpResult::Write)))
        };
        assert_eq!(slot.wait(), Ok(OpResult::Write));
        filler.join().unwrap();
        // audit:allow(atomics-relaxed) — see the store in `wake`.
        assert!(flag.0.load(Ordering::Relaxed), "waker fired on fill");
        assert_eq!(slot.poll_outcome(&mut cx), Poll::Ready(Ok(OpResult::Write)));
        // First outcome wins.
        slot.fill(Err(ThreadedError::ShutDown));
        assert_eq!(slot.try_outcome(), Some(Ok(OpResult::Write)));
    }
}
