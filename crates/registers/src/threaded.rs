//! A thread-based runtime: run any [`RegisterProtocol`] with real
//! concurrent clients.
//!
//! The deterministic simulator is the right tool for experiments (it can
//! realize adversarial schedules), but it is also useful to see the
//! protocols run under genuine parallelism. [`ThreadedRegister`] hosts the
//! simulation behind a lock; a background *network driver* thread plays a
//! fair scheduler, while any number of application threads perform
//! blocking `read`/`write` operations through [`ClientHandle`]s.
//!
//! Asynchrony is real here: the interleaving of RMW applies/deliveries
//! against invocations depends on OS scheduling — but safety never does
//! (that is the point of the protocols).
//!
//! # Example
//!
//! ```
//! use rsb_registers::{Adaptive, RegisterConfig};
//! use rsb_registers::threaded::ThreadedRegister;
//! use rsb_coding::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reg = ThreadedRegister::start(Adaptive::new(RegisterConfig::paper(1, 2, 64)?));
//! let w = reg.client();
//! let r = reg.client();
//! let v = Value::seeded(1, 64);
//! w.write(v.clone())?;
//! assert_eq!(r.read()?, v);
//! reg.shutdown();
//! # Ok(())
//! # }
//! ```

use crate::protocol::RegisterProtocol;
use parking_lot::{Condvar, Mutex};
use rsb_coding::Value;
use rsb_fpsm::{ClientId, OpId, OpRequest, OpResult, Simulation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors from the threaded runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// The runtime has been shut down.
    ShutDown,
    /// The underlying simulation rejected the invocation.
    Rejected(String),
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::ShutDown => write!(f, "register runtime has shut down"),
            ThreadedError::Rejected(msg) => write!(f, "invocation rejected: {msg}"),
        }
    }
}

impl std::error::Error for ThreadedError {}

struct Shared<P: RegisterProtocol + 'static> {
    sim: Mutex<Simulation<P::Object, P::Client>>,
    progress: Condvar,
    stop: AtomicBool,
}

/// A live register service backed by a driver thread.
pub struct ThreadedRegister<P: RegisterProtocol + 'static> {
    proto: P,
    shared: Arc<Shared<P>>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl<P: RegisterProtocol + 'static> ThreadedRegister<P> {
    /// Starts the service: builds the simulation and spawns the driver.
    pub fn start(proto: P) -> Self {
        let sim = proto.new_sim();
        let shared = Arc::new(Shared {
            sim: Mutex::new(sim),
            progress: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let driver_shared = Arc::clone(&shared);
        let driver = std::thread::Builder::new()
            .name("register-driver".into())
            .spawn(move || {
                while !driver_shared.stop.load(Ordering::Acquire) {
                    let mut sim = driver_shared.sim.lock();
                    let events = sim.enabled_events();
                    if let Some(&ev) = events.first() {
                        sim.step(ev).expect("enabled event applies");
                        driver_shared.progress.notify_all();
                        drop(sim);
                    } else {
                        // Nothing to do: sleep until an invocation arrives.
                        driver_shared
                            .progress
                            .wait_for(&mut sim, Duration::from_millis(1));
                    }
                }
            })
            .expect("spawning the driver thread");
        ThreadedRegister {
            proto,
            shared,
            driver: Some(driver),
        }
    }

    /// Creates a new client handle (usable from any thread).
    pub fn client(&self) -> ClientHandle<P> {
        let mut sim = self.shared.sim.lock();
        let id = self.proto.add_client(&mut sim);
        drop(sim);
        ClientHandle {
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// Crashes a base object (fault injection).
    pub fn crash_object(&self, obj: rsb_fpsm::ObjectId) {
        self.shared.sim.lock().crash_object(obj);
    }

    /// Current storage cost snapshot.
    pub fn storage_cost(&self) -> rsb_fpsm::StorageCost {
        self.shared.sim.lock().storage_cost()
    }

    /// Peak total storage in bits observed so far.
    pub fn peak_storage_bits(&self) -> u64 {
        self.shared.sim.lock().peak_storage_bits()
    }

    /// Stops the driver thread. Idempotent; also called on drop.
    pub fn shutdown(mut self) {
        self.stop_driver();
    }

    fn stop_driver(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.progress.notify_all();
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

impl<P: RegisterProtocol + 'static> Drop for ThreadedRegister<P> {
    fn drop(&mut self) {
        self.stop_driver();
    }
}

/// A blocking client of a [`ThreadedRegister`].
pub struct ClientHandle<P: RegisterProtocol + 'static> {
    shared: Arc<Shared<P>>,
    id: ClientId,
}

impl<P: RegisterProtocol + 'static> ClientHandle<P> {
    /// The client id inside the simulation.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Performs a blocking `write(v)`.
    ///
    /// # Errors
    ///
    /// Fails if the runtime is shut down or the invocation is rejected
    /// (e.g., re-entrant use of one handle from two threads).
    pub fn write(&self, value: Value) -> Result<(), ThreadedError> {
        self.run_op(OpRequest::Write(value)).map(|_| ())
    }

    /// Performs a blocking `read()`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClientHandle::write`].
    pub fn read(&self) -> Result<Value, ThreadedError> {
        match self.run_op(OpRequest::Read)? {
            OpResult::Read(v) => Ok(v),
            OpResult::Write => unreachable!("read returned a write ack"),
        }
    }

    fn run_op(&self, req: OpRequest) -> Result<OpResult, ThreadedError> {
        let mut sim = self.shared.sim.lock();
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(ThreadedError::ShutDown);
        }
        let op: OpId = sim
            .invoke(self.id, req)
            .map_err(|e| ThreadedError::Rejected(e.to_string()))?;
        // Wake the driver and wait for completion.
        self.shared.progress.notify_all();
        loop {
            if let Some(result) = sim.op_record(op).result.clone() {
                return Ok(result);
            }
            if self.shared.stop.load(Ordering::Acquire) {
                return Err(ThreadedError::ShutDown);
            }
            self.shared
                .progress
                .wait_for(&mut sim, Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abd, Adaptive, RegisterConfig, Safe};

    #[test]
    fn concurrent_threads_adaptive() {
        let reg = ThreadedRegister::start(Adaptive::new(RegisterConfig::paper(1, 2, 32).unwrap()));
        let writers: Vec<_> = (0..4).map(|_| reg.client()).collect();
        let handles: Vec<_> = writers
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                std::thread::spawn(move || {
                    for round in 0..5u64 {
                        c.write(Value::seeded(i as u64 * 100 + round, 32)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let reader = reg.client();
        let got = reader.read().unwrap();
        assert_eq!(got.len(), 32);
        reg.shutdown();
    }

    #[test]
    fn abd_roundtrip_threaded() {
        let reg = ThreadedRegister::start(Abd::new(RegisterConfig::new(3, 1, 1, 16).unwrap()));
        let c = reg.client();
        let v = Value::seeded(9, 16);
        c.write(v.clone()).unwrap();
        assert_eq!(c.read().unwrap(), v);
        reg.shutdown();
    }

    #[test]
    fn safe_register_with_crash_threaded() {
        let reg = ThreadedRegister::start(Safe::new(RegisterConfig::paper(1, 2, 16).unwrap()));
        reg.crash_object(rsb_fpsm::ObjectId(0));
        let c = reg.client();
        let v = Value::seeded(2, 16);
        c.write(v.clone()).unwrap();
        let got = c.read().unwrap();
        // Safe semantics: with no concurrent writes the value must match.
        assert_eq!(got, v);
        reg.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_ops() {
        let reg = ThreadedRegister::start(Abd::new(RegisterConfig::new(3, 1, 1, 8).unwrap()));
        let c = reg.client();
        reg.shutdown();
        assert_eq!(c.read().unwrap_err(), ThreadedError::ShutDown);
    }
}
