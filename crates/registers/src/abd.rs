//! ABD-style full-replication register — the paper's `O(fD)` baseline
//! (its citation [4], Attiya–Bar-Noy–Dolev, adapted to multi-writer).
//!
//! Every base object stores one timestamped full replica; a write reads
//! timestamps from a quorum, then stores the value with a higher timestamp
//! on a quorum; a read collects replicas from a quorum and returns the one
//! with the highest timestamp. Without reader write-back this satisfies
//! strong regularity (MWRegWO — the paper notes exactly this in Appendix
//! A) but not atomicity.
//!
//! Storage: exactly `n` replicas = `n·D` bits at all times, independent of
//! concurrency — the replication side of the `Θ(min(f, c)·D)` dichotomy.

use crate::common::{QuorumRound, RegisterConfig, TaggedBlock, Timestamp, INITIAL_OP};
use crate::protocol::RegisterProtocol;
use rsb_coding::{Block, Value};
use rsb_fpsm::{
    BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId, OpRequest,
    OpResult, Payload, RmwId, Simulation,
};

/// Base-object state: one timestamped full replica.
#[derive(Debug, Clone)]
pub struct AbdObject {
    ts: Timestamp,
    replica: TaggedBlock,
}

impl AbdObject {
    /// Initial state holding `v₀`.
    pub fn initial(replica: TaggedBlock) -> Self {
        AbdObject {
            ts: Timestamp::ZERO,
            replica,
        }
    }

    /// The replica's timestamp.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }
}

/// RMWs of the ABD emulation.
#[derive(Debug, Clone)]
pub enum AbdRmw {
    /// Write round 1: fetch the stored timestamp (metadata only).
    ReadTs,
    /// Read round: fetch timestamp and replica.
    ReadValue,
    /// Write round 2: conditionally overwrite with a newer replica.
    Store {
        /// The write's timestamp.
        ts: Timestamp,
        /// The full replica.
        replica: TaggedBlock,
    },
}

impl Payload for AbdRmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            AbdRmw::ReadTs | AbdRmw::ReadValue => Vec::new(),
            AbdRmw::Store { replica, .. } => vec![replica.instance()],
        }
    }
}

/// Responses of the ABD emulation.
#[derive(Debug, Clone)]
pub enum AbdResp {
    /// Ack for `Store`.
    Ack,
    /// Timestamp only.
    Ts(Timestamp),
    /// Timestamp plus replica.
    State {
        /// The stored timestamp.
        ts: Timestamp,
        /// The stored replica.
        replica: TaggedBlock,
    },
}

impl Payload for AbdResp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            AbdResp::Ack | AbdResp::Ts(_) => Vec::new(),
            AbdResp::State { replica, .. } => vec![replica.instance()],
        }
    }
}

impl Payload for AbdObject {
    fn blocks(&self) -> Vec<BlockInstance> {
        vec![self.replica.instance()]
    }
}

impl ObjectState for AbdObject {
    type Rmw = AbdRmw;
    type Resp = AbdResp;

    fn apply(&mut self, _client: ClientId, rmw: &AbdRmw) -> AbdResp {
        match rmw {
            AbdRmw::ReadTs => AbdResp::Ts(self.ts),
            AbdRmw::ReadValue => AbdResp::State {
                ts: self.ts,
                replica: self.replica.clone(),
            },
            AbdRmw::Store { ts, replica } => {
                if *ts > self.ts {
                    self.ts = *ts;
                    self.replica = replica.clone();
                }
                AbdResp::Ack
            }
        }
    }
}

/// Per-operation phase of the ABD client.
#[derive(Debug)]
enum Phase {
    Idle,
    WriteReadTs {
        round: QuorumRound<Timestamp>,
    },
    WriteStore {
        round: QuorumRound<()>,
    },
    Read {
        round: QuorumRound<(Timestamp, TaggedBlock)>,
    },
}

/// Client automaton of the ABD emulation.
#[derive(Debug)]
pub struct AbdClient {
    cfg: RegisterConfig,
    me: ClientId,
    phase: Phase,
    value: Option<Value>,
    current_op: Option<OpId>,
}

impl AbdClient {
    /// Creates the automaton for client `me`.
    pub fn new(cfg: RegisterConfig, me: ClientId) -> Self {
        AbdClient {
            cfg,
            me,
            phase: Phase::Idle,
            value: None,
            current_op: None,
        }
    }
}

impl ClientLogic for AbdClient {
    type State = AbdObject;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<AbdObject>) {
        self.current_op = Some(op);
        match req {
            OpRequest::Write(v) => {
                self.value = Some(v);
                let mut round = QuorumRound::new();
                for i in 0..self.cfg.n {
                    let id = eff.trigger(ObjectId(i), AbdRmw::ReadTs);
                    round.expect(id, ObjectId(i));
                }
                self.phase = Phase::WriteReadTs { round };
            }
            OpRequest::Read => {
                let mut round = QuorumRound::new();
                for i in 0..self.cfg.n {
                    let id = eff.trigger(ObjectId(i), AbdRmw::ReadValue);
                    round.expect(id, ObjectId(i));
                }
                self.phase = Phase::Read { round };
            }
        }
    }

    fn on_response(&mut self, op: OpId, rmw: RmwId, resp: AbdResp, eff: &mut Effects<AbdObject>) {
        if self.current_op != Some(op) {
            return;
        }
        match &mut self.phase {
            Phase::Idle => {}
            Phase::WriteReadTs { round } => {
                let AbdResp::Ts(ts) = resp else { return };
                if !round.accept(rmw, ts) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    let max = round
                        .responses()
                        .iter()
                        .map(|(_, ts)| *ts)
                        .max()
                        .expect("quorum is nonempty");
                    let ts = Timestamp::new(max.num + 1, self.me);
                    let v = self.value.take().expect("write holds a value");
                    let replica = TaggedBlock::new(op, Block::new(0, v.as_bytes().to_vec()));
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            AbdRmw::Store {
                                ts,
                                replica: replica.clone(),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = Phase::WriteStore { round };
                }
            }
            Phase::WriteStore { round } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    self.phase = Phase::Idle;
                    self.current_op = None;
                    eff.complete(OpResult::Write);
                }
            }
            Phase::Read { round } => {
                let AbdResp::State { ts, replica } = resp else {
                    return;
                };
                if !round.accept(rmw, (ts, replica)) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    let (_, best) = round
                        .responses()
                        .iter()
                        .max_by_key(|(_, (ts, _))| *ts)
                        .expect("quorum is nonempty");
                    let value = Value::from_bytes(best.1.block.data().to_vec());
                    self.phase = Phase::Idle;
                    self.current_op = None;
                    eff.complete(OpResult::Read(value));
                }
            }
        }
    }

    fn stored_blocks(&self) -> Vec<BlockInstance> {
        match &self.phase {
            Phase::Read { round } => round
                .responses()
                .iter()
                .map(|(_, (_, r))| r.instance())
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Factory for the ABD protocol.
#[derive(Debug, Clone)]
pub struct Abd {
    cfg: RegisterConfig,
}

impl Abd {
    /// Creates the protocol. ABD needs only `n > 2f`; the `k` in `cfg` is
    /// ignored (replication is the `k = 1` code).
    pub fn new(cfg: RegisterConfig) -> Self {
        Abd { cfg }
    }
}

impl RegisterProtocol for Abd {
    type Object = AbdObject;
    type Client = AbdClient;

    fn name(&self) -> &'static str {
        "abd"
    }

    fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn new_sim(&self) -> Simulation<AbdObject, AbdClient> {
        let v0 = self.cfg.initial_value();
        Simulation::new(self.cfg.n, move |_| {
            AbdObject::initial(TaggedBlock::new(
                INITIAL_OP,
                Block::new(0, v0.as_bytes().to_vec()),
            ))
        })
    }

    fn add_client(&self, sim: &mut Simulation<AbdObject, AbdClient>) -> ClientId {
        let id = ClientId(sim.client_count());
        sim.add_client(AbdClient::new(self.cfg, id))
    }
}

/// Per-operation phase of the atomic ABD client.
#[derive(Debug)]
enum AtomicPhase {
    Idle,
    WriteReadTs {
        round: QuorumRound<Timestamp>,
    },
    WriteStore {
        round: QuorumRound<()>,
    },
    ReadCollect {
        round: QuorumRound<(Timestamp, TaggedBlock)>,
    },
    ReadWriteBack {
        round: QuorumRound<()>,
        value: Value,
    },
}

/// Client automaton of **atomic** (linearizable) ABD: identical to
/// [`AbdClient`] except that a read performs a write-back round —
/// re-storing the maximal `(ts, replica)` it collected on a quorum —
/// before returning. This is the classical fix for the new/old read
/// inversion that plain regular ABD permits; the paper's Section 2 notes
/// regularity is strictly weaker than atomicity, and this client (with
/// `rsb_consistency::check_atomicity`) makes the gap testable.
///
/// The write-back relays blocks produced by the *observed write's* oracle,
/// so block source tags are preserved (readers never act as sources).
#[derive(Debug)]
pub struct AbdAtomicClient {
    cfg: RegisterConfig,
    me: ClientId,
    phase: AtomicPhase,
    value: Option<Value>,
    current_op: Option<OpId>,
}

impl AbdAtomicClient {
    /// Creates the automaton for client `me`.
    pub fn new(cfg: RegisterConfig, me: ClientId) -> Self {
        AbdAtomicClient {
            cfg,
            me,
            phase: AtomicPhase::Idle,
            value: None,
            current_op: None,
        }
    }

    fn broadcast(
        &self,
        eff: &mut Effects<AbdObject>,
        make: impl Fn() -> AbdRmw,
    ) -> Vec<(rsb_fpsm::RmwId, ObjectId)> {
        (0..self.cfg.n)
            .map(|i| (eff.trigger(ObjectId(i), make()), ObjectId(i)))
            .collect()
    }
}

impl ClientLogic for AbdAtomicClient {
    type State = AbdObject;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<AbdObject>) {
        self.current_op = Some(op);
        match req {
            OpRequest::Write(v) => {
                self.value = Some(v);
                let mut round = QuorumRound::new();
                for (id, obj) in self.broadcast(eff, || AbdRmw::ReadTs) {
                    round.expect(id, obj);
                }
                self.phase = AtomicPhase::WriteReadTs { round };
            }
            OpRequest::Read => {
                let mut round = QuorumRound::new();
                for (id, obj) in self.broadcast(eff, || AbdRmw::ReadValue) {
                    round.expect(id, obj);
                }
                self.phase = AtomicPhase::ReadCollect { round };
            }
        }
    }

    fn on_response(&mut self, op: OpId, rmw: RmwId, resp: AbdResp, eff: &mut Effects<AbdObject>) {
        if self.current_op != Some(op) {
            return;
        }
        let quorum = self.cfg.quorum();
        match &mut self.phase {
            AtomicPhase::Idle => {}
            AtomicPhase::WriteReadTs { round } => {
                let AbdResp::Ts(ts) = resp else { return };
                if !round.accept(rmw, ts) {
                    return;
                }
                if round.count() >= quorum {
                    let max = round
                        .responses()
                        .iter()
                        .map(|(_, ts)| *ts)
                        .max()
                        .expect("quorum is nonempty");
                    let ts = Timestamp::new(max.num + 1, self.me);
                    let v = self.value.take().expect("write holds a value");
                    let replica = TaggedBlock::new(op, Block::new(0, v.as_bytes().to_vec()));
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            AbdRmw::Store {
                                ts,
                                replica: replica.clone(),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = AtomicPhase::WriteStore { round };
                }
            }
            AtomicPhase::WriteStore { round } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= quorum {
                    self.phase = AtomicPhase::Idle;
                    self.current_op = None;
                    eff.complete(OpResult::Write);
                }
            }
            AtomicPhase::ReadCollect { round } => {
                let AbdResp::State { ts, replica } = resp else {
                    return;
                };
                if !round.accept(rmw, (ts, replica)) {
                    return;
                }
                if round.count() >= quorum {
                    let (_, (best_ts, best)) = round
                        .responses()
                        .iter()
                        .max_by_key(|(_, (ts, _))| *ts)
                        .expect("quorum is nonempty")
                        .clone();
                    let value = Value::from_bytes(best.block.data().to_vec());
                    // Write-back round: make the observed value as durable
                    // as a write before returning (relaying its blocks
                    // with the ORIGINAL source tag).
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            AbdRmw::Store {
                                ts: best_ts,
                                replica: best.clone(),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = AtomicPhase::ReadWriteBack { round, value };
                }
            }
            AtomicPhase::ReadWriteBack { round, value } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= quorum {
                    let value = value.clone();
                    self.phase = AtomicPhase::Idle;
                    self.current_op = None;
                    eff.complete(OpResult::Read(value));
                }
            }
        }
    }

    fn stored_blocks(&self) -> Vec<BlockInstance> {
        match &self.phase {
            AtomicPhase::ReadCollect { round } => round
                .responses()
                .iter()
                .map(|(_, (_, r))| r.instance())
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Factory for atomic (linearizable) ABD with reader write-back.
#[derive(Debug, Clone)]
pub struct AbdAtomic {
    cfg: RegisterConfig,
}

impl AbdAtomic {
    /// Creates the protocol; same requirements as [`Abd`].
    pub fn new(cfg: RegisterConfig) -> Self {
        AbdAtomic { cfg }
    }
}

impl RegisterProtocol for AbdAtomic {
    type Object = AbdObject;
    type Client = AbdAtomicClient;

    fn name(&self) -> &'static str {
        "abd-atomic"
    }

    fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn new_sim(&self) -> Simulation<AbdObject, AbdAtomicClient> {
        let v0 = self.cfg.initial_value();
        Simulation::new(self.cfg.n, move |_| {
            AbdObject::initial(TaggedBlock::new(
                INITIAL_OP,
                Block::new(0, v0.as_bytes().to_vec()),
            ))
        })
    }

    fn add_client(&self, sim: &mut Simulation<AbdObject, AbdAtomicClient>) -> ClientId {
        let id = ClientId(sim.client_count());
        sim.add_client(AbdAtomicClient::new(self.cfg, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_fpsm::{run_to_completion, run_until, RandomScheduler};

    fn proto(f: usize, len: usize) -> Abd {
        Abd::new(RegisterConfig::new(2 * f + 1, f, 1, len).unwrap())
    }

    #[test]
    fn write_read_roundtrip() {
        let p = proto(1, 40);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        let v = Value::seeded(3, 40);
        sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(v))
        );
    }

    #[test]
    fn storage_is_exactly_n_replicas_at_rest() {
        let p = proto(2, 100);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        sim.invoke(w, OpRequest::Write(Value::seeded(1, 100)))
            .unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        let mut fair = rsb_fpsm::FairScheduler::new();
        rsb_fpsm::run(&mut sim, &mut fair, 10_000);
        assert_eq!(sim.storage_cost().object_bits, 5 * 800);
    }

    #[test]
    fn concurrent_writers_settle_on_one_value() {
        let p = proto(1, 16);
        let mut sim = p.new_sim();
        let ws: Vec<_> = (0..3).map(|_| p.add_client(&mut sim)).collect();
        for (i, &w) in ws.iter().enumerate() {
            sim.invoke(w, OpRequest::Write(Value::seeded(i as u64, 16)))
                .unwrap();
        }
        let mut sched = RandomScheduler::new(11);
        assert!(run_until(&mut sim, &mut sched, 50_000, |s| s
            .history()
            .iter()
            .all(rsb_fpsm::OpRecord::is_complete)));
        let r = p.add_client(&mut sim);
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        let got = sim.history().last().unwrap().result.clone().unwrap();
        let got = got.read_value().unwrap().clone();
        assert!((0..3).map(|s| Value::seeded(s, 16)).any(|v| v == got));
    }

    #[test]
    fn tolerates_f_crashes() {
        let p = proto(2, 8); // n = 5
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        sim.crash_object(ObjectId(1));
        sim.crash_object(ObjectId(2));
        let v = Value::seeded(4, 8);
        sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        let r = p.add_client(&mut sim);
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(v))
        );
    }
}
