//! The paper's Section-5 algorithm: a strongly regular, FW-terminating
//! MWMR register combining erasure coding with adaptive fallback to
//! replication, with storage cost `O(min(f, c) · D)`.
//!
//! Each base object `boᵢ` holds three fields (Algorithm 1):
//!
//! * `Vp` — a set of timestamped code *pieces* (the `i`-th piece of each
//!   recent write), capped at `k` entries;
//! * `Vf` — at most one timestamped *full replica* (stored as `k` pieces),
//!   used when `Vp` is full — i.e. when concurrency exceeds `k`;
//! * `storedTS` — a timestamp watermark: updates below it are ignored and
//!   pieces below it are garbage-collectable.
//!
//! A write performs three rounds (Algorithm 2): read-timestamp, update,
//! and garbage-collect; a read repeatedly samples the objects until some
//! timestamp `≥ storedTS` has `k` decodable pieces (FW-termination: reads
//! are only required to return once writes stop).
//!
//! Deviations from the pseudocode, none affecting the proofs:
//!
//! * The write's first round uses a timestamp-only RMW (`ReadTs`) rather
//!   than the block-carrying `readValue`, since the write uses nothing but
//!   the maximal timestamp; this keeps in-flight channel bits (which the
//!   paper's Definition 2 charges) proportional to the Theorem-2 bound.
//! * The update RMW carries the object's own piece plus the `k` pieces
//!   forming a full replica (`WriteSet` restricted to what line 36/38 can
//!   store), not all `n` pieces.

use crate::common::{
    best_decodable, chunk_instances, Chunk, QuorumRound, RegisterConfig, TaggedBlock, Timestamp,
    INITIAL_OP,
};
use crate::protocol::RegisterProtocol;
use rsb_coding::{Block, Code, ReedSolomon};
use rsb_fpsm::{
    BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId, OpRequest,
    OpResult, Payload, RmwId, Simulation,
};

/// Base-object state: `⟨storedTS, Vp, Vf⟩` (Algorithm 1 line 8).
#[derive(Debug, Clone)]
pub struct AdaptiveObject {
    k: usize,
    stored_ts: Timestamp,
    vp: Vec<Chunk>,
    vf: Vec<Chunk>,
}

impl AdaptiveObject {
    /// The initial state of object `i`: `Vp = {⟨ts₀, piece i of v₀⟩}`.
    pub fn initial(k: usize, initial_piece: TaggedBlock) -> Self {
        AdaptiveObject {
            k,
            stored_ts: Timestamp::ZERO,
            vp: vec![Chunk::new(Timestamp::ZERO, initial_piece)],
            vf: Vec::new(),
        }
    }

    /// The `storedTS` watermark.
    pub fn stored_ts(&self) -> Timestamp {
        self.stored_ts
    }

    /// The piece set `Vp`.
    pub fn vp(&self) -> &[Chunk] {
        &self.vp
    }

    /// The full-replica set `Vf`.
    pub fn vf(&self) -> &[Chunk] {
        &self.vf
    }

    /// Total stored block bits in this object.
    pub fn stored_bits(&self) -> u64 {
        self.block_bits()
    }
}

/// RMWs of the adaptive algorithm.
#[derive(Debug, Clone)]
pub enum AdaptiveRmw {
    /// Write round 1: fetch the object's maximal known timestamp.
    ReadTs,
    /// Read round: fetch `storedTS` and all chunks (`Vp ∪ Vf`).
    ReadValue,
    /// Write round 2 (the `update` routine, lines 32–39).
    Update {
        /// The write's timestamp.
        ts: Timestamp,
        /// The `storedTS` the writer saw in round 1.
        seen_stored_ts: Timestamp,
        /// Piece `i` of the written value, for this object's `Vp`.
        piece: TaggedBlock,
        /// Pieces `0..k`, forming a full replica for `Vf` if needed.
        full: Vec<TaggedBlock>,
    },
    /// Write round 3 (the `GC` routine, lines 40–45).
    Gc {
        /// The write's timestamp.
        ts: Timestamp,
        /// Piece `i`, kept as the single remnant if `Vf` held the replica.
        piece: TaggedBlock,
    },
}

impl Payload for AdaptiveRmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            AdaptiveRmw::ReadTs | AdaptiveRmw::ReadValue => Vec::new(),
            AdaptiveRmw::Update { piece, full, .. } => {
                let mut v = vec![piece.instance()];
                v.extend(full.iter().map(TaggedBlock::instance));
                v
            }
            AdaptiveRmw::Gc { piece, .. } => vec![piece.instance()],
        }
    }
}

/// Responses of the adaptive algorithm's RMWs.
#[derive(Debug, Clone)]
pub enum AdaptiveResp {
    /// Ack for `Update`/`Gc`.
    Ack,
    /// Response to `ReadTs` — metadata only. Carries the object's
    /// `storedTS` and the maximal chunk timestamp separately: the former
    /// feeds the propagated watermark (Algorithm 2 line 9), the latter
    /// only the fresh-timestamp computation (line 6). Conflating them
    /// would let an incomplete write's timestamp become the watermark.
    Ts {
        /// The object's `storedTS` field.
        stored_ts: Timestamp,
        /// `max{ts | ⟨ts, ·⟩ ∈ Vp ∪ Vf}` (or `storedTS` if none).
        max_chunk_ts: Timestamp,
    },
    /// Response to `ReadValue`: watermark plus all chunks.
    State {
        /// The object's `storedTS`.
        stored_ts: Timestamp,
        /// `Vp ∪ Vf`.
        chunks: Vec<Chunk>,
    },
}

impl Payload for AdaptiveResp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            AdaptiveResp::Ack | AdaptiveResp::Ts { .. } => Vec::new(),
            AdaptiveResp::State { chunks, .. } => chunk_instances(chunks),
        }
    }
}

impl Payload for AdaptiveObject {
    fn blocks(&self) -> Vec<BlockInstance> {
        let mut v = chunk_instances(&self.vp);
        v.extend(chunk_instances(&self.vf));
        v
    }
}

impl ObjectState for AdaptiveObject {
    type Rmw = AdaptiveRmw;
    type Resp = AdaptiveResp;

    fn apply(&mut self, _client: ClientId, rmw: &AdaptiveRmw) -> AdaptiveResp {
        match rmw {
            AdaptiveRmw::ReadTs => {
                let mut max = self.stored_ts;
                for c in self.vp.iter().chain(self.vf.iter()) {
                    max = max.max(c.ts);
                }
                AdaptiveResp::Ts {
                    stored_ts: self.stored_ts,
                    max_chunk_ts: max,
                }
            }
            AdaptiveRmw::ReadValue => AdaptiveResp::State {
                stored_ts: self.stored_ts,
                chunks: self.vp.iter().chain(self.vf.iter()).cloned().collect(),
            },
            AdaptiveRmw::Update {
                ts,
                seen_stored_ts,
                piece,
                full,
            } => {
                // Line 33: stale updates are ignored entirely.
                if *ts > self.stored_ts {
                    if self.vp.len() < self.k {
                        // Line 36: drop pieces below the writer's watermark,
                        // then store this write's piece.
                        self.vp.retain(|c| c.ts >= *seen_stored_ts);
                        self.vp.push(Chunk::new(*ts, piece.clone()));
                    } else if self.vf.is_empty() || self.vf.iter().any(|c| c.ts < *ts) {
                        // Lines 37–38: fall back to a full replica.
                        self.vf = full.iter().map(|p| Chunk::new(*ts, p.clone())).collect();
                    }
                    // Line 39: propagate the watermark.
                    self.stored_ts = self.stored_ts.max(*seen_stored_ts);
                }
                AdaptiveResp::Ack
            }
            AdaptiveRmw::Gc { ts, piece } => {
                // Lines 41–42: drop everything older than the completed write.
                self.vp.retain(|c| c.ts >= *ts);
                self.vf.retain(|c| c.ts >= *ts);
                // Lines 43–44: shrink my full replica to a single piece.
                if self.vf.iter().any(|c| c.ts == *ts) {
                    self.vf = vec![Chunk::new(*ts, piece.clone())];
                }
                // Line 45.
                self.stored_ts = self.stored_ts.max(*ts);
                AdaptiveResp::Ack
            }
        }
    }
}

/// Per-operation client phase.
#[derive(Debug)]
enum Phase {
    Idle,
    /// Write round 1: collecting `(storedTS, max chunk ts)` pairs.
    WriteReadTs {
        round: QuorumRound<(Timestamp, Timestamp)>,
    },
    /// Write round 2: collecting update acks.
    WriteUpdate {
        round: QuorumRound<()>,
        ts: Timestamp,
    },
    /// Write round 3: collecting GC acks.
    WriteGc {
        round: QuorumRound<()>,
    },
    /// Read: collecting `State` responses, possibly over many rounds.
    Read {
        round: QuorumRound<(Timestamp, Vec<Chunk>)>,
    },
}

/// Client automaton of the adaptive algorithm (Algorithm 2).
#[derive(Debug)]
pub struct AdaptiveClient {
    cfg: RegisterConfig,
    code: ReedSolomon,
    me: ClientId,
    phase: Phase,
    /// The encoder-oracle output of the current write (`WriteSet`); free
    /// per the cost model (it is the writer's own oracle state).
    write_set: Vec<Block>,
    current_op: Option<OpId>,
}

impl AdaptiveClient {
    /// Creates the automaton for client `me`.
    pub fn new(cfg: RegisterConfig, me: ClientId) -> Self {
        let code = cfg.code().expect("validated config builds a code");
        AdaptiveClient {
            cfg,
            code,
            me,
            phase: Phase::Idle,
            write_set: Vec::new(),
            current_op: None,
        }
    }

    fn trigger_read_value(
        &self,
        eff: &mut Effects<AdaptiveObject>,
    ) -> QuorumRound<(Timestamp, Vec<Chunk>)> {
        let mut round = QuorumRound::new();
        for i in 0..self.cfg.n {
            let id = eff.trigger(ObjectId(i), AdaptiveRmw::ReadValue);
            round.expect(id, ObjectId(i));
        }
        round
    }
}

impl ClientLogic for AdaptiveClient {
    type State = AdaptiveObject;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<AdaptiveObject>) {
        self.current_op = Some(op);
        match req {
            OpRequest::Write(v) => {
                // Line 4: WriteSet ← encode(v).
                self.write_set = self.code.encode(&v);
                // Round 1 (line 5): read timestamps.
                let mut round = QuorumRound::new();
                for i in 0..self.cfg.n {
                    let id = eff.trigger(ObjectId(i), AdaptiveRmw::ReadTs);
                    round.expect(id, ObjectId(i));
                }
                self.phase = Phase::WriteReadTs { round };
            }
            OpRequest::Read => {
                // Line 17: first readValue round.
                let round = self.trigger_read_value(eff);
                self.phase = Phase::Read { round };
            }
        }
    }

    fn on_response(
        &mut self,
        op: OpId,
        rmw: RmwId,
        resp: AdaptiveResp,
        eff: &mut Effects<AdaptiveObject>,
    ) {
        if self.current_op != Some(op) {
            return; // straggler from a completed operation
        }
        match &mut self.phase {
            Phase::Idle => {}
            Phase::WriteReadTs { round } => {
                let AdaptiveResp::Ts {
                    stored_ts,
                    max_chunk_ts,
                } = resp
                else {
                    return;
                };
                if !round.accept(rmw, (stored_ts, max_chunk_ts)) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    // Line 6: the fresh timestamp dominates everything seen.
                    let max_any = round
                        .responses()
                        .iter()
                        .map(|(_, (st, mc))| (*st).max(*mc))
                        .max()
                        .expect("quorum is nonempty");
                    let ts = Timestamp::new(max_any.num + 1, self.me);
                    // Line 9: the watermark we propagate is the max
                    // *storedTS* only (completed-write knowledge).
                    let seen_stored_ts = round
                        .responses()
                        .iter()
                        .map(|(_, (st, _))| *st)
                        .max()
                        .expect("quorum is nonempty");
                    // Round 2 (lines 8–10): update all objects.
                    let full: Vec<TaggedBlock> = self.write_set[..self.cfg.k]
                        .iter()
                        .map(|b| TaggedBlock::new(op, b.clone()))
                        .collect();
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            AdaptiveRmw::Update {
                                ts,
                                seen_stored_ts,
                                piece: TaggedBlock::new(op, self.write_set[i].clone()),
                                full: full.clone(),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = Phase::WriteUpdate { round, ts };
                }
            }
            Phase::WriteUpdate { round, ts } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    let ts = *ts;
                    // Round 3 (lines 11–13): garbage collect.
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            AdaptiveRmw::Gc {
                                ts,
                                piece: TaggedBlock::new(op, self.write_set[i].clone()),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = Phase::WriteGc { round };
                }
            }
            Phase::WriteGc { round } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    // Line 14.
                    self.phase = Phase::Idle;
                    self.write_set.clear();
                    self.current_op = None;
                    eff.complete(OpResult::Write);
                }
            }
            Phase::Read { round } => {
                let AdaptiveResp::State { stored_ts, chunks } = resp else {
                    return;
                };
                if !round.accept(rmw, (stored_ts, chunks)) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    // Lines 18–21: look for a decodable timestamp at or
                    // above the quorum's watermark.
                    let min_ts = round
                        .responses()
                        .iter()
                        .map(|(_, (ts, _))| *ts)
                        .max()
                        .expect("quorum is nonempty");
                    let all: Vec<Chunk> = round
                        .responses()
                        .iter()
                        .flat_map(|(_, (_, chunks))| chunks.iter().cloned())
                        .collect();
                    if let Some((_, blocks)) = best_decodable(&all, min_ts, self.cfg.k) {
                        let value = self
                            .code
                            .decode(&blocks)
                            .expect("k distinct pieces of one write decode");
                        self.phase = Phase::Idle;
                        self.current_op = None;
                        eff.complete(OpResult::Read(value));
                    } else {
                        // Line 19: sample again.
                        let round = self.trigger_read_value(eff);
                        self.phase = Phase::Read { round };
                    }
                }
            }
        }
    }

    fn stored_blocks(&self) -> Vec<BlockInstance> {
        // A reader mid-round holds the chunks it has collected; those are
        // charged (the write set is the writer's own oracle and is free).
        match &self.phase {
            Phase::Read { round } => round
                .responses()
                .iter()
                .flat_map(|(_, (_, chunks))| chunk_instances(chunks))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Factory for the adaptive protocol: builds simulations and clients.
#[derive(Debug, Clone)]
pub struct Adaptive {
    cfg: RegisterConfig,
    initial_blocks: Vec<Block>,
}

impl Adaptive {
    /// Creates the protocol for a validated configuration.
    pub fn new(cfg: RegisterConfig) -> Self {
        let code = cfg.code().expect("validated config builds a code");
        let initial_blocks = code.encode(&cfg.initial_value());
        Adaptive {
            cfg,
            initial_blocks,
        }
    }
}

impl RegisterProtocol for Adaptive {
    type Object = AdaptiveObject;
    type Client = AdaptiveClient;

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn new_sim(&self) -> Simulation<AdaptiveObject, AdaptiveClient> {
        let k = self.cfg.k;
        let blocks = self.initial_blocks.clone();
        Simulation::new(self.cfg.n, move |obj: ObjectId| {
            AdaptiveObject::initial(k, TaggedBlock::new(INITIAL_OP, blocks[obj.0].clone()))
        })
    }

    fn add_client(&self, sim: &mut Simulation<AdaptiveObject, AdaptiveClient>) -> ClientId {
        let id = ClientId(sim.client_count());
        sim.add_client(AdaptiveClient::new(self.cfg, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_coding::Value;
    use rsb_fpsm::{run_to_completion, run_until, FairScheduler, RandomScheduler};

    fn proto(f: usize, k: usize, len: usize) -> Adaptive {
        Adaptive::new(RegisterConfig::paper(f, k, len).unwrap())
    }

    #[test]
    fn solo_write_then_read() {
        let p = proto(1, 2, 32);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        let v = Value::seeded(5, 32);
        sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(v))
        );
    }

    #[test]
    fn read_before_any_write_returns_v0() {
        let p = proto(2, 2, 16);
        let mut sim = p.new_sim();
        let r = p.add_client(&mut sim);
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history()[0].result,
            Some(OpResult::Read(Value::zeroed(16)))
        );
    }

    #[test]
    fn sequential_writes_read_latest() {
        let p = proto(1, 2, 24);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        for seed in 0..5 {
            sim.invoke(w, OpRequest::Write(Value::seeded(seed, 24)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 10_000));
        }
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(Value::seeded(4, 24)))
        );
    }

    #[test]
    fn survives_f_object_crashes() {
        let p = proto(2, 2, 16); // n = 6
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        sim.crash_object(ObjectId(0));
        sim.crash_object(ObjectId(3));
        let v = Value::seeded(9, 16);
        sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(v))
        );
    }

    #[test]
    fn concurrent_writers_under_random_schedules() {
        for seed in 0..5u64 {
            let p = proto(1, 3, 20); // n = 5, k = 3
            let mut sim = p.new_sim();
            let writers: Vec<_> = (0..3).map(|_| p.add_client(&mut sim)).collect();
            for (i, &w) in writers.iter().enumerate() {
                sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, 20)))
                    .unwrap();
            }
            let mut sched = RandomScheduler::new(seed);
            assert!(
                run_until(&mut sim, &mut sched, 100_000, |s| s
                    .history()
                    .iter()
                    .all(rsb_fpsm::OpRecord::is_complete)),
                "writes did not finish, seed {seed}"
            );
            // A subsequent read returns one of the written values.
            let r = p.add_client(&mut sim);
            sim.invoke(r, OpRequest::Read).unwrap();
            assert!(run_to_completion(&mut sim, 100_000));
            let got = sim.history().last().unwrap().result.clone().unwrap();
            let got = got.read_value().unwrap().clone();
            assert!(
                (1..=3).map(|s| Value::seeded(s, 20)).any(|v| v == got),
                "read returned an unwritten value"
            );
        }
    }

    #[test]
    fn storage_shrinks_after_quiescence_to_n_pieces() {
        // Lemma 8: finite writes, all complete ⇒ storage = (2f+k)·D/k.
        let p = proto(2, 2, 64); // n = 6, piece = 32 B = 256 bits
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        for seed in 0..4 {
            sim.invoke(w, OpRequest::Write(Value::seeded(seed, 64)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 10_000));
        }
        // Drain stragglers so every triggered RMW lands.
        let mut fair = FairScheduler::new();
        rsb_fpsm::run(&mut sim, &mut fair, 100_000);
        let cost = sim.storage_cost();
        let expected = (p.config().n as u64) * p.config().data_bits() / p.config().k as u64;
        assert_eq!(cost.object_bits, expected);
        assert_eq!(cost.total(), expected);
    }

    #[test]
    fn vp_capacity_respected_and_vf_fallback_engages() {
        // k = 2, so a third concurrent writer must fall back to Vf.
        let p = proto(1, 2, 16); // n = 4
        let mut sim = p.new_sim();
        let writers: Vec<_> = (0..4).map(|_| p.add_client(&mut sim)).collect();
        for (i, &w) in writers.iter().enumerate() {
            sim.invoke(w, OpRequest::Write(Value::seeded(i as u64, 16)))
                .unwrap();
        }
        let mut sched = RandomScheduler::new(7);
        assert!(run_until(&mut sim, &mut sched, 100_000, |s| s
            .history()
            .iter()
            .all(rsb_fpsm::OpRecord::is_complete)));
        for i in 0..4 {
            let st = sim.object_state(ObjectId(i));
            assert!(st.vp().len() <= 2, "Vp exceeded k at bo{i}");
            // Vf holds at most one replica's worth of pieces.
            assert!(st.vf().len() <= 2, "Vf exceeded k pieces at bo{i}");
        }
    }
}
