//! A pure erasure-coded register with no replication fallback — the
//! `O(c·D)` baseline.
//!
//! This protocol mirrors the behaviour of the asynchronous code-based
//! algorithms the paper surveys ([5, 6, 8, 9]): base objects accumulate one
//! piece per concurrent write (garbage-collected only once a newer write is
//! known complete), so the storage grows linearly with the concurrency
//! level — exactly the effect the lower bound says is unavoidable unless
//! you pay `f + 1` full replicas instead.
//!
//! Structurally it is the adaptive algorithm of Section 5 with `Vf`
//! removed and the `|Vp| < k` capacity check dropped; reads are
//! FW-terminating (they may loop while new writes keep landing).

use crate::common::{
    best_decodable, chunk_instances, Chunk, QuorumRound, RegisterConfig, TaggedBlock, Timestamp,
    INITIAL_OP,
};
use crate::protocol::RegisterProtocol;
use rsb_coding::{Block, Code, ReedSolomon};
use rsb_fpsm::{
    BlockInstance, ClientId, ClientLogic, Effects, ObjectId, ObjectState, OpId, OpRequest,
    OpResult, Payload, RmwId, Simulation,
};

/// Base-object state: watermark plus an unbounded piece set.
#[derive(Debug, Clone)]
pub struct CodedObject {
    stored_ts: Timestamp,
    vp: Vec<Chunk>,
}

impl CodedObject {
    /// Initial state: piece `i` of `v₀`.
    pub fn initial(piece: TaggedBlock) -> Self {
        CodedObject {
            stored_ts: Timestamp::ZERO,
            vp: vec![Chunk::new(Timestamp::ZERO, piece)],
        }
    }

    /// The watermark.
    pub fn stored_ts(&self) -> Timestamp {
        self.stored_ts
    }

    /// The piece set.
    pub fn vp(&self) -> &[Chunk] {
        &self.vp
    }
}

/// RMWs of the pure-coded protocol.
#[derive(Debug, Clone)]
pub enum CodedRmw {
    /// Write round 1: fetch timestamps (metadata only).
    ReadTs,
    /// Read round: fetch watermark and pieces.
    ReadValue,
    /// Write round 2: store a piece, dropping pieces below the writer's
    /// watermark.
    Store {
        /// The write's timestamp.
        ts: Timestamp,
        /// The watermark seen in round 1.
        seen_stored_ts: Timestamp,
        /// Piece `i`.
        piece: TaggedBlock,
    },
    /// Write round 3: garbage-collect below the completed write.
    Gc {
        /// The write's timestamp.
        ts: Timestamp,
    },
}

impl Payload for CodedRmw {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            CodedRmw::ReadTs | CodedRmw::ReadValue | CodedRmw::Gc { .. } => Vec::new(),
            CodedRmw::Store { piece, .. } => vec![piece.instance()],
        }
    }
}

/// Responses of the pure-coded protocol.
#[derive(Debug, Clone)]
pub enum CodedResp {
    /// Ack for `Store`/`Gc`.
    Ack,
    /// Watermark and maximal chunk timestamp (metadata only).
    Ts {
        /// The object's watermark.
        stored_ts: Timestamp,
        /// The maximal piece timestamp.
        max_chunk_ts: Timestamp,
    },
    /// Watermark plus pieces.
    State {
        /// The object's watermark.
        stored_ts: Timestamp,
        /// All stored pieces.
        chunks: Vec<Chunk>,
    },
}

impl Payload for CodedResp {
    fn blocks(&self) -> Vec<BlockInstance> {
        match self {
            CodedResp::Ack | CodedResp::Ts { .. } => Vec::new(),
            CodedResp::State { chunks, .. } => chunk_instances(chunks),
        }
    }
}

impl Payload for CodedObject {
    fn blocks(&self) -> Vec<BlockInstance> {
        chunk_instances(&self.vp)
    }
}

impl ObjectState for CodedObject {
    type Rmw = CodedRmw;
    type Resp = CodedResp;

    fn apply(&mut self, _client: ClientId, rmw: &CodedRmw) -> CodedResp {
        match rmw {
            CodedRmw::ReadTs => {
                let max = self
                    .vp
                    .iter()
                    .map(|c| c.ts)
                    .max()
                    .unwrap_or(self.stored_ts)
                    .max(self.stored_ts);
                CodedResp::Ts {
                    stored_ts: self.stored_ts,
                    max_chunk_ts: max,
                }
            }
            CodedRmw::ReadValue => CodedResp::State {
                stored_ts: self.stored_ts,
                chunks: self.vp.clone(),
            },
            CodedRmw::Store {
                ts,
                seen_stored_ts,
                piece,
            } => {
                if *ts > self.stored_ts {
                    // Drop pieces the writer knows are superseded, then
                    // append — with NO capacity bound: one piece per
                    // concurrent write survives.
                    self.vp.retain(|c| c.ts >= *seen_stored_ts);
                    self.vp.push(Chunk::new(*ts, piece.clone()));
                    self.stored_ts = self.stored_ts.max(*seen_stored_ts);
                }
                CodedResp::Ack
            }
            CodedRmw::Gc { ts } => {
                self.vp.retain(|c| c.ts >= *ts);
                self.stored_ts = self.stored_ts.max(*ts);
                CodedResp::Ack
            }
        }
    }
}

/// Per-operation phase of the pure-coded client.
#[derive(Debug)]
enum Phase {
    Idle,
    WriteReadTs {
        round: QuorumRound<(Timestamp, Timestamp)>,
    },
    WriteStore {
        round: QuorumRound<()>,
        ts: Timestamp,
    },
    WriteGc {
        round: QuorumRound<()>,
    },
    Read {
        round: QuorumRound<(Timestamp, Vec<Chunk>)>,
    },
}

/// Client automaton of the pure-coded protocol.
#[derive(Debug)]
pub struct CodedClient {
    cfg: RegisterConfig,
    code: ReedSolomon,
    me: ClientId,
    phase: Phase,
    write_set: Vec<Block>,
    current_op: Option<OpId>,
}

impl CodedClient {
    /// Creates the automaton for client `me`.
    pub fn new(cfg: RegisterConfig, me: ClientId) -> Self {
        let code = cfg.code().expect("validated config builds a code");
        CodedClient {
            cfg,
            code,
            me,
            phase: Phase::Idle,
            write_set: Vec::new(),
            current_op: None,
        }
    }

    fn trigger_read_value(
        &self,
        eff: &mut Effects<CodedObject>,
    ) -> QuorumRound<(Timestamp, Vec<Chunk>)> {
        let mut round = QuorumRound::new();
        for i in 0..self.cfg.n {
            let id = eff.trigger(ObjectId(i), CodedRmw::ReadValue);
            round.expect(id, ObjectId(i));
        }
        round
    }
}

impl ClientLogic for CodedClient {
    type State = CodedObject;

    fn on_invoke(&mut self, op: OpId, req: OpRequest, eff: &mut Effects<CodedObject>) {
        self.current_op = Some(op);
        match req {
            OpRequest::Write(v) => {
                self.write_set = self.code.encode(&v);
                let mut round = QuorumRound::new();
                for i in 0..self.cfg.n {
                    let id = eff.trigger(ObjectId(i), CodedRmw::ReadTs);
                    round.expect(id, ObjectId(i));
                }
                self.phase = Phase::WriteReadTs { round };
            }
            OpRequest::Read => {
                let round = self.trigger_read_value(eff);
                self.phase = Phase::Read { round };
            }
        }
    }

    fn on_response(
        &mut self,
        op: OpId,
        rmw: RmwId,
        resp: CodedResp,
        eff: &mut Effects<CodedObject>,
    ) {
        if self.current_op != Some(op) {
            return;
        }
        match &mut self.phase {
            Phase::Idle => {}
            Phase::WriteReadTs { round } => {
                let CodedResp::Ts {
                    stored_ts,
                    max_chunk_ts,
                } = resp
                else {
                    return;
                };
                if !round.accept(rmw, (stored_ts, max_chunk_ts)) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    let max_any = round
                        .responses()
                        .iter()
                        .map(|(_, (st, mc))| (*st).max(*mc))
                        .max()
                        .expect("quorum is nonempty");
                    let ts = Timestamp::new(max_any.num + 1, self.me);
                    let seen_stored_ts = round
                        .responses()
                        .iter()
                        .map(|(_, (st, _))| *st)
                        .max()
                        .expect("quorum is nonempty");
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(
                            ObjectId(i),
                            CodedRmw::Store {
                                ts,
                                seen_stored_ts,
                                piece: TaggedBlock::new(op, self.write_set[i].clone()),
                            },
                        );
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = Phase::WriteStore { round, ts };
                }
            }
            Phase::WriteStore { round, ts } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    let ts = *ts;
                    let mut round = QuorumRound::new();
                    for i in 0..self.cfg.n {
                        let id = eff.trigger(ObjectId(i), CodedRmw::Gc { ts });
                        round.expect(id, ObjectId(i));
                    }
                    self.phase = Phase::WriteGc { round };
                }
            }
            Phase::WriteGc { round } => {
                if !round.accept(rmw, ()) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    self.phase = Phase::Idle;
                    self.write_set.clear();
                    self.current_op = None;
                    eff.complete(OpResult::Write);
                }
            }
            Phase::Read { round } => {
                let CodedResp::State { stored_ts, chunks } = resp else {
                    return;
                };
                if !round.accept(rmw, (stored_ts, chunks)) {
                    return;
                }
                if round.count() >= self.cfg.quorum() {
                    let min_ts = round
                        .responses()
                        .iter()
                        .map(|(_, (ts, _))| *ts)
                        .max()
                        .expect("quorum is nonempty");
                    let all: Vec<Chunk> = round
                        .responses()
                        .iter()
                        .flat_map(|(_, (_, chunks))| chunks.iter().cloned())
                        .collect();
                    if let Some((_, blocks)) = best_decodable(&all, min_ts, self.cfg.k) {
                        let value = self
                            .code
                            .decode(&blocks)
                            .expect("k distinct pieces of one write decode");
                        self.phase = Phase::Idle;
                        self.current_op = None;
                        eff.complete(OpResult::Read(value));
                    } else {
                        let round = self.trigger_read_value(eff);
                        self.phase = Phase::Read { round };
                    }
                }
            }
        }
    }

    fn stored_blocks(&self) -> Vec<BlockInstance> {
        match &self.phase {
            Phase::Read { round } => round
                .responses()
                .iter()
                .flat_map(|(_, (_, chunks))| chunk_instances(chunks))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// Factory for the pure-coded protocol.
#[derive(Debug, Clone)]
pub struct Coded {
    cfg: RegisterConfig,
    initial_blocks: Vec<Block>,
}

impl Coded {
    /// Creates the protocol for a validated configuration.
    pub fn new(cfg: RegisterConfig) -> Self {
        let code = cfg.code().expect("validated config builds a code");
        let initial_blocks = code.encode(&cfg.initial_value());
        Coded {
            cfg,
            initial_blocks,
        }
    }
}

impl RegisterProtocol for Coded {
    type Object = CodedObject;
    type Client = CodedClient;

    fn name(&self) -> &'static str {
        "coded"
    }

    fn config(&self) -> &RegisterConfig {
        &self.cfg
    }

    fn new_sim(&self) -> Simulation<CodedObject, CodedClient> {
        let blocks = self.initial_blocks.clone();
        Simulation::new(self.cfg.n, move |obj: ObjectId| {
            CodedObject::initial(TaggedBlock::new(INITIAL_OP, blocks[obj.0].clone()))
        })
    }

    fn add_client(&self, sim: &mut Simulation<CodedObject, CodedClient>) -> ClientId {
        let id = ClientId(sim.client_count());
        sim.add_client(CodedClient::new(self.cfg, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsb_coding::Value;
    use rsb_fpsm::{run_to_completion, run_until, RandomScheduler};

    fn proto(f: usize, k: usize, len: usize) -> Coded {
        Coded::new(RegisterConfig::paper(f, k, len).unwrap())
    }

    #[test]
    fn write_read_roundtrip() {
        let p = proto(1, 2, 32);
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        let r = p.add_client(&mut sim);
        let v = Value::seeded(2, 32);
        sim.invoke(w, OpRequest::Write(v.clone())).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        sim.invoke(r, OpRequest::Read).unwrap();
        assert!(run_to_completion(&mut sim, 10_000));
        assert_eq!(
            sim.history().last().unwrap().result,
            Some(OpResult::Read(v))
        );
    }

    #[test]
    fn object_piece_count_grows_with_concurrency() {
        // c concurrent writers stuck after their Store applies leave c + 1
        // pieces (theirs + the initial value's) on touched objects.
        let c = 4;
        let p = proto(2, 3, 30); // n = 7
        let mut sim = p.new_sim();
        let ws: Vec<_> = (0..c).map(|_| p.add_client(&mut sim)).collect();
        for (i, &w) in ws.iter().enumerate() {
            sim.invoke(w, OpRequest::Write(Value::seeded(i as u64, 30)))
                .unwrap();
        }
        // Run everything EXCEPT GC applies: stop each writer after its
        // Store quorum but before its Gc RMWs apply. Simplest adversarial
        // proxy: run fair until all Stores applied, then inspect peak.
        let mut sched = RandomScheduler::new(5);
        run_until(&mut sim, &mut sched, 200_000, |s| {
            s.history().iter().all(rsb_fpsm::OpRecord::is_complete)
        });
        // After completion + GC the steady state shrinks again, but the
        // PEAK object storage must have exceeded c/2 pieces per object on
        // average — the concurrency cost.
        let piece_bits = 8 * 10; // 30 B value, k = 3 → 10 B pieces
        assert!(
            sim.peak_storage_cost().object_bits > (p.config().n as u64) * piece_bits,
            "peak {} did not exceed one piece per object",
            sim.peak_storage_cost().object_bits
        );
    }

    #[test]
    fn concurrent_writers_complete_and_read_sees_one() {
        for seed in 0..4u64 {
            let p = proto(1, 2, 24);
            let mut sim = p.new_sim();
            let ws: Vec<_> = (0..3).map(|_| p.add_client(&mut sim)).collect();
            for (i, &w) in ws.iter().enumerate() {
                sim.invoke(w, OpRequest::Write(Value::seeded(i as u64 + 1, 24)))
                    .unwrap();
            }
            let mut sched = RandomScheduler::new(seed);
            assert!(run_until(&mut sim, &mut sched, 200_000, |s| s
                .history()
                .iter()
                .all(rsb_fpsm::OpRecord::is_complete)));
            let r = p.add_client(&mut sim);
            sim.invoke(r, OpRequest::Read).unwrap();
            assert!(run_to_completion(&mut sim, 200_000));
            let got = sim.history().last().unwrap().result.clone().unwrap();
            let got = got.read_value().unwrap().clone();
            assert!((1..=3).map(|s| Value::seeded(s, 24)).any(|v| v == got));
        }
    }

    #[test]
    fn gc_restores_minimum_after_quiescence() {
        let p = proto(1, 2, 16); // n = 4, piece 8 B = 64 bits
        let mut sim = p.new_sim();
        let w = p.add_client(&mut sim);
        for seed in 0..3 {
            sim.invoke(w, OpRequest::Write(Value::seeded(seed, 16)))
                .unwrap();
            assert!(run_to_completion(&mut sim, 10_000));
        }
        let mut fair = rsb_fpsm::FairScheduler::new();
        rsb_fpsm::run(&mut sim, &mut fair, 10_000);
        assert_eq!(sim.storage_cost().object_bits, 4 * 64);
    }
}
