//! A uniform handle over the four register emulations, so experiments and
//! benchmarks can be written once and run against every protocol.

use crate::common::RegisterConfig;
use rsb_fpsm::{ClientId, ClientLogic, ObjectState, Simulation};

/// A register emulation: a way to build the base objects and clients of
/// one protocol over the shared-memory substrate.
pub trait RegisterProtocol {
    /// The protocol's base-object state.
    type Object: ObjectState;
    /// The protocol's client automaton.
    type Client: ClientLogic<State = Self::Object>;

    /// Short stable name for reports (e.g. `"adaptive"`).
    fn name(&self) -> &'static str;

    /// The configuration this instance was built with.
    fn config(&self) -> &RegisterConfig;

    /// Creates a fresh simulation with the `n` initialized base objects.
    fn new_sim(&self) -> Simulation<Self::Object, Self::Client>;

    /// Adds one client to the simulation, returning its id.
    fn add_client(&self, sim: &mut Simulation<Self::Object, Self::Client>) -> ClientId;
}
