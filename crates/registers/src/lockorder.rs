//! Runtime lock-hierarchy enforcement — the dynamic twin of
//! `rsb-audit`'s static `lock-order` rule.
//!
//! Every guarded structure in the store stack acquires its lock through
//! [`tracked_lock`] (or [`tracked_try`]), naming its level in the
//! hierarchy declared in the repo-root `audit.toml`. Under
//! `debug_assertions` or the `mc` feature, a per-thread held-level set
//! is maintained and an acquisition that does not *strictly increase*
//! the held rank panics immediately — turning a would-be deadlock (or a
//! latent inversion that only deadlocks under contention) into a loud,
//! deterministic failure in tests and model-check runs. In release
//! builds the checker compiles to nothing: [`HeldLock`] is a zero-sized
//! no-op and [`Tracked`] is a transparent newtype around the guard.
//!
//! The rank table below mirrors `audit.toml` — `rsb-audit`'s test suite
//! cross-checks the two so they cannot drift apart.

#[cfg(any(debug_assertions, feature = "mc"))]
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// The declared lock levels, mirroring `[[lock_order.level]]` entries in
/// `audit.toml`. Acquisitions must be nested in strictly increasing
/// rank.
pub mod ranks {
    /// `Shard.map`: key-name placement map.
    pub const SHARD_MAP: i64 = 0;
    /// `Shard.govern_lock`: governor sweep serialization.
    pub const GOVERN: i64 = 10;
    /// `DriverCore.core_state`: a driver's guarded state.
    pub const DRIVER_CORE: i64 = 15;
    /// `Shard.slots`: the append-only slot table.
    pub const SLOT_TABLE: i64 = 20;
    /// `KeySlot.state`: per-key simulation state.
    pub const KEY_STATE: i64 = 30;
    /// tcp client: dead-connection set.
    pub const NET_DEAD: i64 = 32;
    /// tcp client: in-flight op table.
    pub const NET_PENDING: i64 = 34;
    /// tcp client: write half of the socket.
    pub const NET_WRITER: i64 = 36;
    /// `CompletionSlot.inner` / `NetCell.inner`: one-shot completions.
    pub const COMPLETION: i64 = 40;
    /// `WorkGroup.mu`: park/notify mutex.
    pub const WORKGROUP: i64 = 50;
    /// `ReadyQueue.ready`: the scheduling queue.
    pub const READY_QUEUE: i64 = 60;
    /// `Store.drivers`: driver join handles.
    pub const DRIVER_POOL: i64 = 70;
    /// net server: live connection map.
    pub const CONN_TABLE: i64 = 72;
    /// net server: per-connection join handles.
    pub const CONN_HANDLES: i64 = 74;
    /// net server: acceptor join handle.
    pub const ACCEPT_HANDLE: i64 = 76;
    /// tcp client: read half of the socket.
    pub const NET_READER: i64 = 78;
}

/// The full `(rank, name)` table, in rank order — what the audit-crate
/// cross-check test compares against `audit.toml`.
#[must_use]
pub fn rank_table() -> &'static [(i64, &'static str)] {
    &[
        (ranks::SHARD_MAP, "shard_map"),
        (ranks::GOVERN, "govern"),
        (ranks::DRIVER_CORE, "driver_core"),
        (ranks::SLOT_TABLE, "slot_table"),
        (ranks::KEY_STATE, "key_state"),
        (ranks::NET_DEAD, "net_dead"),
        (ranks::NET_PENDING, "net_pending"),
        (ranks::NET_WRITER, "net_writer"),
        (ranks::COMPLETION, "completion"),
        (ranks::WORKGROUP, "workgroup"),
        (ranks::READY_QUEUE, "ready_queue"),
        (ranks::DRIVER_POOL, "driver_pool"),
        (ranks::CONN_TABLE, "conn_table"),
        (ranks::CONN_HANDLES, "conn_handles"),
        (ranks::ACCEPT_HANDLE, "accept_handle"),
        (ranks::NET_READER, "net_reader"),
    ]
}

#[cfg(any(debug_assertions, feature = "mc"))]
thread_local! {
    /// The calling thread's live acquisitions, in acquisition order.
    static HELD: RefCell<Vec<(i64, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// RAII record of one acquisition in the per-thread held set.
///
/// Acquire it *before* blocking on the underlying lock — a violation
/// then panics instead of deadlocking. Zero-sized and inert without
/// `debug_assertions` / `mc`.
#[derive(Debug)]
pub struct HeldLock {
    #[cfg(any(debug_assertions, feature = "mc"))]
    rank: i64,
}

impl HeldLock {
    /// Records an acquisition at `rank`.
    ///
    /// # Panics
    ///
    /// Panics (checked builds only) when `rank` does not strictly exceed
    /// every rank the current thread already holds — the same condition
    /// the static `lock-order` rule reports.
    #[inline]
    #[must_use]
    pub fn acquire(rank: i64, name: &'static str) -> HeldLock {
        #[cfg(not(any(debug_assertions, feature = "mc")))]
        {
            let _ = (rank, name);
            HeldLock {}
        }
        #[cfg(any(debug_assertions, feature = "mc"))]
        {
            // try_with: thread teardown may run guards after the TLS
            // slot is gone; the checker just stands down then.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(&(top_rank, top_name)) = held.iter().max_by_key(|&&(r, _)| r) {
                    assert!(
                        rank > top_rank,
                        "lock-order violation: acquiring `{name}` (level {rank}) \
                         while holding `{top_name}` (level {top_rank}) — \
                         levels must strictly increase; see audit.toml"
                    );
                }
                held.push((rank, name));
            });
            HeldLock { rank }
        }
    }
}

impl Drop for HeldLock {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "mc"))]
        {
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(r, _)| r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }
}

/// A lock guard paired with its [`HeldLock`] record. Dereferences to the
/// guarded data; the record is released when the guard drops.
#[derive(Debug)]
pub struct Tracked<G> {
    // Declaration order matters: the inner guard must drop (releasing
    // the lock) before the held-set record is removed.
    guard: G,
    _held: HeldLock,
}

impl<G> Tracked<G> {
    /// The raw inner guard — for condvar waits, which need the native
    /// guard type. The held-set record stays live across the wait; that
    /// is sound because the set is per-thread and a parked thread
    /// acquires nothing.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut G {
        &mut self.guard
    }
}

impl<G: Deref> Deref for Tracked<G> {
    type Target = G::Target;

    #[inline]
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Tracked<G> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

/// Acquires a lock through the hierarchy checker: records the level
/// (panicking on a violation in checked builds), then runs `acquire` to
/// take the real lock. Generic over the guard type, so it wraps
/// `parking_lot`, `std`, and `rsb-mcsync` guards alike.
#[inline]
pub fn tracked_lock<G>(rank: i64, name: &'static str, acquire: impl FnOnce() -> G) -> Tracked<G> {
    let held = HeldLock::acquire(rank, name);
    Tracked {
        guard: acquire(),
        _held: held,
    }
}

/// [`tracked_lock`] for fallible acquisitions (`try_lock`): the level is
/// checked up front — a try-acquisition that would invert the hierarchy
/// is a discipline bug even though it cannot deadlock — and the record
/// is dropped again if the lock was not taken.
#[inline]
pub fn tracked_try<G>(
    rank: i64,
    name: &'static str,
    acquire: impl FnOnce() -> Option<G>,
) -> Option<Tracked<G>> {
    let held = HeldLock::acquire(rank, name);
    acquire().map(|guard| Tracked { guard, _held: held })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_ranks_are_fine() {
        let a = HeldLock::acquire(ranks::SHARD_MAP, "shard_map");
        let b = HeldLock::acquire(ranks::SLOT_TABLE, "slot_table");
        let c = HeldLock::acquire(ranks::KEY_STATE, "key_state");
        drop(c);
        drop(b);
        drop(a);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn inverted_acquisition_panics() {
        let _state = HeldLock::acquire(ranks::KEY_STATE, "key_state");
        let _map = HeldLock::acquire(ranks::SHARD_MAP, "shard_map");
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn equal_rank_reacquisition_panics() {
        let _a = HeldLock::acquire(ranks::KEY_STATE, "key_state");
        let _b = HeldLock::acquire(ranks::KEY_STATE, "key_state");
    }

    #[test]
    fn release_unwinds_the_held_set() {
        let state = HeldLock::acquire(ranks::KEY_STATE, "key_state");
        drop(state);
        // With the higher level released, the lower level is legal again.
        let _map = HeldLock::acquire(ranks::SHARD_MAP, "shard_map");
    }

    #[test]
    fn tracked_lock_derefs_and_releases() {
        let mu = parking_lot::Mutex::new(7u32);
        {
            let mut g = tracked_lock(ranks::KEY_STATE, "key_state", || mu.lock());
            *g += 1;
            assert_eq!(*g, 8);
        }
        let _map = HeldLock::acquire(ranks::SHARD_MAP, "shard_map");
        assert_eq!(*mu.lock(), 8);
    }

    #[test]
    fn tracked_try_releases_on_miss() {
        let mu = parking_lot::Mutex::new(());
        let outer = mu.lock();
        assert!(tracked_try(ranks::KEY_STATE, "key_state", || mu.try_lock()).is_none());
        drop(outer);
        // The failed try left nothing in the held set.
        let _map = HeldLock::acquire(ranks::SHARD_MAP, "shard_map");
    }

    #[test]
    fn threads_have_independent_held_sets() {
        let _state = HeldLock::acquire(ranks::KEY_STATE, "key_state");
        std::thread::spawn(|| {
            let _map = HeldLock::acquire(ranks::SHARD_MAP, "shard_map");
        })
        .join()
        .expect("spawned thread must not see this thread's held set");
    }

    #[test]
    fn rank_table_is_strictly_increasing() {
        for pair in rank_table().windows(2) {
            assert!(pair[0].0 < pair[1].0, "{pair:?}");
        }
    }
}
