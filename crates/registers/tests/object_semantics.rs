//! Line-level conformance tests of the base-object RMW semantics against
//! the paper's pseudocode (Algorithms 1–5), applied directly to object
//! states without a simulation in between.

use rsb_coding::{Block, Code, Value};
use rsb_fpsm::{ClientId, ObjectState, OpId};
use rsb_registers::abd::{AbdObject, AbdResp, AbdRmw};
use rsb_registers::adaptive::{AdaptiveObject, AdaptiveResp, AdaptiveRmw};
use rsb_registers::safe::{SafeObject, SafeResp, SafeRmw};
use rsb_registers::{RegisterConfig, TaggedBlock, Timestamp, INITIAL_OP};

fn ts(num: u64, client: u64) -> Timestamp {
    Timestamp { num, client }
}

fn piece(op: u64, index: u32, bytes: usize) -> TaggedBlock {
    TaggedBlock::new(OpId(op), Block::new(index, vec![op as u8; bytes]))
}

fn full(op: u64, k: usize, bytes: usize) -> Vec<TaggedBlock> {
    (0..k as u32).map(|i| piece(op, i, bytes)).collect()
}

const C: ClientId = ClientId(0);

/// Algorithm 3 line 33: updates with `ts ≤ storedTS` are ignored entirely.
#[test]
fn adaptive_stale_update_is_noop() {
    let mut bo = AdaptiveObject::initial(2, piece(u64::MAX, 0, 8));
    // Raise the watermark via GC.
    bo.apply(
        C,
        &AdaptiveRmw::Gc {
            ts: ts(5, 1),
            piece: piece(1, 0, 8),
        },
    );
    assert_eq!(bo.stored_ts(), ts(5, 1));
    let before_vp = bo.vp().to_vec();
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(5, 0), // ≤ storedTS (client 0 < client 1)
            seen_stored_ts: ts(0, 0),
            piece: piece(2, 0, 8),
            full: full(2, 2, 8),
        },
    );
    assert_eq!(bo.vp(), &before_vp[..], "stale update must not store");
    assert_eq!(
        bo.stored_ts(),
        ts(5, 1),
        "stale update must not move storedTS"
    );
}

/// Algorithm 3 line 36: below capacity, the piece lands in Vp and pieces
/// below the writer's watermark are pruned.
#[test]
fn adaptive_update_prunes_and_stores_in_vp() {
    let mut bo = AdaptiveObject::initial(3, piece(u64::MAX, 0, 8));
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(1, 1),
            seen_stored_ts: ts(0, 0),
            piece: piece(1, 0, 8),
            full: full(1, 3, 8),
        },
    );
    assert_eq!(bo.vp().len(), 2); // v₀'s piece + the new one
                                  // A newer write knows ts(1,1) completed: its update prunes v₀ & w1? No
                                  // — only pieces strictly below the watermark ts(1,1): v₀'s ⟨0,0⟩ goes,
                                  // w1's ⟨1,1⟩ stays.
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(2, 2),
            seen_stored_ts: ts(1, 1),
            piece: piece(2, 0, 8),
            full: full(2, 3, 8),
        },
    );
    let tss: Vec<Timestamp> = bo.vp().iter().map(|c| c.ts).collect();
    assert_eq!(tss, vec![ts(1, 1), ts(2, 2)]);
    assert_eq!(bo.stored_ts(), ts(1, 1), "line 39: watermark = seen");
    assert!(bo.vf().is_empty());
}

/// Algorithm 3 lines 37–38: at capacity the full replica goes to Vf, and
/// only a newer write may replace it.
#[test]
fn adaptive_vf_fallback_and_replacement() {
    let mut bo = AdaptiveObject::initial(1, piece(u64::MAX, 0, 8)); // k = 1: Vp full
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(1, 1),
            seen_stored_ts: ts(0, 0),
            piece: piece(1, 0, 8),
            full: full(1, 1, 8),
        },
    );
    assert_eq!(bo.vf().len(), 1);
    assert_eq!(bo.vf()[0].ts, ts(1, 1));
    // An older concurrent write must NOT replace the newer replica.
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(1, 0),
            seen_stored_ts: ts(0, 0),
            piece: piece(2, 0, 8),
            full: full(2, 1, 8),
        },
    );
    assert_eq!(bo.vf()[0].ts, ts(1, 1), "older write must not evict Vf");
    // A newer one does.
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(2, 0),
            seen_stored_ts: ts(0, 0),
            piece: piece(3, 0, 8),
            full: full(3, 1, 8),
        },
    );
    assert_eq!(bo.vf()[0].ts, ts(2, 0));
}

/// Algorithm 3 lines 40–45: GC prunes both sets, shrinks my replica to a
/// single piece, and advances the watermark.
#[test]
fn adaptive_gc_semantics() {
    let mut bo = AdaptiveObject::initial(1, piece(u64::MAX, 0, 8));
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(1, 1),
            seen_stored_ts: ts(0, 0),
            piece: piece(1, 0, 8),
            full: full(1, 1, 8),
        },
    );
    // GC of that same write: replica shrinks to one piece, v₀ pruned.
    bo.apply(
        C,
        &AdaptiveRmw::Gc {
            ts: ts(1, 1),
            piece: piece(1, 0, 8),
        },
    );
    assert!(bo.vp().is_empty(), "v₀'s older piece is pruned");
    assert_eq!(bo.vf().len(), 1, "replica reduced to a single piece");
    assert_eq!(bo.stored_ts(), ts(1, 1));
    // GC of an unrelated write leaves a foreign Vf piece with equal ts
    // untouched but prunes strictly older content.
    bo.apply(
        C,
        &AdaptiveRmw::Gc {
            ts: ts(2, 2),
            piece: piece(9, 0, 8),
        },
    );
    assert!(bo.vf().is_empty(), "older replica pruned by newer GC");
    assert_eq!(bo.stored_ts(), ts(2, 2));
}

/// Algorithm 2 read path data: `ReadValue` returns watermark + all chunks.
#[test]
fn adaptive_read_value_returns_everything() {
    let mut bo = AdaptiveObject::initial(2, piece(u64::MAX, 0, 8));
    bo.apply(
        C,
        &AdaptiveRmw::Update {
            ts: ts(1, 1),
            seen_stored_ts: ts(0, 0),
            piece: piece(1, 0, 8),
            full: full(1, 2, 8),
        },
    );
    let resp = bo.apply(C, &AdaptiveRmw::ReadValue);
    let AdaptiveResp::State { stored_ts, chunks } = resp else {
        panic!("ReadValue must return State");
    };
    assert_eq!(stored_ts, Timestamp::ZERO);
    assert_eq!(chunks.len(), 2);
    // ReadTs reports storedTS and max chunk ts separately.
    let AdaptiveResp::Ts {
        stored_ts,
        max_chunk_ts,
    } = bo.apply(C, &AdaptiveRmw::ReadTs)
    else {
        panic!("ReadTs must return Ts");
    };
    assert_eq!(stored_ts, Timestamp::ZERO);
    assert_eq!(max_chunk_ts, ts(1, 1));
}

/// Algorithm 5 lines 10–12: the safe object overwrites only on larger ts.
#[test]
fn safe_store_is_monotone() {
    let mut bo = SafeObject::initial(piece(u64::MAX, 0, 8));
    bo.apply(
        C,
        &SafeRmw::Store {
            ts: ts(3, 0),
            piece: piece(1, 0, 8),
        },
    );
    assert_eq!(bo.chunk().ts, ts(3, 0));
    bo.apply(
        C,
        &SafeRmw::Store {
            ts: ts(2, 9),
            piece: piece(2, 0, 8),
        },
    );
    assert_eq!(bo.chunk().ts, ts(3, 0), "older store ignored");
    let SafeResp::Ts(t) = bo.apply(C, &SafeRmw::ReadTs) else {
        panic!("ReadTs returns Ts");
    };
    assert_eq!(t, ts(3, 0));
    let SafeResp::Data(chunk) = bo.apply(C, &SafeRmw::ReadChunk) else {
        panic!("ReadChunk returns Data");
    };
    assert_eq!(chunk.ts, ts(3, 0));
}

/// ABD object: conditional overwrite and full-replica reads.
#[test]
fn abd_store_semantics() {
    let mut bo = AbdObject::initial(TaggedBlock::new(INITIAL_OP, Block::new(0, vec![0u8; 8])));
    bo.apply(
        C,
        &AbdRmw::Store {
            ts: ts(1, 0),
            replica: piece(1, 0, 8),
        },
    );
    assert_eq!(bo.ts(), ts(1, 0));
    bo.apply(
        C,
        &AbdRmw::Store {
            ts: ts(1, 0),
            replica: piece(2, 0, 8),
        },
    );
    let AbdResp::State { ts: got, replica } = bo.apply(C, &AbdRmw::ReadValue) else {
        panic!("ReadValue returns State");
    };
    assert_eq!(got, ts(1, 0));
    assert_eq!(replica.source_op, OpId(1), "equal ts must not overwrite");
}

/// The initial configuration of every protocol decodes to v₀.
#[test]
fn initial_states_decode_to_v0() {
    let cfg = RegisterConfig::paper(2, 3, 30).unwrap();
    let code = cfg.code().unwrap();
    let blocks = code.encode(&cfg.initial_value());
    // Adaptive objects hold piece i; any k of them decode v₀.
    let subset: Vec<Block> = blocks[..3].to_vec();
    assert_eq!(code.decode(&subset).unwrap(), Value::zeroed(30));
}
