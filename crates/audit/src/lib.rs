//! `rsb-audit` — the workspace's Rust-native static analyzer.
//!
//! The analyzer lexes every source file in the workspace with a
//! hand-rolled tokenizer (the vendored dependency set has no `syn`)
//! and enforces the project's concurrency and robustness discipline:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `panic-path` | no `.unwrap()`/`.expect()`/`panic!`-family macros in tagged no-panic modules |
//! | `index-path` | no bare slice indexing on tagged total-decode paths |
//! | `atomics-relaxed` | every `Ordering::Relaxed` carries a written justification |
//! | `atomics-seqcst` | `Ordering::SeqCst` is suspicious by default and needs one too |
//! | `unsafe-confinement` | `unsafe` only in the allowed SIMD kernels, each under a `// SAFETY:` comment |
//! | `lock-order` | nested lock acquisitions follow the hierarchy in `audit.toml` |
//! | `lint-headers` | every crate root carries `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | `bad-annotation` | malformed `audit:allow` comments are findings themselves |
//!
//! Violations are suppressed — never silently — with
//! `// audit:allow(<rule>) — <justification>` on or directly above the
//! offending line; suppressions are kept in the report so they stay
//! reviewable. The manifest (`audit.toml` at the repo root) declares
//! the tagged paths and the lock hierarchy; the runtime twin of the
//! lock-order rule lives in `rsb-registers::lockorder`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotations;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use crate::config::AuditConfig;
use crate::report::{Finding, Report, Rule};
use crate::rules::FileCtx;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Audits one file's source text. `rel_path` is the repo-relative,
/// `/`-separated path used for rule scoping and diagnostics.
#[must_use]
pub fn audit_source(rel_path: &str, src: &str, config: &AuditConfig) -> Report {
    let lexed = lexer::lex(src);
    let ann = annotations::index(&lexed);
    let ctx = FileCtx {
        path: rel_path,
        lexed: &lexed,
        ann: &ann,
        config,
        test_spans: rules::test_spans(&lexed),
    };
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    rules::panic_paths::check(&ctx, &mut report.findings, &mut report.suppressions);
    rules::atomics::check(&ctx, &mut report.findings, &mut report.suppressions);
    rules::unsafe_confinement::check(&ctx, &mut report.findings, &mut report.suppressions);
    rules::lock_order::check(&ctx, &mut report.findings, &mut report.suppressions);
    for bad in &ann.bad {
        report.findings.push(Finding {
            rule: Rule::BadAnnotation,
            path: rel_path.to_string(),
            line: bad.line,
            message: bad.message.clone(),
        });
    }
    report
}

/// Directory names never descended into: build output, vendored stub
/// crates, and the analyzer's own golden-file fixtures (deliberately
/// dirty by design).
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.')
}

/// Collects every `.rs` file under `<root>/crates`, sorted, with the
/// skip list applied.
///
/// # Errors
///
/// Propagates filesystem errors other than a missing `crates/` dir.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        walk(&crates, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// The repo-relative, `/`-separated form of `path` under `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Runs the full workspace audit from `root`: every crate source file
/// through the token rules, plus the per-crate lint-header check.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable files or directories).
pub fn run_workspace_audit(root: &Path, config: &AuditConfig) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_workspace_files(root)? {
        let src = fs::read_to_string(&path)?;
        report.merge(audit_source(&rel_path(root, &path), &src, config));
    }
    check_lint_headers(root, config, &mut report)?;
    report.sort();
    Ok(report)
}

/// Audits an explicit list of files (repo-relative or absolute); the
/// workspace-level lint-header rule does not run in this mode.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable files).
pub fn run_files_audit(root: &Path, files: &[PathBuf], config: &AuditConfig) -> io::Result<Report> {
    let mut report = Report::default();
    for file in files {
        let abs = if file.is_absolute() {
            file.clone()
        } else {
            root.join(file)
        };
        let src = fs::read_to_string(&abs)?;
        report.merge(audit_source(&rel_path(root, &abs), &src, config));
    }
    report.sort();
    Ok(report)
}

/// Applies the lint-header rule to every crate root under
/// `<root>/crates`.
fn check_lint_headers(root: &Path, config: &AuditConfig, report: &mut Report) -> io::Result<()> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(());
    }
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        let root_file = if lib.is_file() {
            lib
        } else if main.is_file() {
            main
        } else {
            continue;
        };
        let src = fs::read_to_string(&root_file)?;
        let lexed = lexer::lex(&src);
        rules::lint_headers::check_crate_root(
            &crate_name,
            &rel_path(root, &root_file),
            &lexed,
            &config.deny_header_ok,
            &mut report.findings,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_source_wires_all_rules() {
        let config = AuditConfig {
            no_panic_paths: vec!["crates/store/src/net/".into()],
            ..AuditConfig::default()
        };
        let src = "\
fn f(a: &AtomicU64) {
    x.unwrap();
    a.load(Ordering::Relaxed);
    unsafe { y() }
}
// audit:allow(nope) — not a rule
";
        let report = audit_source("crates/store/src/net/frame.rs", src, &config);
        let rules_hit: Vec<&str> = report.findings.iter().map(|f| f.rule.id()).collect();
        assert!(rules_hit.contains(&"panic-path"));
        assert!(rules_hit.contains(&"atomics-relaxed"));
        assert!(rules_hit.contains(&"unsafe-confinement"));
        assert!(rules_hit.contains(&"bad-annotation"));
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn skip_list_covers_build_and_fixture_dirs() {
        assert!(skip_dir("target"));
        assert!(skip_dir("vendor"));
        assert!(skip_dir("fixtures"));
        assert!(skip_dir(".git"));
        assert!(!skip_dir("src"));
        assert!(!skip_dir("tests"));
    }
}
