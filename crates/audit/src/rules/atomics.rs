//! The atomics-ordering rules.
//!
//! Every `Ordering::Relaxed` must carry a justification annotation —
//! relaxed loads/stores are correct only when the value genuinely
//! synchronizes nothing (statistics counters, monotonic IDs), and that
//! argument belongs next to the code. `Ordering::SeqCst` is suspicious
//! by default: it usually papers over an unclear acquire/release
//! protocol, so it needs a justification too (or a downgrade).

use crate::lexer::TokKind;
use crate::report::{Finding, Rule, Suppression};
use crate::rules::{emit, FileCtx};

/// Runs the rule over one file (test modules included — wrong orderings
/// in tests mask real races).
pub fn check(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, suppressions: &mut Vec<Suppression>) {
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_attr || tok.kind != TokKind::Ident || tok.text != "Ordering" {
            continue;
        }
        // `Ordering :: Relaxed` — `::` lexes as two `:` puncts.
        let Some(variant) = toks.get(i + 3) else {
            continue;
        };
        let path_sep = toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Punct(':'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Punct(':'));
        if !path_sep || variant.kind != TokKind::Ident {
            continue;
        }
        match variant.text.as_str() {
            "Relaxed" => emit(
                ctx,
                Rule::AtomicsRelaxed,
                variant.line,
                "`Ordering::Relaxed` without a justification — annotate why \
                 this access synchronizes nothing, or strengthen it"
                    .to_string(),
                findings,
                suppressions,
            ),
            "SeqCst" => emit(
                ctx,
                Rule::AtomicsSeqCst,
                variant.line,
                "`Ordering::SeqCst` is suspicious by default — justify why a \
                 total order is required, or downgrade to acquire/release"
                    .to_string(),
                findings,
                suppressions,
            ),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations;
    use crate::config::AuditConfig;
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn run(src: &str) -> (Vec<Finding>, Vec<Suppression>) {
        let config = AuditConfig::default();
        let lexed = lex(src);
        let ann = annotations::index(&lexed);
        let ctx = FileCtx {
            path: "crates/store/src/metrics.rs",
            lexed: &lexed,
            ann: &ann,
            config: &config,
            test_spans: test_spans(&lexed),
        };
        let mut findings = Vec::new();
        let mut suppressions = Vec::new();
        check(&ctx, &mut findings, &mut suppressions);
        (findings, suppressions)
    }

    #[test]
    fn flags_relaxed_and_seqcst() {
        let src = "\
fn f(a: &AtomicU64) {
    a.load(Ordering::Relaxed);
    a.store(1, Ordering::SeqCst);
    a.fetch_add(1, Ordering::AcqRel);
}
";
        let (findings, _) = run(src);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, Rule::AtomicsRelaxed);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].rule, Rule::AtomicsSeqCst);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn acquire_release_pass_unannotated() {
        let src = "fn f(a: &AtomicBool) { a.load(Ordering::Acquire); a.store(true, Ordering::Release); }\n";
        let (findings, _) = run(src);
        assert!(findings.is_empty());
    }

    #[test]
    fn annotations_suppress() {
        let src = "\
// audit:allow(atomics-relaxed) — statistics counter, reader tolerates staleness
let n = hits.load(Ordering::Relaxed);
let m = total.load(Ordering::Relaxed);
";
        let (findings, suppressions) = run(src);
        assert_eq!(suppressions.len(), 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        // `std::cmp::Ordering::Less` shares the type name; only the
        // atomic variants trip the rule.
        let (findings, _) = run("fn f() -> Ordering { Ordering::Less }\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn applies_inside_test_modules_too() {
        let src =
            "#[cfg(test)]\nmod tests {\n  fn t(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}\n";
        let (findings, _) = run(src);
        assert_eq!(findings.len(), 1);
    }
}
