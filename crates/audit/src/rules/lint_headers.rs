//! The lint-headers rule: every crate root must carry the workspace's
//! mandatory lint attributes.
//!
//! Each `crates/*/src/lib.rs` (and `main.rs`-only crates' root) must
//! declare `#![forbid(unsafe_code)]` — or `#![deny(unsafe_code)]` for
//! the crates listed in `[unsafe_code] deny_header_ok` (the SIMD crate
//! cannot `forbid` because its kernels opt in locally) — and
//! `#![warn(missing_docs)]`. The check is attribute-token based, so a
//! header mentioned in a doc comment does not satisfy it.

use crate::lexer::{Lexed, TokKind};
use crate::report::{Finding, Rule};

/// Whether the lexed file carries an inner attribute containing all the
/// given identifiers (e.g. `forbid` + `unsafe_code`).
fn has_inner_attr(lexed: &Lexed, idents: &[&str]) -> bool {
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') {
            let mut seen = vec![false; idents.len()];
            let mut j = i + 1;
            while j < toks.len() && (toks[j].in_attr || toks[j].kind == TokKind::Punct('!')) {
                if toks[j].kind == TokKind::Ident {
                    for (k, want) in idents.iter().enumerate() {
                        if toks[j].text == *want {
                            seen[k] = true;
                        }
                    }
                }
                j += 1;
            }
            if seen.iter().all(|&s| s) {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

/// Checks one crate root. `crate_name` is the directory name under
/// `crates/`; `path` is the repo-relative root path for diagnostics.
pub fn check_crate_root(
    crate_name: &str,
    path: &str,
    lexed: &Lexed,
    deny_header_ok: &[String],
    findings: &mut Vec<Finding>,
) {
    let deny_ok = deny_header_ok.iter().any(|c| c == crate_name);
    let has_forbid = has_inner_attr(lexed, &["forbid", "unsafe_code"]);
    let has_deny = has_inner_attr(lexed, &["deny", "unsafe_code"]);
    let ok = if deny_ok {
        has_forbid || has_deny
    } else {
        has_forbid
    };
    if !ok {
        let wanted = if deny_ok {
            "#![deny(unsafe_code)]"
        } else {
            "#![forbid(unsafe_code)]"
        };
        findings.push(Finding {
            rule: Rule::LintHeaders,
            path: path.to_string(),
            line: 1,
            message: format!("crate root is missing `{wanted}`"),
        });
    }
    if !has_inner_attr(lexed, &["warn", "missing_docs"])
        && !has_inner_attr(lexed, &["deny", "missing_docs"])
    {
        findings.push(Finding {
            rule: Rule::LintHeaders,
            path: path.to_string(),
            line: 1,
            message: "crate root is missing `#![warn(missing_docs)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(crate_name: &str, src: &str, deny_ok: &[&str]) -> Vec<Finding> {
        let mut findings = Vec::new();
        let deny: Vec<String> = deny_ok.iter().map(|s| (*s).to_string()).collect();
        check_crate_root(
            crate_name,
            "crates/x/src/lib.rs",
            &lex(src),
            &deny,
            &mut findings,
        );
        findings
    }

    #[test]
    fn full_headers_pass() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(run("x", src, &[]).is_empty());
    }

    #[test]
    fn missing_headers_are_both_reported() {
        let findings = run("x", "pub fn f() {}\n", &[]);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("forbid"));
        assert!(findings[1].message.contains("missing_docs"));
    }

    #[test]
    fn deny_only_passes_for_exempt_crates() {
        let src = "#![deny(unsafe_code)]\n#![warn(missing_docs)]\n";
        assert!(run("coding", src, &["coding"]).is_empty());
        let findings = run("store", src, &["coding"]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("forbid"));
    }

    #[test]
    fn header_in_doc_comment_does_not_count() {
        let src = "//! says #![forbid(unsafe_code)] and #![warn(missing_docs)]\npub fn f() {}\n";
        assert_eq!(run("x", src, &[]).len(), 2);
    }

    #[test]
    fn combined_attribute_list_counts() {
        // `#![warn(missing_docs, rust_2018_idioms)]` style.
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs, rust_2018_idioms)]\n";
        assert!(run("x", src, &[]).is_empty());
    }
}
