//! The unsafe-confinement rule.
//!
//! `unsafe` is confined to the files listed under `[unsafe_code]
//! allowed` in `audit.toml` (the GFNI/SIMD kernels), and every `unsafe`
//! there must sit under a `// SAFETY:` comment spelling out the
//! invariant that makes it sound. Anywhere else, `unsafe` is a finding
//! outright — the workspace lint headers (`#![forbid(unsafe_code)]`)
//! back this up at compile time, the audit catches it at review time.

use crate::lexer::TokKind;
use crate::report::{Finding, Rule, Suppression};
use crate::rules::{emit, FileCtx};

/// Runs the rule over one file (test modules included).
pub fn check(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, suppressions: &mut Vec<Suppression>) {
    let allowed = ctx.matches_any(&ctx.config.unsafe_allowed);
    for tok in &ctx.lexed.toks {
        if tok.in_attr || tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        if !allowed {
            emit(
                ctx,
                Rule::UnsafeConfinement,
                tok.line,
                "`unsafe` outside the audited SIMD kernels — move the code \
                 behind the safe `gf256` API or extend [unsafe_code] allowed"
                    .to_string(),
                findings,
                suppressions,
            );
        } else if !ctx.ann.has_safety(tok.line) {
            emit(
                ctx,
                Rule::UnsafeConfinement,
                tok.line,
                "`unsafe` without a `// SAFETY:` comment — state the invariant \
                 that makes this sound on the line(s) above"
                    .to_string(),
                findings,
                suppressions,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations;
    use crate::config::AuditConfig;
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let config = AuditConfig {
            unsafe_allowed: vec!["crates/coding/src/gf256/simd.rs".into()],
            ..AuditConfig::default()
        };
        let lexed = lex(src);
        let ann = annotations::index(&lexed);
        let ctx = FileCtx {
            path,
            lexed: &lexed,
            ann: &ann,
            config: &config,
            test_spans: test_spans(&lexed),
        };
        let mut findings = Vec::new();
        let mut suppressions = Vec::new();
        check(&ctx, &mut findings, &mut suppressions);
        findings
    }

    #[test]
    fn unsafe_outside_allowed_files_is_flagged() {
        let findings = run("crates/store/src/store.rs", "fn f() { unsafe { x() } }\n");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("outside"));
    }

    #[test]
    fn unsafe_in_allowed_file_needs_safety_comment() {
        let path = "crates/coding/src/gf256/simd.rs";
        let bare = run(path, "fn f() { unsafe { x() } }\n");
        assert_eq!(bare.len(), 1);
        assert!(bare[0].message.contains("SAFETY"));
        let commented = run(
            path,
            "// SAFETY: `x` is sound because the caller checked GFNI support.\nfn f() { unsafe { x() } }\n",
        );
        assert!(commented.is_empty());
    }

    #[test]
    fn safety_above_attributes_covers_the_fn() {
        let path = "crates/coding/src/gf256/simd.rs";
        let src = "\
// SAFETY: callers must have verified `gfni` support at runtime.
#[target_feature(enable = \"gfni\")]
unsafe fn kernel() {}
";
        assert!(run(path, src).is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let findings = run(
            "crates/store/src/store.rs",
            "// unsafe in prose\nlet s = \"unsafe\";\n",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn lint_attr_mentioning_unsafe_is_ignored() {
        // `#![forbid(unsafe_code)]` contains the ident `unsafe_code`,
        // not `unsafe`; `#[allow(unsafe_op_in_unsafe_fn)]` likewise.
        let findings = run(
            "crates/store/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[allow(unsafe_op_in_unsafe_fn)]\nfn f() {}\n",
        );
        assert!(findings.is_empty());
    }
}
