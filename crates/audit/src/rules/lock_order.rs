//! The lock-order rule: nested acquisitions must respect the hierarchy
//! declared in `audit.toml`.
//!
//! The analysis is intraprocedural and token-driven. An *acquisition*
//! is `<field>.lock()` / `.try_lock()` / `.read()` / `.write()` with an
//! empty argument list (which excludes `io::Read::read(&mut buf)` and
//! friends), where `<field>` — the identifier right before the call —
//! maps to a level in the manifest. While one acquisition is live,
//! acquiring a level of equal or lower rank is a finding.
//!
//! Guard lifetimes are approximated conservatively:
//!
//! - a guard bound by a simple `let g = field.lock();` lives until
//!   `drop(g)` or until its block closes;
//! - any other acquisition is a *temporary*: it lives to the end of the
//!   statement — the `;` at the acquisition's brace depth, or the `}`
//!   that closes back to it. That models Rust's real temporary rules
//!   for `match field.lock().x { … }` scrutinees and `for x in
//!   field.lock().iter() { … }` headers, where the guard outlives the
//!   whole block;
//! - a chain that ends in `.unwrap()` / `.expect(…)` (the `std::sync`
//!   poison dance) classifies like the bare call; any other chained
//!   method makes the acquisition a statement-scoped temporary.
//!
//! The approximation errs toward releasing early (struct-literal braces
//! close "blocks" that are not scopes), which can miss a hold but never
//! invents one — no false positives from the lifetime model.

use crate::config::LockLevel;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule, Suppression};
use crate::rules::{emit, FileCtx};

/// Methods that acquire a lock when called with no arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "try_lock", "read", "write"];

/// One live acquisition.
struct Held {
    rank: i64,
    level_name: String,
    field: String,
    /// `Some(name)` for a simple `let name = …;` binding (releasable by
    /// `drop(name)`), `None` otherwise.
    binding: Option<String>,
    /// Let-bound guards survive `;`; temporaries do not.
    is_let: bool,
    /// Brace depth at the acquisition site.
    depth: usize,
    line: u32,
}

/// Per-brace-depth statement tracking, enough to classify `let`s.
#[derive(Default)]
struct Stmt {
    seen_first: bool,
    is_let: bool,
    /// Waiting for the binding identifier after `let` / `let mut`.
    expect_binding: bool,
    binding: Option<String>,
}

/// Skips `in_attr` tokens; returns the index of the next code token.
fn next_code(toks: &[Tok], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].in_attr {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct(c) && !t.in_attr)
}

/// The rank constant named in a `tracked_lock`/`tracked_try` call: the
/// last identifier before the first top-level comma of the argument
/// list (`ranks::READY_QUEUE` → `READY_QUEUE`).
fn rank_const_name(toks: &[Tok], start: usize, close: usize) -> Option<String> {
    let mut last_ident = None;
    let mut paren = 0i64;
    for tok in toks.iter().take(close).skip(start) {
        if tok.in_attr {
            continue;
        }
        match tok.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct(',') if paren == 0 => break,
            TokKind::Ident => last_ident = Some(tok.text.clone()),
            _ => {}
        }
    }
    last_ident
}

/// Walks past a `.unwrap()` / `.expect(…)` poison-handling tail so the
/// let/temp classification sees the real end of the acquisition
/// expression. `end` is the index of the chain's closing `)`.
fn poison_tail_end(toks: &[Tok], mut end: usize) -> usize {
    while is_punct(toks, end + 1, '.')
        && toks
            .get(end + 2)
            .is_some_and(|t| t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect"))
        && is_punct(toks, end + 3, '(')
    {
        match matching_paren(toks, end + 3) {
            Some(close) => end = close,
            None => break,
        }
    }
    end
}

/// Given the index of an opening `(`, returns the index of its match.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, tok) in toks.iter().enumerate().skip(open) {
        if tok.in_attr {
            continue;
        }
        match tok.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs the rule over one file.
#[allow(clippy::too_many_lines)]
pub fn check(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, suppressions: &mut Vec<Suppression>) {
    if ctx.config.lock_levels.is_empty() {
        return;
    }
    let toks = &ctx.lexed.toks;
    let mut held: Vec<Held> = Vec::new();
    let mut depth: usize = 0;
    let mut stmts: Vec<Stmt> = vec![Stmt::default()];

    let mut i = 0usize;
    while i < toks.len() {
        let tok = &toks[i];
        if tok.in_attr {
            i += 1;
            continue;
        }
        match tok.kind {
            TokKind::Punct('{') => {
                depth += 1;
                stmts.push(Stmt::default());
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if stmts.len() > 1 {
                    stmts.pop();
                }
                // Everything acquired deeper is out of scope; temporaries
                // acquired at this depth belonged to the statement the
                // block just finished (match/for headers).
                held.retain(|h| h.depth <= depth && (h.is_let || h.depth < depth));
                // A closing brace usually ends a statement too (`fn`,
                // `if`, `match` — none carry a `;`), so the next token
                // starts fresh.
                if let Some(stmt) = stmts.last_mut() {
                    *stmt = Stmt::default();
                }
            }
            // `;` ends a statement; `,` ends a brace-less match arm (and
            // arms are mutually exclusive, so their temporaries never
            // coexist). Releasing temporaries at commas inside argument
            // lists is early, but early release only misses holds — it
            // never invents one.
            TokKind::Punct(';' | ',') => {
                held.retain(|h| h.is_let || h.depth != depth);
                if let Some(stmt) = stmts.last_mut() {
                    *stmt = Stmt::default();
                }
            }
            TokKind::Ident => {
                let stmt = stmts.last_mut().expect("statement stack is never empty");
                let text = tok.text.as_str();
                if !stmt.seen_first {
                    stmt.seen_first = true;
                    if text == "let" {
                        stmt.is_let = true;
                        stmt.expect_binding = true;
                        i += 1;
                        continue;
                    }
                } else if stmt.expect_binding {
                    if text == "mut" {
                        i += 1;
                        continue;
                    }
                    stmt.expect_binding = false;
                    // A simple binding is `let name =` or `let name : Ty =`
                    // (`::` or `(` after the ident means an enum pattern).
                    let simple = match next_code(toks, i + 1) {
                        Some(j) if is_punct(toks, j, '=') => true,
                        Some(j) if is_punct(toks, j, ':') => !is_punct(toks, j + 1, ':'),
                        _ => false,
                    };
                    if simple {
                        stmt.binding = Some(text.to_string());
                    }
                    i += 1;
                    continue;
                }
                // `drop(name)` releases a let-bound guard early.
                if text == "drop"
                    && is_punct(toks, i + 1, '(')
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
                    && is_punct(toks, i + 3, ')')
                {
                    let name = toks[i + 2].text.as_str();
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.binding.as_deref() == Some(name))
                    {
                        held.remove(pos);
                    }
                    i += 4;
                    continue;
                }
                // A checked acquisition through the runtime wrapper:
                // `tracked_lock(ranks::LEVEL, "name", || field.lock())`
                // (or `tracked_try`). The declared level comes from the
                // `ranks::` constant — its lowercased name is the level
                // name — and the whole call is the acquisition, so the
                // `.lock()` inside the closure is not double-counted.
                if (text == "tracked_lock" || text == "tracked_try") && is_punct(toks, i + 1, '(') {
                    if let Some(close) = matching_paren(toks, i + 1) {
                        let const_name = rank_const_name(toks, i + 2, close);
                        let level = const_name
                            .as_deref()
                            .and_then(|c| ctx.config.lock_level_named(&c.to_lowercase()));
                        if let Some(level) = level {
                            if !ctx.in_test(tok.line) {
                                report_conflicts(
                                    ctx,
                                    &held,
                                    level,
                                    &level.name,
                                    tok.line,
                                    findings,
                                    suppressions,
                                );
                                let end = poison_tail_end(toks, close);
                                let stmt = stmts.last().expect("statement stack is never empty");
                                let is_let = stmt.is_let && is_punct(toks, end + 1, ';');
                                held.push(Held {
                                    rank: level.rank,
                                    level_name: level.name.clone(),
                                    field: level.name.clone(),
                                    binding: if is_let { stmt.binding.clone() } else { None },
                                    is_let,
                                    depth,
                                    line: tok.line,
                                });
                            }
                            // Skip the call body: its commas and inner
                            // `.lock()` belong to the wrapper, not the
                            // surrounding statement.
                            i = close + 1;
                            continue;
                        } else if const_name.is_some() && !ctx.in_test(tok.line) {
                            emit(
                                ctx,
                                Rule::LockOrder,
                                tok.line,
                                format!(
                                    "`{text}` names rank constant `{}` with no matching \
                                     level in audit.toml",
                                    const_name.as_deref().unwrap_or_default()
                                ),
                                findings,
                                suppressions,
                            );
                        }
                    }
                }
                // An acquisition: `<field> . <method> ( )`.
                if ACQUIRE_METHODS.contains(&text)
                    && i >= 2
                    && is_punct(toks, i - 1, '.')
                    && toks[i - 2].kind == TokKind::Ident
                    && is_punct(toks, i + 1, '(')
                    && is_punct(toks, i + 2, ')')
                {
                    let field = toks[i - 2].text.clone();
                    if let Some(level) = ctx.config.lock_level_of(&field) {
                        if !ctx.in_test(tok.line) {
                            report_conflicts(
                                ctx,
                                &held,
                                level,
                                &field,
                                tok.line,
                                findings,
                                suppressions,
                            );
                            let end = poison_tail_end(toks, i + 2);
                            let stmt = stmts.last().expect("statement stack is never empty");
                            let is_let = stmt.is_let && is_punct(toks, end + 1, ';');
                            held.push(Held {
                                rank: level.rank,
                                level_name: level.name.clone(),
                                field,
                                binding: if is_let { stmt.binding.clone() } else { None },
                                is_let,
                                depth,
                                line: tok.line,
                            });
                        }
                        i += 3;
                        continue;
                    }
                }
            }
            _ => {
                if let Some(stmt) = stmts.last_mut() {
                    if !stmt.seen_first {
                        stmt.seen_first = true;
                    } else if stmt.expect_binding {
                        // `let (a, b) = …` / `let [x] = …`: a pattern,
                        // not a simple binding.
                        stmt.expect_binding = false;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Emits one finding per held lock whose rank blocks the new acquisition.
fn report_conflicts(
    ctx: &FileCtx<'_>,
    held: &[Held],
    level: &LockLevel,
    field: &str,
    line: u32,
    findings: &mut Vec<Finding>,
    suppressions: &mut Vec<Suppression>,
) {
    for h in held {
        if h.rank >= level.rank {
            let shape = if h.rank == level.rank && h.field == field {
                "re-acquires the same level (self-deadlock)".to_string()
            } else {
                format!(
                    "inverts the declared order (`{}` is level {}, `{}` is level {})",
                    h.field, h.rank, field, level.rank
                )
            };
            emit(
                ctx,
                Rule::LockOrder,
                line,
                format!(
                    "acquiring `{field}` ({}) while holding `{}` ({}) from line {} {shape}",
                    level.name, h.field, h.level_name, h.line
                ),
                findings,
                suppressions,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations;
    use crate::config::{AuditConfig, LockLevel};
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn config() -> AuditConfig {
        AuditConfig {
            lock_levels: vec![
                LockLevel {
                    rank: 0,
                    name: "shard_map".into(),
                    fields: vec!["map".into()],
                },
                LockLevel {
                    rank: 20,
                    name: "slot_table".into(),
                    fields: vec!["slots".into()],
                },
                LockLevel {
                    rank: 30,
                    name: "key_state".into(),
                    fields: vec!["state".into()],
                },
            ],
            ..AuditConfig::default()
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let config = config();
        let lexed = lex(src);
        let ann = annotations::index(&lexed);
        let ctx = FileCtx {
            path: "crates/store/src/shard.rs",
            lexed: &lexed,
            ann: &ann,
            config: &config,
            test_spans: test_spans(&lexed),
        };
        let mut findings = Vec::new();
        let mut suppressions = Vec::new();
        check(&ctx, &mut findings, &mut suppressions);
        findings
    }

    #[test]
    fn increasing_order_is_clean() {
        let src = "\
fn f(s: &Shard) {
    let guard = s.map.lock();
    let slots = s.slots.read();
    let mut st = s.state.lock();
    st.touch();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn inversion_is_flagged() {
        let src = "\
fn f(s: &Shard) {
    let st = s.state.lock();
    let guard = s.map.lock();
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("inverts"));
    }

    #[test]
    fn drop_releases_a_let_guard() {
        let src = "\
fn f(s: &Shard) {
    let st = s.state.lock();
    drop(st);
    let guard = s.map.lock();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_close_releases_a_let_guard() {
        let src = "\
fn f(s: &Shard) {
    {
        let st = s.state.lock();
    }
    let guard = s.map.lock();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporary_released_at_statement_end() {
        let src = "\
fn f(s: &Shard) {
    let token = *s.state.lock().token();
    let guard = s.map.lock();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn match_scrutinee_temporary_held_through_arms() {
        // The scrutinee guard lives until the match's closing brace —
        // acquiring a lower level inside an arm deadlocks for real.
        let src = "\
fn f(s: &Shard) {
    match s.state.lock().kind {
        Kind::A => {
            let guard = s.map.lock();
        }
        Kind::B => {}
    }
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn for_loop_header_temporary_held_through_body() {
        let src = "\
fn f(s: &Shard) {
    for slot in s.slots.read().iter() {
        let guard = s.map.lock();
    }
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn braceless_match_arms_are_independent() {
        // Arms never execute together; the first arm's temporary must
        // not count as held in the second.
        let src = "\
fn f(s: &Shard, r: Result<u32, ()>) {
    match r {
        Ok(v) => s.state.lock().push(v),
        Err(()) => {
            let guard = s.map.lock();
        }
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn same_field_reacquire_is_self_deadlock() {
        let src = "\
fn f(s: &Shard) {
    let a = s.state.lock();
    let b = s.state.lock();
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("self-deadlock"));
    }

    #[test]
    fn sequential_statements_do_not_conflict() {
        let src = "\
fn f(s: &Shard) {
    s.state.lock().touch();
    s.map.lock().insert(1);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn poison_unwrap_chain_counts_as_let_binding() {
        let src = "\
fn f(s: &Shard) {
    let st = s.state.lock().unwrap();
    let guard = s.map.lock().unwrap();
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        // `read(&mut buf)` has arguments — not a lock. The field name
        // even collides with a manifest field to prove the arg check.
        let src = "\
fn f(s: &Shard, buf: &mut [u8]) {
    let st = s.state.lock();
    s.slots.read(buf);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let src = "fn f(m: &M) { let a = m.other.lock(); let b = m.thing.lock(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn annotation_suppresses_lock_order() {
        let src = "\
fn f(s: &Shard) {
    let st = s.state.lock();
    // audit:allow(lock-order) — single-threaded recovery path, no contention
    let guard = s.map.lock();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tracked_lock_calls_are_acquisitions() {
        // The wrapper names its level via the `ranks::` constant; the
        // `.lock()` inside the closure must not double-count, and a
        // let-bound `Tracked` guard holds until its block closes.
        let src = "\
fn f(s: &Shard) {
    let st = tracked_lock(ranks::KEY_STATE, \"key_state\", || s.inner.lock());
    let guard = tracked_lock(ranks::SHARD_MAP, \"shard_map\", || s.m.lock());
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("inverts"));
    }

    #[test]
    fn tracked_lock_increasing_order_is_clean() {
        let src = "\
fn f(s: &Shard) {
    let m = tracked_lock(ranks::SHARD_MAP, \"shard_map\", || s.m.lock());
    let st = tracked_lock(ranks::KEY_STATE, \"key_state\", || s.inner.lock());
    drop(st);
    drop(m);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tracked_try_counts_and_drop_releases() {
        let src = "\
fn f(s: &Shard) {
    let sweep = tracked_try(ranks::KEY_STATE, \"key_state\", || s.g.try_lock());
    drop(sweep);
    let guard = tracked_lock(ranks::SHARD_MAP, \"shard_map\", || s.m.lock());
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn tracked_lock_unknown_level_is_flagged() {
        let src = "\
fn f(s: &Shard) {
    let g = tracked_lock(ranks::NOT_A_LEVEL, \"nope\", || s.m.lock());
}
";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("NOT_A_LEVEL"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(s: &Shard) {
        let st = s.state.lock();
        let guard = s.map.lock();
    }
}
";
        assert!(run(src).is_empty());
    }
}
