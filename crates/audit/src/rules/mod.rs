//! The audit rules and the per-file context they share.

pub mod atomics;
pub mod lint_headers;
pub mod lock_order;
pub mod panic_paths;
pub mod unsafe_confinement;

use crate::annotations::Annotations;
use crate::config::AuditConfig;
use crate::lexer::{Lexed, TokKind};
use crate::report::{Finding, Rule, Suppression};

/// Everything a rule needs to scan one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Repo-relative path, `/`-separated.
    pub path: &'a str,
    /// The lexed token stream.
    pub lexed: &'a Lexed,
    /// The file's annotation index.
    pub ann: &'a Annotations,
    /// The manifest.
    pub config: &'a AuditConfig,
    /// Line spans (inclusive) of `#[cfg(test)] mod` blocks — test code
    /// panics by design, so the panic-path and lock-order rules skip it.
    pub test_spans: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    /// Whether `line` falls inside a `#[cfg(test)]` module.
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether the path starts with any of the given prefixes.
    #[must_use]
    pub fn matches_any(&self, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p.as_str()))
    }
}

/// Where a rule match lands: a finding, or a suppression when a
/// justified annotation covers the line.
pub fn emit(
    ctx: &FileCtx<'_>,
    rule: Rule,
    line: u32,
    message: String,
    findings: &mut Vec<Finding>,
    suppressions: &mut Vec<Suppression>,
) {
    if let Some(allow) = ctx.ann.allow_for(rule, line) {
        suppressions.push(Suppression {
            rule,
            path: ctx.path.to_string(),
            line,
            justification: allow.justification.clone(),
        });
    } else {
        findings.push(Finding {
            rule,
            path: ctx.path.to_string(),
            line,
            message,
        });
    }
}

/// Finds the line spans of `#[cfg(test)] mod … { … }` blocks.
///
/// The walk recognizes a `#`-led attribute whose idents include `test`
/// (and not `not`, so `#[cfg(not(test))]` stays in scope), optionally
/// followed by further attributes, then `mod <name> {`; the span runs
/// to the matching closing brace.
#[must_use]
pub fn test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut spans = Vec::new();
    let mut i = 0usize;
    let mut pending_cfg_test = false;
    while i < toks.len() {
        let tok = &toks[i];
        // An attribute: `#` then a run of in_attr tokens.
        if tok.kind == TokKind::Punct('#') {
            let mut j = i + 1;
            let mut has_test = false;
            let mut has_not = false;
            let mut has_cfg = false;
            while j < toks.len() && (toks[j].in_attr || toks[j].kind == TokKind::Punct('!')) {
                if toks[j].kind == TokKind::Ident {
                    match toks[j].text.as_str() {
                        "test" => has_test = true,
                        "not" => has_not = true,
                        "cfg" => has_cfg = true,
                        _ => {}
                    }
                }
                j += 1;
            }
            if has_cfg && has_test && !has_not {
                pending_cfg_test = true;
            }
            i = j;
            continue;
        }
        if tok.kind == TokKind::Ident && tok.text == "mod" && pending_cfg_test {
            // `mod name {` — find the matching `}`.
            let start_line = tok.line;
            let mut j = i + 1;
            while j < toks.len() && toks[j].kind != TokKind::Punct('{') {
                if toks[j].kind == TokKind::Punct(';') {
                    // `#[cfg(test)] mod name;` — an out-of-line module;
                    // its file is scanned separately.
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Punct('{') {
                let mut depth = 1i64;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    match toks[k].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let end_line = toks
                    .get(k.saturating_sub(1))
                    .map_or(lexed.lines, |t| t.line);
                spans.push((start_line, end_line));
                i = k;
                pending_cfg_test = false;
                continue;
            }
            pending_cfg_test = false;
        } else if !tok.in_attr {
            // Any other code token detaches a pending cfg(test).
            pending_cfg_test = false;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_span_found() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn after() {}
";
        let lexed = lex(src);
        let spans = test_spans(&lexed);
        assert_eq!(spans, vec![(3, 6)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let lexed = lex("#[cfg(not(test))]\nmod live { fn f() {} }\n");
        assert!(test_spans(&lexed).is_empty());
    }

    #[test]
    fn attribute_stack_between_cfg_and_mod() {
        let lexed = lex("#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\n");
        assert_eq!(test_spans(&lexed).len(), 1);
    }

    #[test]
    fn out_of_line_test_mod_has_no_span() {
        let lexed = lex("#[cfg(test)]\nmod tests;\nfn live() {}\n");
        assert!(test_spans(&lexed).is_empty());
    }
}
