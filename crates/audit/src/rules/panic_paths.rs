//! The panic-path and index-path rules.
//!
//! In modules tagged `no_panic` in `audit.toml` (the wire decode path,
//! the flight recorder, the driver loop, the coding kernels), every
//! panicking construct is a finding: `.unwrap()`, `.expect(…)`,
//! `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and — on the
//! stricter `index_paths` subset — bare slice/array indexing `x[i]`.
//! Test modules are exempt; everything else needs either a fix or an
//! `// audit:allow(panic-path) — <why>` justification.

use crate::lexer::TokKind;
use crate::report::{Finding, Rule, Suppression};
use crate::rules::{emit, FileCtx};

/// Macros whose expansion is an unconditional panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, suppressions: &mut Vec<Suppression>) {
    if !ctx.matches_any(&ctx.config.no_panic_paths) {
        return;
    }
    let check_index = ctx.matches_any(&ctx.config.no_index_paths);
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.in_attr || ctx.in_test(tok.line) {
            continue;
        }
        match tok.kind {
            TokKind::Ident => {
                let name = tok.text.as_str();
                let next_is = |c: char| {
                    toks.get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Punct(c) && !t.in_attr)
                };
                let prev_is_dot = i > 0 && toks[i - 1].kind == TokKind::Punct('.');
                if PANIC_METHODS.contains(&name) && prev_is_dot && next_is('(') {
                    emit(
                        ctx,
                        Rule::PanicPath,
                        tok.line,
                        format!(
                            "`.{name}()` in a no-panic module — propagate the error \
                             or annotate why it cannot fire"
                        ),
                        findings,
                        suppressions,
                    );
                } else if PANIC_MACROS.contains(&name) && next_is('!') {
                    emit(
                        ctx,
                        Rule::PanicPath,
                        tok.line,
                        format!(
                            "`{name}!` in a no-panic module — return an error \
                             or annotate why the branch is unreachable"
                        ),
                        findings,
                        suppressions,
                    );
                }
            }
            // Indexing: a `[` glued to an expression tail. Array
            // types/literals (`[u8; 4]`, `vec![…]`) and attribute
            // brackets do not match: their `[` follows whitespace,
            // punctuation outside the tail set, or sits in an attribute.
            TokKind::Punct('[') if check_index && tok.glued => {
                let tail = i > 0
                    && !toks[i - 1].in_attr
                    && match toks[i - 1].kind {
                        TokKind::Ident => {
                            // `&mut [u8]` is glued in `&mut[u8]`? No —
                            // keywords can't be indexed; exclude them.
                            !matches!(
                                toks[i - 1].text.as_str(),
                                "mut" | "ref" | "return" | "break" | "in" | "as" | "dyn" | "impl"
                            )
                        }
                        TokKind::Punct(')' | ']' | '?') => true,
                        _ => false,
                    };
                if tail {
                    emit(
                        ctx,
                        Rule::IndexPath,
                        tok.line,
                        "slice indexing on a total-decode path — use `.get(…)` \
                         and handle the miss, or annotate why the bound holds"
                            .to_string(),
                        findings,
                        suppressions,
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations;
    use crate::config::AuditConfig;
    use crate::lexer::lex;
    use crate::rules::test_spans;

    fn run(path: &str, src: &str) -> (Vec<Finding>, Vec<Suppression>) {
        let config = AuditConfig {
            no_panic_paths: vec!["crates/store/src/net/".into()],
            no_index_paths: vec!["crates/store/src/net/frame.rs".into()],
            ..AuditConfig::default()
        };
        let lexed = lex(src);
        let ann = annotations::index(&lexed);
        let ctx = FileCtx {
            path,
            lexed: &lexed,
            ann: &ann,
            config: &config,
            test_spans: test_spans(&lexed),
        };
        let mut findings = Vec::new();
        let mut suppressions = Vec::new();
        check(&ctx, &mut findings, &mut suppressions);
        (findings, suppressions)
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n  x.unwrap();\n  y.expect(\"m\");\n  panic!(\"no\");\n  unreachable!();\n}\n";
        let (findings, _) = run("crates/store/src/net/frame.rs", src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5]);
    }

    #[test]
    fn unwrap_or_and_other_idents_pass() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_default(); expect_this(); }\n";
        let (findings, _) = run("crates/store/src/net/frame.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn indexing_only_on_index_paths() {
        let src = "fn f(b: &[u8]) { let x = b[0]; }\n";
        let (findings, _) = run("crates/store/src/net/frame.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::IndexPath);
        let (findings, _) = run("crates/store/src/net/tcp.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn array_types_and_macros_are_not_indexing() {
        let src = "fn f() -> [u8; 4] { let v = vec![1, 2]; [0; 4] }\n";
        let (findings, _) = run("crates/store/src/net/frame.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn untagged_paths_are_exempt() {
        let (findings, _) = run("crates/store/src/store.rs", "fn f() { x.unwrap(); }\n");
        assert!(findings.is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let (findings, _) = run("crates/store/src/net/frame.rs", src);
        assert!(findings.is_empty());
    }

    #[test]
    fn annotation_suppresses_and_is_recorded() {
        let src = "fn f() {\n  x.unwrap(); // audit:allow(panic-path) — checked above\n}\n";
        let (findings, suppressions) = run("crates/store/src/net/frame.rs", src);
        assert!(findings.is_empty());
        assert_eq!(suppressions.len(), 1);
        assert_eq!(suppressions[0].justification, "checked above");
    }
}
