//! The allowlist annotation syntax and the per-file annotation index.
//!
//! A violation is suppressed by a comment of the form
//!
//! ```text
//! // audit:allow(<rule>) — <justification>
//! ```
//!
//! either trailing on the offending line or standing alone on the
//! line(s) directly above it (attribute lines and further annotation
//! comments in between are skipped, so an annotation can sit above a
//! `#[...]`-decorated item). The justification is mandatory: an
//! `audit:allow` with nothing after the rule is itself reported.
//!
//! `// SAFETY:` comments for the unsafe-confinement rule are indexed
//! the same way: a SAFETY comment covers the first code line at or
//! below it.

use crate::lexer::Lexed;
use crate::report::Rule;
use std::collections::HashMap;

/// One parsed `audit:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The allowed rule.
    pub rule: Rule,
    /// The justification text after the rule (trimmed).
    pub justification: String,
    /// The line the comment itself is on.
    pub comment_line: u32,
}

/// A malformed annotation (unknown rule or missing justification) —
/// reported as a finding by the driver.
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// The line the comment is on.
    pub line: u32,
    /// Why it was rejected.
    pub message: String,
}

/// Per-file annotation index: which code lines are covered by which
/// allows, and which lines carry a SAFETY comment.
#[derive(Debug, Default)]
pub struct Annotations {
    /// Code line → allows covering it.
    covered: HashMap<u32, Vec<Allow>>,
    /// Code lines covered by a `SAFETY:` comment.
    safety: Vec<u32>,
    /// Malformed annotations.
    pub bad: Vec<BadAnnotation>,
}

impl Annotations {
    /// Whether `rule` is allowed at `line`; returns the justification.
    #[must_use]
    pub fn allow_for(&self, rule: Rule, line: u32) -> Option<&Allow> {
        self.covered
            .get(&line)
            .and_then(|allows| allows.iter().find(|a| a.rule == rule))
    }

    /// Whether `line` is covered by a `SAFETY:` comment.
    #[must_use]
    pub fn has_safety(&self, line: u32) -> bool {
        self.safety.binary_search(&line).is_ok()
    }
}

/// Parses the `audit:allow(rule)` head of a comment, returning the rule
/// id text and the remainder.
fn split_allow(text: &str) -> Option<(&str, &str)> {
    let start = text.find("audit:allow(")?;
    let rest = &text[start + "audit:allow(".len()..];
    let close = rest.find(')')?;
    Some((rest[..close].trim(), &rest[close + 1..]))
}

/// Strips the separator between the rule and its justification: spaces,
/// dashes (ASCII or em/en), and colons.
fn strip_separator(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '-', '—', '–', ':'])
}

/// Builds the annotation index for one lexed file.
///
/// Coverage: a comment on line `C` covers line `C` itself (trailing
/// annotations) and, when no code shares its line, the first following
/// line that has non-attribute code (skipping blank, comment-only, and
/// attribute-only lines, up to a bounded distance).
#[must_use]
pub fn index(lexed: &Lexed) -> Annotations {
    let mut out = Annotations::default();
    let code_lines = lexed.code_lines();
    let has_code = |line: u32| code_lines.binary_search(&line).is_ok();
    // A comment's target line: itself if code shares the line, else the
    // first code line below. Attribute-only, comment, and blank lines
    // are skipped implicitly (they are not code lines).
    let target_of = |comment_line: u32, span: u32| -> u32 {
        let first = comment_line + span;
        // Bounded walk: an annotation floating far above any code is
        // almost certainly detached; 12 lines allows a long attribute
        // stack plus doc comments.
        if has_code(comment_line) {
            return comment_line;
        }
        for l in first..first + 12 {
            if l > lexed.lines {
                break;
            }
            if has_code(l) {
                return l;
            }
        }
        comment_line
    };
    for comment in &lexed.comments {
        let text = &comment.text;
        // Doc comments (`///`, `//!`, `/** */`) are prose *about* the
        // annotation syntax, not annotations — the analyzer's own docs
        // would otherwise flag themselves.
        if text.starts_with('/') || text.starts_with('!') || text.starts_with('*') {
            continue;
        }
        if let Some((rule_id, rest)) = split_allow(text) {
            let justification = strip_separator(rest).trim().to_string();
            match Rule::from_id(rule_id) {
                None => out.bad.push(BadAnnotation {
                    line: comment.line,
                    message: format!("audit:allow names unknown rule `{rule_id}`"),
                }),
                Some(_) if justification.is_empty() => out.bad.push(BadAnnotation {
                    line: comment.line,
                    message: format!(
                        "audit:allow({rule_id}) has no justification — write \
                         `// audit:allow({rule_id}) — <why this is sound>`"
                    ),
                }),
                Some(rule) => {
                    let target = target_of(comment.line, comment.span_lines);
                    out.covered.entry(target).or_default().push(Allow {
                        rule,
                        justification,
                        comment_line: comment.line,
                    });
                }
            }
        }
        if text.contains("SAFETY:") || text.contains("SAFETY —") {
            let target = target_of(comment.line, comment.span_lines);
            out.safety.push(target);
        }
    }
    out.safety.sort_unstable();
    out.safety.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_standalone_coverage() {
        let src = "\
let a = x.unwrap(); // audit:allow(panic-path) — infallible by construction
// audit:allow(atomics-relaxed) — statistic only
let b = y.load(Ordering::Relaxed);
";
        let ann = index(&lex(src));
        assert!(ann.allow_for(Rule::PanicPath, 1).is_some());
        assert!(ann.allow_for(Rule::AtomicsRelaxed, 3).is_some());
        assert!(ann.allow_for(Rule::AtomicsRelaxed, 1).is_none());
    }

    #[test]
    fn annotation_skips_attributes() {
        let src = "\
// audit:allow(panic-path) — test-only helper
#[inline]
fn f() { x.unwrap(); }
";
        let ann = index(&lex(src));
        assert!(ann.allow_for(Rule::PanicPath, 3).is_some());
    }

    #[test]
    fn missing_justification_is_bad() {
        let ann = index(&lex("// audit:allow(panic-path)\nlet a = 1;"));
        assert_eq!(ann.bad.len(), 1);
        assert!(ann.bad[0].message.contains("no justification"));
    }

    #[test]
    fn unknown_rule_is_bad() {
        let ann = index(&lex("// audit:allow(no-such-rule) — because\nlet a = 1;"));
        assert_eq!(ann.bad.len(), 1);
        assert!(ann.bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn safety_comments_cover_next_code_line() {
        let src = "\
// SAFETY: the pointer is valid for 16 bytes.
unsafe { read(p) }
let x = 1;
";
        let ann = index(&lex(src));
        assert!(ann.has_safety(2));
        assert!(!ann.has_safety(3));
    }

    #[test]
    fn doc_comments_are_prose_not_annotations() {
        let src = "\
//! Suppress with `// audit:allow(made-up-rule)`.
/// Also mentions audit:allow(panic-path) with no justification.
fn f() { x.unwrap(); }
";
        let ann = index(&lex(src));
        assert!(ann.bad.is_empty());
        assert!(ann.allow_for(Rule::PanicPath, 3).is_none());
    }

    #[test]
    fn allows_inside_strings_do_not_count() {
        let src = "let s = \"// audit:allow(panic-path) — nope\";\nlet a = x.unwrap();";
        let ann = index(&lex(src));
        assert!(ann.allow_for(Rule::PanicPath, 2).is_none());
    }
}
