//! `audit.toml` — the analyzer's manifest — and the minimal TOML
//! subset it is written in.
//!
//! The build environment vendors stub crates only, so there is no real
//! TOML (or serde) implementation to lean on. The parser below covers
//! exactly what the manifest needs: `[section]` and `[[array.of.tables]]`
//! headers, `key = "string"`, `key = 123`, `key = true`, and
//! (possibly multi-line) `key = ["a", "b"]` string arrays. Anything
//! else is a hard error — the manifest is project infrastructure, not
//! user input.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation error, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the manifest (0 for structural errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A parsed TOML value (the subset the manifest uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array of strings.
    StrArray(Vec<String>),
}

/// One `[section]` or one element of a `[[section]]` list: its key/value
/// pairs in declaration order.
pub type TomlTable = BTreeMap<String, TomlValue>;

/// The parsed document: plain sections by name, array-of-table sections
/// by name.
#[derive(Debug, Default)]
pub struct TomlDoc {
    /// `[name]` sections.
    pub tables: BTreeMap<String, TomlTable>,
    /// `[[name]]` sections, in declaration order.
    pub arrays: BTreeMap<String, Vec<TomlTable>>,
}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(raw: &str, line_no: u32) -> Result<TomlValue, ConfigError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(err(line_no, "unterminated string"));
        };
        // The manifest needs no escapes beyond \" and \\.
        let mut out = String::new();
        let mut escaped = false;
        for c in body.chars() {
            if escaped {
                out.push(c);
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else {
                out.push(c);
            }
        }
        return Ok(TomlValue::Str(out));
    }
    if raw == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if raw == "false" {
        return Ok(TomlValue::Bool(false));
    }
    raw.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| err(line_no, format!("unsupported value `{raw}`")))
}

/// Parses the supported TOML subset.
///
/// # Errors
///
/// Fails on any construct outside the subset (inline tables, floats,
/// non-string arrays, dotted keys), with the offending line number.
pub fn parse_toml(src: &str) -> Result<TomlDoc, ConfigError> {
    let mut doc = TomlDoc::default();
    // Where key/value pairs currently land.
    enum Cursor {
        None,
        Table(String),
        Array(String),
    }
    let mut cursor = Cursor::None;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(err(line_no, "malformed [[section]] header"));
            };
            let name = name.trim().to_string();
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(TomlTable::new());
            cursor = Cursor::Array(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(line_no, "malformed [section] header"));
            };
            let name = name.trim().to_string();
            doc.tables.entry(name.clone()).or_default();
            cursor = Cursor::Table(name);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = line[..eq].trim().to_string();
        if key.is_empty() || key.contains('.') {
            return Err(err(line_no, "unsupported key (empty or dotted)"));
        }
        let mut value_src = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming lines until the bracket
        // closes (comments already stripped per line).
        if value_src.starts_with('[') {
            while !value_src.trim_end().ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(err(line_no, "unterminated array"));
                };
                value_src.push(' ');
                value_src.push_str(strip_comment(next).trim());
            }
        }
        let value = if let Some(body) = value_src
            .trim()
            .strip_prefix('[')
            .and_then(|v| v.strip_suffix(']'))
        {
            let mut items = Vec::new();
            for item in split_array_items(body) {
                match parse_scalar(&item, line_no)? {
                    TomlValue::Str(s) => items.push(s),
                    _ => return Err(err(line_no, "arrays may only contain strings")),
                }
            }
            TomlValue::StrArray(items)
        } else {
            parse_scalar(&value_src, line_no)?
        };
        let table = match &cursor {
            Cursor::None => return Err(err(line_no, "key/value before any [section]")),
            Cursor::Table(name) => doc.tables.get_mut(name).expect("cursor points at a table"),
            Cursor::Array(name) => doc
                .arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .expect("cursor points at an array element"),
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(err(line_no, format!("duplicate key `{key}`")));
        }
    }
    Ok(doc)
}

/// Splits a bracketless array body on commas outside quotes.
fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                current.push(c);
                escaped = true;
            }
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
        .into_iter()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// One level of the declared lock hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockLevel {
    /// Numeric rank: locks must be acquired in strictly increasing rank.
    pub rank: i64,
    /// Human-readable level name (matches the runtime checker's table).
    pub name: String,
    /// Struct field names whose `.lock()`/`.try_lock()`/`.read()`/
    /// `.write()` acquire this level.
    pub fields: Vec<String>,
}

/// The analyzer's full configuration.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    /// Path prefixes (repo-relative, `/`-separated) where panic paths
    /// are forbidden.
    pub no_panic_paths: Vec<String>,
    /// Path prefixes where slice indexing is additionally forbidden.
    pub no_index_paths: Vec<String>,
    /// Files allowed to contain `unsafe` (each use still needs a
    /// `// SAFETY:` comment).
    pub unsafe_allowed: Vec<String>,
    /// Crate names whose `lib.rs` may carry `#![deny(unsafe_code)]`
    /// instead of `#![forbid(unsafe_code)]`.
    pub deny_header_ok: Vec<String>,
    /// The declared lock hierarchy, sorted by rank.
    pub lock_levels: Vec<LockLevel>,
}

impl AuditConfig {
    /// The lock level (rank and name) a field name maps to, if any.
    #[must_use]
    pub fn lock_level_of(&self, field: &str) -> Option<&LockLevel> {
        self.lock_levels
            .iter()
            .find(|l| l.fields.iter().any(|f| f == field))
    }

    /// The level with the given name (what `tracked_lock` calls name via
    /// their `ranks::` constant).
    #[must_use]
    pub fn lock_level_named(&self, name: &str) -> Option<&LockLevel> {
        self.lock_levels.iter().find(|l| l.name == name)
    }
}

fn take_str_array(table: &TomlTable, key: &str) -> Vec<String> {
    match table.get(key) {
        Some(TomlValue::StrArray(v)) => v.clone(),
        _ => Vec::new(),
    }
}

/// Parses and validates `audit.toml`.
///
/// # Errors
///
/// Fails on TOML outside the supported subset, on lock levels missing
/// required keys, on duplicate ranks, or on one field name mapped to
/// two levels.
pub fn parse_config(src: &str) -> Result<AuditConfig, ConfigError> {
    let doc = parse_toml(src)?;
    let mut config = AuditConfig::default();
    if let Some(table) = doc.tables.get("no_panic") {
        config.no_panic_paths = take_str_array(table, "paths");
        config.no_index_paths = take_str_array(table, "index_paths");
    }
    if let Some(table) = doc.tables.get("unsafe_code") {
        config.unsafe_allowed = take_str_array(table, "allowed");
        config.deny_header_ok = take_str_array(table, "deny_header_ok");
    }
    if let Some(levels) = doc.arrays.get("lock_order.level") {
        for table in levels {
            let Some(TomlValue::Int(rank)) = table.get("rank") else {
                return Err(err(0, "lock_order.level missing integer `rank`"));
            };
            let Some(TomlValue::Str(name)) = table.get("name") else {
                return Err(err(0, "lock_order.level missing string `name`"));
            };
            let fields = take_str_array(table, "fields");
            if fields.is_empty() {
                return Err(err(0, format!("lock level `{name}` declares no fields")));
            }
            config.lock_levels.push(LockLevel {
                rank: *rank,
                name: name.clone(),
                fields,
            });
        }
    }
    config.lock_levels.sort_by_key(|l| l.rank);
    for pair in config.lock_levels.windows(2) {
        if pair[0].rank == pair[1].rank {
            return Err(err(
                0,
                format!(
                    "lock levels `{}` and `{}` share rank {}",
                    pair[0].name, pair[1].name, pair[0].rank
                ),
            ));
        }
    }
    let mut seen_fields: BTreeMap<&str, &str> = BTreeMap::new();
    for level in &config.lock_levels {
        for field in &level.fields {
            if let Some(other) = seen_fields.insert(field.as_str(), level.name.as_str()) {
                return Err(err(
                    0,
                    format!(
                        "field `{field}` mapped to both `{other}` and `{}`",
                        level.name
                    ),
                ));
            }
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[no_panic]
paths = [
    "crates/store/src/net/",   # wire paths
    "crates/store/src/recorder.rs",
]
index_paths = ["crates/store/src/net/frame.rs"]

[unsafe_code]
allowed = ["crates/coding/src/gf256/simd.rs"]
deny_header_ok = ["coding"]

[[lock_order.level]]
rank = 0
name = "shard_map"
fields = ["map"]

[[lock_order.level]]
rank = 30
name = "key_state"
fields = ["state"]
"#;

    #[test]
    fn parses_the_manifest_shape() {
        let config = parse_config(SAMPLE).unwrap();
        assert_eq!(config.no_panic_paths.len(), 2);
        assert_eq!(config.no_index_paths, vec!["crates/store/src/net/frame.rs"]);
        assert_eq!(
            config.unsafe_allowed,
            vec!["crates/coding/src/gf256/simd.rs"]
        );
        assert_eq!(config.lock_levels.len(), 2);
        assert_eq!(config.lock_level_of("state").unwrap().rank, 30);
        assert_eq!(config.lock_level_of("map").unwrap().name, "shard_map");
        assert!(config.lock_level_of("unknown").is_none());
    }

    #[test]
    fn rejects_duplicate_ranks() {
        let src = "[[lock_order.level]]\nrank = 1\nname = \"a\"\nfields = [\"x\"]\n\
                   [[lock_order.level]]\nrank = 1\nname = \"b\"\nfields = [\"y\"]\n";
        assert!(parse_config(src).is_err());
    }

    #[test]
    fn rejects_field_mapped_twice() {
        let src = "[[lock_order.level]]\nrank = 1\nname = \"a\"\nfields = [\"x\"]\n\
                   [[lock_order.level]]\nrank = 2\nname = \"b\"\nfields = [\"x\"]\n";
        assert!(parse_config(src).is_err());
    }

    #[test]
    fn rejects_unsupported_values() {
        assert!(parse_toml("[t]\nx = 1.5\n").is_err());
        assert!(parse_toml("x = 1\n").is_err());
        assert!(parse_toml("[t]\nx = { a = 1 }\n").is_err());
    }

    #[test]
    fn comments_and_strings_interact() {
        let doc = parse_toml("[t]\nx = \"a # not a comment\" # real one\n").unwrap();
        assert_eq!(
            doc.tables["t"]["x"],
            TomlValue::Str("a # not a comment".into())
        );
    }
}
