//! Structured findings and the machine-readable report.
//!
//! Findings are `file:line` diagnostics with a rule id; the JSON
//! emitter is hand-rolled (the vendored serde is a stub) and produces
//! the artifact CI uploads.

use std::fmt::Write as _;

/// The rule that produced a finding — also the name accepted by
/// `// audit:allow(<rule>)` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Panicking construct in a tagged no-panic module.
    PanicPath,
    /// Slice/array indexing on a tagged total-decode path.
    IndexPath,
    /// `Ordering::Relaxed` without a justification annotation.
    AtomicsRelaxed,
    /// `Ordering::SeqCst` (suspicious-by-default) without justification.
    AtomicsSeqCst,
    /// `unsafe` outside the allowed files, or without a SAFETY comment.
    UnsafeConfinement,
    /// Nested lock acquisition inverting the declared hierarchy.
    LockOrder,
    /// A crate `lib.rs` missing its mandatory lint header.
    LintHeaders,
    /// A malformed `audit:allow` annotation (unknown rule or missing
    /// justification) — never suppressible.
    BadAnnotation,
}

impl Rule {
    /// The rule's stable string id (used in reports and annotations).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::PanicPath => "panic-path",
            Rule::IndexPath => "index-path",
            Rule::AtomicsRelaxed => "atomics-relaxed",
            Rule::AtomicsSeqCst => "atomics-seqcst",
            Rule::UnsafeConfinement => "unsafe-confinement",
            Rule::LockOrder => "lock-order",
            Rule::LintHeaders => "lint-headers",
            Rule::BadAnnotation => "bad-annotation",
        }
    }

    /// Every rule the analyzer knows, in report order.
    #[must_use]
    pub fn all() -> &'static [Rule] {
        &[
            Rule::PanicPath,
            Rule::IndexPath,
            Rule::AtomicsRelaxed,
            Rule::AtomicsSeqCst,
            Rule::UnsafeConfinement,
            Rule::LockOrder,
            Rule::LintHeaders,
            Rule::BadAnnotation,
        ]
    }

    /// Parses an annotation rule id. `bad-annotation` is excluded: a
    /// malformed annotation cannot be allowlisted.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all()
            .iter()
            .copied()
            .filter(|&r| r != Rule::BadAnnotation)
            .find(|r| r.id() == id)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: a rule violated at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One suppressed violation: the annotation that silenced it and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule the annotation allows.
    pub rule: Rule,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the suppressed construct.
    pub line: u32,
    /// The annotation's justification text.
    pub justification: String,
}

/// The outcome of one audit run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations — any entry fails the run.
    pub findings: Vec<Finding>,
    /// Violations silenced by a justified `audit:allow` annotation,
    /// kept in the artifact so suppressions stay reviewable.
    pub suppressions: Vec<Suppression>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run passed (no unsuppressed findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one rule.
    #[must_use]
    pub fn findings_for(&self, rule: Rule) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressions.extend(other.suppressions);
        self.files_scanned += other.files_scanned;
    }

    /// Sorts findings and suppressions by path, then line, then rule —
    /// a stable order for golden tests and diffable artifacts.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule.id()).cmp(&(&b.path, b.line, b.rule.id())));
        self.suppressions
            .sort_by(|a, b| (&a.path, a.line, a.rule.id()).cmp(&(&b.path, b.line, b.rule.id())));
    }

    /// Renders the machine-readable JSON report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{comma}",
                json_str(f.rule.id()),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            let comma = if i + 1 < self.suppressions.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"justification\": {}}}{comma}",
                json_str(s.rule.id()),
                json_str(&s.path),
                s.line,
                json_str(&s.justification)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_round_trip_shape() {
        let mut report = Report::default();
        report.findings.push(Finding {
            rule: Rule::PanicPath,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "`.unwrap()` in a no-panic module".into(),
        });
        report.files_scanned = 3;
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"panic-path\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"clean\": false"));
        assert!(!report.is_clean());
    }

    #[test]
    fn rule_ids_round_trip() {
        for &rule in Rule::all() {
            if rule == Rule::BadAnnotation {
                assert_eq!(Rule::from_id(rule.id()), None);
            } else {
                assert_eq!(Rule::from_id(rule.id()), Some(rule));
            }
        }
        assert_eq!(Rule::from_id("nonsense"), None);
    }
}
