//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! audit rules, with no `syn` (the build environment vendors stub
//! crates, so the analyzer cannot lean on a real parser).
//!
//! The lexer understands the parts of Rust where naive text matching
//! goes wrong: line and (nested) block comments, string / raw-string /
//! byte-string / char literals, lifetimes vs. char literals, raw
//! identifiers, and attributes. Rules then work on the token stream —
//! a `.unwrap()` inside a string literal or a doc comment is never a
//! finding, and an `audit:allow` annotation inside a string never
//! suppresses one.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers, with the
    /// `r#` prefix stripped).
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// A string, raw-string, or byte-string literal (content dropped).
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A numeric literal.
    Num,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// Identifier text (empty for non-identifier tokens).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Whether the token directly abuts the previous token (no
    /// whitespace or comment between them) — how `foo[` (an index) is
    /// told apart from `foo [` and from array types/literals.
    pub glued: bool,
    /// Whether the token sits inside an attribute (`#[...]` or
    /// `#![...]`), where brackets and idents are metadata, not code.
    pub in_attr: bool,
}

/// One comment (line or block), with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// Full comment text, delimiters stripped.
    pub text: String,
    /// Lines the comment spans (1 for line comments).
    pub span_lines: u32,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in source order.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Number of source lines.
    pub lines: u32,
}

impl Lexed {
    /// The set of lines that contain at least one non-attribute code
    /// token, as a sorted vector for binary search.
    #[must_use]
    pub fn code_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self
            .toks
            .iter()
            .filter(|t| !t.in_attr)
            .map(|t| t.line)
            .collect();
        lines.dedup();
        lines
    }

    /// The set of lines that contain any token at all (including
    /// attribute tokens), sorted and deduplicated.
    #[must_use]
    pub fn token_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self.toks.iter().map(|t| t.line).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one source file. Malformed input (unterminated literals)
/// never panics: the lexer consumes to end of file and returns what it
/// saw — the audit runs on code that already passed `rustc`, so this is
/// belt-and-braces, not a correctness requirement.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut glued = false;
    // Attribute tracking: depth of `[` nesting inside an attribute; 0
    // when outside. Entered on `#[` / `#![`, left when the matching `]`
    // closes.
    let mut attr_depth: u32 = 0;

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr) => {
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
                glued,
                in_attr: attr_depth > 0,
            });
            glued = true;
        };
    }

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            glued = false;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            while i < n && bytes[i] != '\n' {
                text.push(bytes[i]);
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
                span_lines: 1,
            });
            glued = false;
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                    text.push_str("/*");
                    continue;
                }
                if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    continue;
                }
                if bytes[i] == '\n' {
                    line += 1;
                }
                text.push(bytes[i]);
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
                span_lines: line - start_line + 1,
            });
            glued = false;
            continue;
        }
        // Raw strings and raw identifiers: r"..." / r#"..."# / r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            // Work out whether this starts a raw/byte literal.
            let mut j = i;
            let mut is_byte = false;
            if bytes[j] == 'b' {
                is_byte = true;
                j += 1;
            }
            let mut raw = false;
            if j < n && bytes[j] == 'r' {
                raw = true;
                j += 1;
            } else if is_byte {
                // b"..." or b'...' fall through to the quote handling
                // below with the prefix consumed.
            } else {
                raw = false;
            }
            if raw || is_byte {
                let mut hashes = 0usize;
                while j < n && bytes[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && bytes[j] == '"' && (raw || (is_byte && hashes == 0)) {
                    // Raw (or byte) string literal: scan to closing
                    // quote + hashes.
                    let start_line = line;
                    j += 1;
                    if raw {
                        loop {
                            if j >= n {
                                break;
                            }
                            if bytes[j] == '\n' {
                                line += 1;
                                j += 1;
                                continue;
                            }
                            if bytes[j] == '"' {
                                let mut k = 0usize;
                                while k < hashes && j + 1 + k < n && bytes[j + 1 + k] == '#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    j += 1 + hashes;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else {
                        // b"..." with escapes.
                        while j < n {
                            match bytes[j] {
                                '\\' => j += 2,
                                '"' => {
                                    j += 1;
                                    break;
                                }
                                '\n' => {
                                    line += 1;
                                    j += 1;
                                }
                                _ => j += 1,
                            }
                        }
                    }
                    i = j;
                    push_tok!(TokKind::Str, String::new(), start_line);
                    continue;
                }
                if raw && hashes > 0 && j < n && is_ident_start(bytes[j]) && !is_byte {
                    // Raw identifier r#ident.
                    let start_line = line;
                    let mut text = String::new();
                    while j < n && is_ident_continue(bytes[j]) {
                        text.push(bytes[j]);
                        j += 1;
                    }
                    i = j;
                    push_tok!(TokKind::Ident, text, start_line);
                    continue;
                }
                if is_byte && hashes == 0 && j < n && bytes[j] == '\'' {
                    // Byte literal b'x'.
                    let start_line = line;
                    j += 1;
                    while j < n {
                        match bytes[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    i = j;
                    push_tok!(TokKind::Char, String::new(), start_line);
                    continue;
                }
                // Not a raw form after all: fall through to plain ident
                // handling for the leading r/b.
            }
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let start_line = line;
            let mut text = String::new();
            while i < n && is_ident_continue(bytes[i]) {
                text.push(bytes[i]);
                i += 1;
            }
            push_tok!(TokKind::Ident, text, start_line);
            continue;
        }
        // Numbers (we only need to not mistake them for anything else).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < n && (is_ident_continue(bytes[i]) || bytes[i] == '.') {
                // Stop a `0..10` range from eating the second dot.
                if bytes[i] == '.' && i + 1 < n && bytes[i + 1] == '.' {
                    break;
                }
                i += 1;
            }
            push_tok!(TokKind::Num, String::new(), start_line);
            continue;
        }
        // Strings.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            push_tok!(TokKind::Str, String::new(), start_line);
            continue;
        }
        // Lifetimes vs. char literals.
        if c == '\'' {
            let start_line = line;
            // `'a`, `'static`, `'_` with no closing quote → lifetime.
            if i + 1 < n && (is_ident_start(bytes[i + 1])) {
                // Peek past the identifier; a closing quote makes it a
                // char literal ('a' vs 'a).
                let mut j = i + 1;
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                if j < n && bytes[j] == '\'' && j == i + 2 {
                    // 'x' — single-char literal.
                    i = j + 1;
                    push_tok!(TokKind::Char, String::new(), start_line);
                    continue;
                }
                i = j;
                push_tok!(TokKind::Lifetime, String::new(), start_line);
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\\', '{'.
            i += 1;
            while i < n {
                match bytes[i] {
                    '\\' => i += 2,
                    '\'' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            push_tok!(TokKind::Char, String::new(), start_line);
            continue;
        }
        // Attribute entry/exit bookkeeping, then plain punctuation.
        if c == '#' {
            // `#[` or `#![` opens an attribute.
            let next = if i + 1 < n { bytes[i + 1] } else { ' ' };
            let next2 = if i + 2 < n { bytes[i + 2] } else { ' ' };
            if next == '[' || (next == '!' && next2 == '[') {
                push_tok!(TokKind::Punct('#'), String::new(), line);
                // The opening `#` belongs to the attribute too, so an
                // attribute-only line is not a "code line".
                if let Some(t) = out.toks.last_mut() {
                    t.in_attr = true;
                }
                i += 1;
                attr_depth = attr_depth.max(1);
                continue;
            }
        }
        if attr_depth > 0 {
            if c == '[' {
                attr_depth += 1;
            } else if c == ']' {
                attr_depth -= 1;
                if attr_depth == 1 {
                    // The `[` that entered level 1 was the attribute's
                    // own bracket; this `]` closes it.
                    attr_depth = 0;
                    push_tok!(TokKind::Punct(']'), String::new(), line);
                    // Re-mark: the closing bracket itself belongs to
                    // the attribute.
                    if let Some(t) = out.toks.last_mut() {
                        t.in_attr = true;
                    }
                    i += 1;
                    continue;
                }
            }
        }
        push_tok!(TokKind::Punct(c), String::new(), line);
        i += 1;
    }
    out.lines = line;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let l = lex("let x = \"a.unwrap()\"; // b.unwrap()\n/* c.unwrap() */ y");
        assert_eq!(idents(&l), vec!["let", "x", "y"]);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("b.unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(idents(&l), vec!["x"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex("r#\"raw \"quote\" body\"# r#type b\"bytes\" b'x'");
        assert_eq!(idents(&l), vec!["type"]);
        let kinds: Vec<TokKind> = l.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![TokKind::Str, TokKind::Ident, TokKind::Str, TokKind::Char]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'q'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn glued_marks_adjacency() {
        let l = lex("a[0] b [1]");
        // `[` after `a` is glued; `[` after `b ` is not.
        let brackets: Vec<bool> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('['))
            .map(|t| t.glued)
            .collect();
        assert_eq!(brackets, vec![true, false]);
    }

    #[test]
    fn attributes_are_marked() {
        let l = lex("#[cfg(test)]\nmod tests {}");
        let attr_idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.in_attr)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(attr_idents, vec!["cfg", "test"]);
        let code_idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && !t.in_attr)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(code_idents, vec!["mod", "tests"]);
    }

    #[test]
    fn lines_are_tracked() {
        let l = lex("a\nb\n\"multi\nline\"\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 5]);
    }
}
