//! The `rsb-audit` command-line interface.
//!
//! ```text
//! cargo run -p rsb-audit -- --workspace [--json report.json]
//! cargo run -p rsb-audit -- crates/store/src/shard.rs
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/config/IO error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    files: Vec<PathBuf>,
}

const USAGE: &str = "\
usage: rsb-audit [--workspace] [--root DIR] [--config PATH] [--json PATH] [FILE...]

  --workspace    audit every crate under <root>/crates (default when no FILEs)
  --root DIR     repository root (default: .)
  --config PATH  manifest path (default: <root>/audit.toml)
  --json PATH    write the machine-readable report to PATH ('-' for stdout)
  FILE...        audit just these files (lint-header rule skipped)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        config: None,
        json: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a value")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if args.files.is_empty() {
        args.workspace = true;
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("audit.toml"));
    let config_src = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = rsb_audit::config::parse_config(&config_src).map_err(|e| e.to_string())?;

    let report = if args.workspace {
        rsb_audit::run_workspace_audit(&args.root, &config)
    } else {
        rsb_audit::run_files_audit(&args.root, &args.files, &config)
    }
    .map_err(|e| format!("audit failed: {e}"))?;

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "audit: {} files scanned, {} finding(s), {} suppression(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressions.len()
    );

    if let Some(json_path) = &args.json {
        let json = report.to_json();
        if json_path.as_os_str() == "-" {
            print!("{json}");
        } else {
            std::fs::write(json_path, json)
                .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        }
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("rsb-audit: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
