//! Golden-file tests: each fixture under `tests/fixtures/` is audited
//! against the real repo manifest (`audit.toml`) and must produce
//! exactly the findings its `//~ <rule>` markers declare, at exactly
//! those lines. `//~v <rule>` anchors the expectation one line below
//! the marker (for findings on annotation comments themselves).
//!
//! The fixtures are excluded from workspace walks (`skip_dir` skips
//! `fixtures/` directories), so the deliberately dirty files never leak
//! into `--workspace` runs — `workspace_is_clean` below proves it.

use rsb_audit::config::{parse_config, AuditConfig};
use rsb_audit::report::{Report, Rule};
use rsb_audit::{audit_source, run_workspace_audit};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn manifest() -> AuditConfig {
    let src = std::fs::read_to_string(repo_root().join("audit.toml"))
        .expect("repo-root audit.toml is readable");
    parse_config(&src).expect("audit.toml parses")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The `(rule, line)` expectations a fixture's `//~` markers declare.
fn expected_markers(src: &str) -> Vec<(&'static str, u32)> {
    let mut want = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = u32::try_from(idx).expect("fixture fits in u32") + 1;
        let mut rest = line;
        while let Some(pos) = rest.find("//~") {
            let tail = &rest[pos + 3..];
            let (bump, tail) = match tail.strip_prefix('v') {
                Some(t) => (1, t),
                None => (0, tail),
            };
            let id = tail
                .split_whitespace()
                .next()
                .expect("`//~` marker names a rule");
            // Not `Rule::from_id`: that one deliberately excludes
            // `bad-annotation` (it cannot be allowlisted), but markers
            // may expect it.
            let rule = Rule::all()
                .iter()
                .copied()
                .find(|r| r.id() == id)
                .unwrap_or_else(|| panic!("`//~` marker names unknown rule `{id}`"));
            want.push((rule.id(), lineno + bump));
            rest = tail;
        }
    }
    want.sort_unstable();
    want
}

/// Audits `fixture_name` as if it lived at `rel_path` and asserts the
/// findings match the fixture's markers exactly.
fn check_golden(rel_path: &str, fixture_name: &str) -> Report {
    let src = fixture(fixture_name);
    let report = audit_source(rel_path, &src, &manifest());
    let want = expected_markers(&src);
    let mut got: Vec<(&'static str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.id(), f.line))
        .collect();
    got.sort_unstable();
    assert_eq!(
        got, want,
        "{fixture_name} (as {rel_path}): findings (left) diverge from `//~` markers (right)"
    );
    report
}

#[test]
fn panic_paths_bad_flagged_at_exact_lines() {
    let report = check_golden("crates/store/src/net/fixture.rs", "panic_paths_bad.rs");
    assert_eq!(report.findings.len(), 6, "all six panicking constructs");
}

#[test]
fn panic_paths_good_passes_with_suppressions() {
    let report = check_golden("crates/store/src/net/fixture.rs", "panic_paths_good.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressions.len(), 4, "one suppression per allow");
}

#[test]
fn index_paths_bad_flagged_at_exact_lines() {
    // Scoped as the decode file itself so the `index_paths` subset
    // applies on top of the `no_panic` prefix.
    let report = check_golden("crates/store/src/net/frame.rs", "index_paths_bad.rs");
    assert_eq!(report.findings_for(Rule::IndexPath).len(), 2);
    assert_eq!(report.findings_for(Rule::PanicPath).len(), 2);
}

#[test]
fn atomics_bad_flagged_at_exact_lines() {
    // The atomics rules are path-unscoped; any location works.
    check_golden("crates/store/src/fixture.rs", "atomics_bad.rs");
}

#[test]
fn atomics_good_passes_with_suppressions() {
    let report = check_golden("crates/store/src/fixture.rs", "atomics_good.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressions.len(), 2);
}

#[test]
fn unsafe_in_simd_scope_needs_safety_comments() {
    // As the allowed kernel file: only the SAFETY-less `unsafe` (the
    // marked line) is a finding; the commented one passes.
    let report = check_golden("crates/coding/src/gf256/simd.rs", "unsafe_bad.rs");
    assert!(report.findings[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_outside_simd_scope_is_always_flagged() {
    // As an ordinary store file: both `unsafe` blocks are findings,
    // SAFETY comment or not.
    let src = fixture("unsafe_bad.rs");
    let report = audit_source("crates/store/src/fixture.rs", &src, &manifest());
    let unsafe_findings = report.findings_for(Rule::UnsafeConfinement);
    assert_eq!(unsafe_findings.len(), 2);
    for f in unsafe_findings {
        assert!(f.message.contains("outside the audited SIMD kernels"));
    }
}

#[test]
fn unsafe_good_passes_in_simd_scope() {
    let report = check_golden("crates/coding/src/gf256/simd.rs", "unsafe_good.rs");
    assert!(report.is_clean());
}

#[test]
fn lock_order_inversions_flagged_at_exact_lines() {
    let report = check_golden("crates/store/src/fixture.rs", "lock_order_bad.rs");
    assert_eq!(report.findings.len(), 3);
    // The raw and tracked inversions name both ends of the violation…
    assert!(report.findings[0].message.contains("while holding"));
    assert!(report.findings[1].message.contains("while holding"));
    // …and the unknown rank constant is its own finding.
    assert!(report.findings[2].message.contains("MYSTERY_LOCK"));
}

#[test]
fn lock_order_good_passes_with_annotated_inversion() {
    let report = check_golden("crates/store/src/fixture.rs", "lock_order_good.rs");
    assert!(report.is_clean());
    assert_eq!(report.suppressions.len(), 1, "the annotated inversion");
    assert_eq!(report.suppressions[0].rule, Rule::LockOrder);
}

#[test]
fn malformed_annotations_are_findings() {
    let report = check_golden("crates/store/src/fixture.rs", "bad_annotation.rs");
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn lint_headers_run_on_mini_workspace() {
    // A self-contained two-crate workspace under the fixtures dir: one
    // crate with both headers, one with neither.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint_ws");
    let report = run_workspace_audit(&root, &manifest()).expect("mini workspace audits");
    assert_eq!(report.files_scanned, 2);
    let lint = report.findings_for(Rule::LintHeaders);
    assert_eq!(lint.len(), 2, "missing forbid + missing missing_docs");
    for f in &lint {
        assert_eq!(f.path, "crates/bare/src/lib.rs");
        assert_eq!(f.line, 1);
    }
    assert!(lint[0].message.contains("forbid"));
    assert!(lint[1].message.contains("missing_docs"));
}

/// The whole point of the fixtures: the real tree must audit clean.
/// (The deliberately dirty fixture files are skipped by the walk.)
#[test]
fn workspace_is_clean() {
    let report = run_workspace_audit(repo_root(), &manifest()).expect("workspace audits");
    assert!(
        report.files_scanned > 100,
        "walk found only {} files — did the layout move?",
        report.files_scanned
    );
    let listing: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule.id(), f.message))
        .collect();
    assert!(
        report.is_clean(),
        "workspace audit must be clean, found:\n{}",
        listing.join("\n")
    );
}

/// Parity with the retired `scripts/static_audit.py`: every check the
/// Python script performed maps onto an rsb-audit rule, and the fixture
/// runs above prove each one fires. This is the superset argument that
/// justified deleting the script:
///
/// | static_audit.py check        | rsb-audit rule        |
/// |------------------------------|-----------------------|
/// | unsafe outside simd.rs       | `unsafe-confinement`  |
/// | frame.rs unwrap/expect       | `panic-path`          |
/// | frame.rs direct indexing     | `index-path`          |
/// | crate lint headers           | `lint-headers`        |
///
/// (panic-path beyond frame.rs, the atomics rules, lock-order, and
/// bad-annotation have no Python counterpart — strict superset.)
#[test]
fn parity_superset_of_static_audit_py() {
    let config = manifest();

    // 1. `unsafe` confinement, anywhere in the tree.
    let r = audit_source(
        "crates/store/src/x.rs",
        "fn f() { unsafe { g() } }\n",
        &config,
    );
    assert_eq!(r.findings_for(Rule::UnsafeConfinement).len(), 1);

    // 2. Decode-path totality: panic and indexing on frame.rs.
    let r = audit_source(
        "crates/store/src/net/frame.rs",
        "fn d(b: &[u8]) -> u8 { b.first().unwrap(); b[0] }\n",
        &config,
    );
    assert_eq!(r.findings_for(Rule::PanicPath).len(), 1);
    assert_eq!(r.findings_for(Rule::IndexPath).len(), 1);

    // 3. Lint headers — exercised end-to-end on the mini workspace.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint_ws");
    let r = run_workspace_audit(&root, &config).expect("mini workspace audits");
    assert_eq!(r.findings_for(Rule::LintHeaders).len(), 2);
}
