//! Known-good lock-order fixture: nestings in strictly increasing rank
//! (shard_map/0 → slot_table/20 → key_state/30, completion/40 after
//! key_state via the wrapper), plus one deliberate inversion carrying
//! an `audit:allow` justification. Zero findings, one suppression.

fn ordered_raw(&self) {
    let m = self.map.lock();
    let s = self.slots.read();
    let st = self.state.lock();
    drop(st);
    drop(s);
    drop(m);
}

fn ordered_tracked(&self) {
    let st = tracked_lock(ranks::KEY_STATE, "key_state", || self.state.lock());
    let c = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
    drop(c);
    drop(st);
}

fn annotated_inversion(&self) {
    let q = self.ready.lock();
    // audit:allow(lock-order) — fixture: a documented, deliberate
    // inversion (the guard is release-before-reacquire in real code).
    let st = self.state.lock();
    drop(st);
    drop(q);
}
