//! Known-bad totality fixture for the wire-decode path. Audited under
//! the `index_paths` entry (`crates/store/src/net/frame.rs`), where
//! bare indexing is a finding on top of the panic-path rule. This file
//! replicates exactly what `scripts/static_audit.py` used to catch on
//! the decode path: `.unwrap()`, `.expect(`, and direct indexing.

fn decode(buf: &[u8]) -> u32 {
    let tag = buf[0]; //~ index-path
    let len = buf.get(1..5).unwrap(); //~ panic-path
    let body = buf.get(5..).expect("body present"); //~ panic-path
    let last = body[body.len() - 1]; //~ index-path
    u32::from(tag) + u32::from(last) + len.len() as u32
}

fn not_indexing(bytes: &[u8]) -> Vec<u8> {
    // Array types and literals do not count as indexing.
    let arr: [u8; 4] = [0, 1, 2, 3];
    let mut out = Vec::from(arr);
    out.extend_from_slice(bytes);
    out
}
