//! Known-bad unsafe-confinement fixture. Audited once as an ordinary
//! store file (where any `unsafe` is a finding — the check
//! `scripts/static_audit.py` used to do) and once as the allowed SIMD
//! kernel file, where `unsafe` without a `// SAFETY:` comment is still
//! a finding. The markers below describe the SIMD-scoped run; the
//! ordinary-scoped run must flag both `unsafe` lines.

fn kernel(bytes: &mut [u8]) {
    unsafe { transmute_rows(bytes) } //~ unsafe-confinement

    // SAFETY: fixture — the row pointer is derived from a live slice
    // and the lanes stay within its bounds.
    unsafe { gather_rows(bytes) }
}
