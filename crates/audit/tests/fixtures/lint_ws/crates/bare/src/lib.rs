//! A crate root missing both mandatory lint headers — the lint-headers
//! rule must report each one, anchored at line 1.

pub fn noop() {}
