//! A crate root carrying both mandatory lint headers — must pass the
//! lint-headers rule untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Nothing to see here.
pub fn noop() {}
