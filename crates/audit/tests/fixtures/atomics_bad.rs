//! Known-bad atomics-ordering fixture: an unjustified
//! `Ordering::Relaxed` and an unjustified `Ordering::SeqCst`, each
//! flagged at exactly the tagged line. Acquire/release orderings are
//! never findings — they state a protocol on their own.

use std::sync::atomic::{AtomicU64, Ordering};

fn unjustified(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed); //~ atomics-relaxed
    counter.load(Ordering::SeqCst) //~ atomics-seqcst
}

fn protocol(flag: &AtomicU64) -> u64 {
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}
