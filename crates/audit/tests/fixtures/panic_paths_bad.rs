//! Known-bad panic-path fixture. Audited as if it lived under
//! `crates/store/src/net/` (a `no_panic` prefix); every marker-tagged
//! line must be flagged at exactly that line, and nothing else may be
//! flagged.

fn parse(input: Option<u32>) -> u32 {
    let a = input.unwrap(); //~ panic-path
    let b = input.expect("present"); //~ panic-path
    if a > b {
        panic!("a exceeds b"); //~ panic-path
    }
    match a {
        0 => unreachable!(), //~ panic-path
        1 => todo!(), //~ panic-path
        2 => unimplemented!(), //~ panic-path
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_modules_are_exempt() {
        // No finding here: panicking in tests is the normal idiom.
        let _ = Some(1).unwrap();
        assert!(true, "assertions in tests are fine");
    }
}
