//! Known-bad lock-order fixture: hierarchy inversions against the real
//! `audit.toml` manifest (`ready` = ready_queue/60, `state` =
//! key_state/30, `slots` = slot_table/20), through both the raw
//! `field.lock()` form and the `tracked_lock` wrapper, plus a
//! `tracked_lock` call naming a rank constant the manifest does not
//! know.

fn inverted_raw(&self) {
    let q = self.ready.lock();
    let st = self.state.lock(); //~ lock-order
    drop(st);
    drop(q);
}

fn inverted_tracked(&self) {
    let q = tracked_lock(ranks::READY_QUEUE, "ready_queue", || self.ready.lock());
    let s = tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read()); //~ lock-order
    drop(s);
    drop(q);
}

fn unknown_rank(&self) {
    let g = tracked_lock(ranks::MYSTERY_LOCK, "mystery", || self.mystery.lock()); //~ lock-order
    drop(g);
}
