//! Known-good atomics-ordering fixture: the same accesses as the bad
//! twin, each justified. Must produce zero findings and one
//! suppression per annotation.

use std::sync::atomic::{AtomicU64, Ordering};

fn justified(counter: &AtomicU64) -> u64 {
    // audit:allow(atomics-relaxed) — fixture: pure statistics counter,
    // nothing is published through it.
    counter.fetch_add(1, Ordering::Relaxed);
    // audit:allow(atomics-seqcst) — fixture: a documented total-order
    // requirement (eventcount-style sleeper handshake).
    counter.load(Ordering::SeqCst)
}
