//! Known-good panic-path fixture: the same constructs as the bad twin,
//! each carrying an `audit:allow` justification. Audited under a
//! `no_panic` prefix it must produce zero findings and one suppression
//! per annotated line.

fn parse(input: Option<u32>) -> u32 {
    // audit:allow(panic-path) — fixture: `input` is checked by the caller.
    let a = input.unwrap();
    // audit:allow(panic-path) — fixture: same invariant as above.
    let b = input.expect("present");
    if a > b {
        // audit:allow(panic-path) — fixture: documented impossibility.
        panic!("a exceeds b");
    }
    match a {
        // audit:allow(panic-path) — fixture: zero is filtered upstream.
        0 => unreachable!(),
        _ => a.saturating_add(b),
    }
}
