//! Malformed-annotation fixture: `audit:allow` comments that name an
//! unknown rule or omit the justification are findings themselves —
//! suppressions must never rot silently.

fn sloppy(input: Option<u32>) -> u32 {
    // audit:allow(not-a-rule) — the rule name is wrong //~ bad-annotation
    let a = input.unwrap_or(0);
    //~v bad-annotation
    // audit:allow(panic-path)
    let b = input.unwrap_or(1);
    a + b
}
