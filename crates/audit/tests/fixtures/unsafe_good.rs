//! Known-good unsafe-confinement fixture: audited as the allowed SIMD
//! kernel file, every `unsafe` sits under a `// SAFETY:` comment.
//! Zero findings.

fn kernel(bytes: &mut [u8]) {
    // SAFETY: fixture — the intrinsic reads exactly one 16-byte lane
    // and the caller guarantees `bytes.len() >= 16`.
    unsafe { load_lane(bytes) }

    // SAFETY: fixture — same bound as above, write side.
    unsafe {
        store_lane(bytes);
    }
}
