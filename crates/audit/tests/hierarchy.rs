//! Cross-checks the two declarations of the lock hierarchy: the
//! `[[lock_order.level]]` manifest in `audit.toml` (what the static
//! rule enforces) and `rsb_registers::lockorder::rank_table()` (what
//! the runtime checker enforces). They must agree exactly, or the two
//! checkers would silently drift apart.

use rsb_audit::config::parse_config;
use rsb_registers::lockorder::rank_table;

fn manifest() -> rsb_audit::config::AuditConfig {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let src = std::fs::read_to_string(format!("{root}/audit.toml"))
        .expect("repo-root audit.toml is readable");
    parse_config(&src).expect("audit.toml parses")
}

#[test]
fn audit_toml_and_rank_table_agree() {
    let config = manifest();
    let table = rank_table();
    assert_eq!(
        config.lock_levels.len(),
        table.len(),
        "audit.toml declares {} levels; lockorder::rank_table() has {}",
        config.lock_levels.len(),
        table.len()
    );
    for (level, &(rank, name)) in config.lock_levels.iter().zip(table) {
        assert_eq!(
            (level.rank, level.name.as_str()),
            (rank, name),
            "level mismatch between audit.toml and lockorder::rank_table()"
        );
    }
}

#[test]
fn rank_constants_spell_level_names() {
    // The static rule resolves `tracked_lock(ranks::X, …)` by
    // lowercasing the constant name, so every level name must be the
    // lowercase of a valid Rust identifier (no hyphens, no spaces).
    for level in manifest().lock_levels {
        assert!(
            level
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "level name `{}` cannot round-trip through a `ranks::` constant",
            level.name
        );
    }
}
