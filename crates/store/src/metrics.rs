//! Per-shard and aggregate service metrics.
//!
//! Operation/byte counters are lock-free atomics bumped by the submit
//! path and the driver threads; storage occupancy is read from the
//! shards' storage-cost-accounted simulations, so the paper's space
//! bounds are observable on the live service.

use rsb_fpsm::{OpResult, StorageCost};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why the eviction machinery snapshotted a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionCause {
    /// The caller invoked [`Store::evict_quiescent`](crate::Store::evict_quiescent).
    Manual,
    /// The governor's idle-time sweep found the key quiescent past the
    /// [`EvictionPolicy::IdleAfter`](crate::EvictionPolicy::IdleAfter)
    /// threshold.
    Idle,
    /// The governor's occupancy trigger evicted the key (coldest-first)
    /// to get back under the low watermark.
    Occupancy,
}

/// Latency histogram buckets: 64 power-of-two octaves × 4 sub-buckets
/// (log-linear, ~±12.5% resolution) — enough to separate a cache-hit
/// read from one that pays a rematerialization, at tail quantiles.
const HIST_SUBS: usize = 4;
const HIST_BUCKETS: usize = 64 * HIST_SUBS;

fn hist_bucket(ns: u64) -> usize {
    let n = ns.max(1);
    let exp = 63 - n.leading_zeros() as usize;
    let sub = if exp >= 2 {
        ((n >> (exp - 2)) & 0b11) as usize
    } else {
        0
    };
    exp * HIST_SUBS + sub
}

fn hist_representative_ns(bucket: usize) -> f64 {
    let exp = bucket / HIST_SUBS;
    let sub = bucket % HIST_SUBS;
    if exp < 2 {
        return (1u64 << exp) as f64 * 1.5;
    }
    // Bucket covers [(4+sub)·2^(exp-2), (5+sub)·2^(exp-2)); report the
    // midpoint.
    ((4 + sub) as f64 + 0.5) * (1u64 << (exp - 2)) as f64
}

/// Lock-free log-linear latency histogram (nanoseconds).
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram").finish_non_exhaustive()
    }
}

impl AtomicHistogram {
    pub(crate) fn record(&self, ns: u64) {
        self.buckets[hist_bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A snapshot of a latency histogram, with quantile queries.
///
/// Buckets are log-linear (power-of-two octaves with 4 sub-buckets), so
/// quantiles carry ~±12.5% resolution — plenty to tell a hit read from
/// one that paid a rematerialization, while recording stays a single
/// relaxed atomic increment on the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
}

impl LatencyHistogram {
    /// Records one latency sample directly (single-threaded recording —
    /// what the load harness uses; the store's own hot path records
    /// through lock-free atomics and only snapshots into this type).
    pub fn record_ns(&mut self, ns: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.counts[hist_bucket(ns)] += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram (for cross-shard aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.counts.is_empty() {
            self.counts.clone_from(&other.counts);
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The `p`-quantile latency in nanoseconds (`p` in `[0, 1]`), or
    /// `None` when the histogram is empty.
    pub fn quantile_ns(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(hist_representative_ns(bucket));
            }
        }
        None
    }

    /// The `p`-quantile in microseconds, or 0.0 when empty (table-friendly).
    pub fn quantile_us(&self, p: f64) -> f64 {
        self.quantile_ns(p).unwrap_or(0.0) / 1e3
    }
}

/// Lock-free counters one shard's submit path and driver bump.
#[derive(Debug, Default)]
pub(crate) struct AtomicCounters {
    reads_submitted: AtomicU64,
    writes_submitted: AtomicU64,
    reads_completed: AtomicU64,
    writes_completed: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    rejected: AtomicU64,
    steals: AtomicU64,
    stolen: AtomicU64,
    truncated_records: AtomicU64,
    rematerialized: AtomicU64,
    evicted_manual: AtomicU64,
    evicted_idle: AtomicU64,
    evicted_occupancy: AtomicU64,
    read_hit_ns: AtomicHistogram,
    read_remat_ns: AtomicHistogram,
}

impl AtomicCounters {
    pub(crate) fn note_read_submitted(&self) {
        self.reads_submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_write_submitted(&self, payload_bytes: u64) {
        self.writes_submitted.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(payload_bytes, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completion(&self, result: &OpResult) {
        match result {
            OpResult::Read(v) => {
                self.reads_completed.fetch_add(1, Ordering::Relaxed);
                self.bytes_read.fetch_add(v.len() as u64, Ordering::Relaxed);
            }
            OpResult::Write => {
                self.writes_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn note_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stolen(&self) {
        self.stolen.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_truncated(&self, records: u64) {
        if records > 0 {
            self.truncated_records.fetch_add(records, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_rematerialized(&self) {
        self.rematerialized.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_eviction(&self, cause: EvictionCause) {
        let counter = match cause {
            EvictionCause::Manual => &self.evicted_manual,
            EvictionCause::Idle => &self.evicted_idle,
            EvictionCause::Occupancy => &self.evicted_occupancy,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed read's end-to-end latency, bucketed by whether
    /// its submission had to rematerialize an evicted key.
    pub(crate) fn note_read_latency(&self, ns: u64, rematerialized: bool) {
        if rematerialized {
            self.read_remat_ns.record(ns);
        } else {
            self.read_hit_ns.record(ns);
        }
    }

    pub(crate) fn read_hit_histogram(&self) -> LatencyHistogram {
        self.read_hit_ns.snapshot()
    }

    pub(crate) fn read_remat_histogram(&self) -> LatencyHistogram {
        self.read_remat_ns.snapshot()
    }

    pub(crate) fn snapshot(&self) -> OpCounters {
        OpCounters {
            reads_submitted: self.reads_submitted.load(Ordering::Relaxed),
            writes_submitted: self.writes_submitted.load(Ordering::Relaxed),
            reads_completed: self.reads_completed.load(Ordering::Relaxed),
            writes_completed: self.writes_completed.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            truncated_records: self.truncated_records.load(Ordering::Relaxed),
            rematerialized: self.rematerialized.load(Ordering::Relaxed),
            evicted_manual: self.evicted_manual.load(Ordering::Relaxed),
            evicted_idle: self.evicted_idle.load(Ordering::Relaxed),
            evicted_occupancy: self.evicted_occupancy.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one shard's (or the whole store's) operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Reads accepted by the submit path.
    pub reads_submitted: u64,
    /// Writes accepted by the submit path.
    pub writes_submitted: u64,
    /// Reads whose result was delivered.
    pub reads_completed: u64,
    /// Writes whose ack was delivered.
    pub writes_completed: u64,
    /// Payload bytes returned by completed reads.
    pub bytes_read: u64,
    /// Payload bytes accepted by submitted writes.
    pub bytes_written: u64,
    /// Submissions the underlying simulation rejected.
    pub rejected: u64,
    /// Ready keys this shard's driver executed from *other* shards'
    /// queues (work-stealing, attributed to the thief's home shard).
    pub steals: u64,
    /// Ready keys of this shard executed by *other* shards' drivers.
    pub stolen: u64,
    /// Operation records dropped by history compaction.
    pub truncated_records: u64,
    /// Evicted keys brought back by a later operation.
    pub rematerialized: u64,
    /// Evictions performed by an explicit
    /// [`Store::evict_quiescent`](crate::Store::evict_quiescent) call.
    pub evicted_manual: u64,
    /// Evictions performed by the governor's idle-time sweep.
    pub evicted_idle: u64,
    /// Evictions performed by the governor's occupancy trigger.
    pub evicted_occupancy: u64,
}

impl OpCounters {
    /// Completed operations of both kinds.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Evictions of every cause.
    pub fn evictions(&self) -> u64 {
        self.evicted_manual + self.evicted_idle + self.evicted_occupancy
    }

    /// Accumulates another snapshot (for aggregation).
    pub fn absorb(&mut self, other: &OpCounters) {
        self.reads_submitted += other.reads_submitted;
        self.writes_submitted += other.writes_submitted;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.rejected += other.rejected;
        self.steals += other.steals;
        self.stolen += other.stolen;
        self.truncated_records += other.truncated_records;
        self.rematerialized += other.rematerialized;
        self.evicted_manual += other.evicted_manual;
        self.evicted_idle += other.evicted_idle;
        self.evicted_occupancy += other.evicted_occupancy;
    }
}

/// One shard's metrics snapshot.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index within the store.
    pub shard: usize,
    /// The register emulation the shard runs.
    pub protocol: &'static str,
    /// Keys (registers) materialized on the shard so far.
    pub keys: usize,
    /// Operation counters.
    pub ops: OpCounters,
    /// Live storage occupancy across the shard's registers
    /// (the paper's Definition-2 cost, summed over keys).
    pub occupancy: StorageCost,
    /// Sum of each register's peak total storage in bits — an upper
    /// bound on the shard's true simultaneous peak.
    pub peak_register_bits: u64,
    /// Operation records currently held across the shard's registers
    /// (retained frontier + live tail; what [`HistoryPolicy`] bounds).
    ///
    /// [`HistoryPolicy`]: crate::HistoryPolicy
    pub live_records: u64,
    /// Keys currently evicted to snapshots (counted in `keys` too).
    pub evicted_keys: usize,
    /// Bits held by evicted keys' snapshots (not part of `occupancy`,
    /// which covers live simulations only).
    pub snapshot_bits: u64,
    /// Keys waiting in the shard's ready queue right now.
    pub ready_keys: usize,
    /// The shard's incrementally-maintained live-occupancy counter — the
    /// cheap value the eviction governor's occupancy trigger fires on.
    /// At quiescence it must equal `occupancy.total()` (asserted in
    /// tests); mid-traffic the two may be momentarily skewed because
    /// they are sampled at different instants.
    pub governed_bits: u64,
    /// End-to-end latency of completed reads whose key was live at
    /// submission.
    pub read_hit_latency: LatencyHistogram,
    /// End-to-end latency of completed reads whose submission had to
    /// rematerialize an evicted key first.
    pub read_remat_latency: LatencyHistogram,
}

/// A whole-store metrics snapshot.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardMetrics>,
}

impl StoreMetrics {
    /// Aggregate operation counters over all shards.
    pub fn totals(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for s in &self.shards {
            total.absorb(&s.ops);
        }
        total
    }

    /// Aggregate live storage occupancy in bits.
    pub fn occupancy_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.occupancy.total()).sum()
    }

    /// Aggregate per-register peak storage bits.
    pub fn peak_register_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.peak_register_bits).sum()
    }

    /// Total keys materialized across shards.
    pub fn keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Total live operation records across shards (what the history
    /// policy bounds under sustained traffic).
    pub fn live_records(&self) -> u64 {
        self.shards.iter().map(|s| s.live_records).sum()
    }

    /// Keys currently evicted to snapshots, across shards.
    pub fn evicted_keys(&self) -> usize {
        self.shards.iter().map(|s| s.evicted_keys).sum()
    }

    /// Bits held by evicted keys' snapshots, across shards.
    pub fn snapshot_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot_bits).sum()
    }

    /// Merged hit-read latency histogram across shards.
    pub fn read_hit_latency(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.read_hit_latency);
        }
        out
    }

    /// Merged rematerialize-read latency histogram across shards.
    pub fn read_remat_latency(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.read_remat_latency);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotonic_and_quantiles_sane() {
        let mut prev = 0;
        for ns in 1..4096u64 {
            let b = hist_bucket(ns);
            assert!(b >= prev, "bucket must be monotonic in ns at {ns}");
            prev = b;
        }
        let h = AtomicHistogram::default();
        for _ in 0..90 {
            h.record(1_000); // ~1 µs
        }
        for _ in 0..10 {
            h.record(1_000_000); // ~1 ms
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.quantile_ns(0.50).unwrap();
        let p99 = snap.quantile_ns(0.99).unwrap();
        assert!((800.0..=1300.0).contains(&p50), "p50 ≈ 1µs, got {p50} ns");
        assert!(
            (800_000.0..=1_300_000.0).contains(&p99),
            "p99 ≈ 1ms, got {p99} ns"
        );
        assert!(LatencyHistogram::default().quantile_ns(0.5).is_none());
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = AtomicHistogram::default();
        let b = AtomicHistogram::default();
        a.record(100);
        b.record(100);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        // Representative of a bucket stays within its log-linear bounds.
        let p100 = m.quantile_ns(0.01).unwrap();
        assert!((80.0..=140.0).contains(&p100), "got {p100}");
    }
}
