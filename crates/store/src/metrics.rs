//! Per-shard and aggregate service metrics.
//!
//! Operation/byte counters are lock-free atomics bumped by the submit
//! path and the driver threads; storage occupancy is read from the
//! shards' storage-cost-accounted simulations, so the paper's space
//! bounds are observable on the live service.

use rsb_fpsm::{OpResult, StorageCost};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why the eviction machinery snapshotted a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionCause {
    /// The caller invoked [`Store::evict_quiescent`](crate::Store::evict_quiescent).
    Manual,
    /// The governor's idle-time sweep found the key quiescent past the
    /// [`EvictionPolicy::IdleAfter`](crate::EvictionPolicy::IdleAfter)
    /// threshold.
    Idle,
    /// The governor's occupancy trigger evicted the key (coldest-first)
    /// to get back under the low watermark.
    Occupancy,
}

/// Latency histogram buckets: 64 power-of-two octaves × 4 sub-buckets
/// (log-linear, ~±12.5% resolution) — enough to separate a cache-hit
/// read from one that pays a rematerialization, at tail quantiles.
const HIST_SUBS: usize = 4;
pub(crate) const HIST_BUCKETS: usize = 64 * HIST_SUBS;

pub(crate) fn hist_bucket(ns: u64) -> usize {
    let n = ns.max(1);
    let exp = 63 - n.leading_zeros() as usize;
    let sub = if exp >= 2 {
        ((n >> (exp - 2)) & 0b11) as usize
    } else {
        0
    };
    exp * HIST_SUBS + sub
}

/// The half-open `[lo_ns, hi_ns)` range of nanosecond samples a bucket
/// absorbs. Bucket 0 also absorbs the clamped `ns == 0` sample, so its
/// lower bound reads 0; the top bucket's upper bound saturates at
/// `u64::MAX`.
pub(crate) fn hist_bucket_bounds(bucket: usize) -> (u64, u64) {
    let exp = bucket / HIST_SUBS;
    let sub = bucket % HIST_SUBS;
    if exp < 2 {
        // Sub-buckets collapse below 4 ns; only `sub == 0` is reachable.
        let lo = if bucket == 0 { 0 } else { 1u64 << exp };
        return (lo, 1u64 << (exp + 1));
    }
    let lo = ((4 + sub) as u128) << (exp - 2);
    let hi = ((5 + sub) as u128) << (exp - 2);
    (
        lo.min(u128::from(u64::MAX)) as u64,
        hi.min(u128::from(u64::MAX)) as u64,
    )
}

fn hist_representative_ns(bucket: usize) -> f64 {
    let exp = bucket / HIST_SUBS;
    let sub = bucket % HIST_SUBS;
    if exp < 2 {
        return (1u64 << exp) as f64 * 1.5;
    }
    // Bucket covers [(4+sub)·2^(exp-2), (5+sub)·2^(exp-2)); report the
    // midpoint.
    ((4 + sub) as f64 + 0.5) * (1u64 << (exp - 2)) as f64
}

/// Bumps one statistics counter.
fn bump(counter: &AtomicU64, n: u64) {
    // audit:allow(atomics-relaxed) — pure statistics: counters guard no
    // data, and snapshots are racy by design (each field is read
    // independently while writers keep going).
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Reads one statistics counter for a (racy) snapshot.
fn peek(counter: &AtomicU64) -> u64 {
    // audit:allow(atomics-relaxed) — see `bump`: nothing is published
    // through these counters, staleness only skews a report.
    counter.load(Ordering::Relaxed)
}

/// Lock-free log-linear latency histogram (nanoseconds).
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram").finish_non_exhaustive()
    }
}

impl AtomicHistogram {
    pub(crate) fn record(&self, ns: u64) {
        bump(&self.buckets[hist_bucket(ns)], 1);
    }

    pub(crate) fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            counts: self.buckets.iter().map(peek).collect(),
        }
    }
}

/// A snapshot of a latency histogram, with quantile queries.
///
/// Buckets are log-linear (power-of-two octaves with 4 sub-buckets), so
/// quantiles carry ~±12.5% resolution — plenty to tell a hit read from
/// one that paid a rematerialization, while recording stays a single
/// relaxed atomic increment on the hot path.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
}

/// A freshly-constructed histogram holds an empty `counts` vec while a
/// recorded-then-drained one holds 256 zeros; both mean "no samples", so
/// equality compares bucket-by-bucket with missing buckets read as zero.
impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        let len = self.counts.len().max(other.counts.len());
        (0..len).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for LatencyHistogram {}

impl LatencyHistogram {
    /// Records one latency sample directly (single-threaded recording —
    /// what the load harness uses; the store's own hot path records
    /// through lock-free atomics and only snapshots into this type).
    pub fn record_ns(&mut self, ns: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.counts[hist_bucket(ns)] += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram (for cross-shard aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.counts.is_empty() {
            self.counts.clone_from(&other.counts);
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The `p`-quantile latency in nanoseconds (`p` in `[0, 1]`), or
    /// `None` when the histogram is empty.
    pub fn quantile_ns(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(hist_representative_ns(bucket));
            }
        }
        None
    }

    /// The `p`-quantile in microseconds, or 0.0 when empty (table-friendly).
    pub fn quantile_us(&self, p: f64) -> f64 {
        self.quantile_ns(p).unwrap_or(0.0) / 1e3
    }

    /// Iterates the occupied buckets as `(lo_ns, hi_ns, count)` triples
    /// with `count > 0`, in ascending latency order. Each sample counted
    /// fell in the half-open range `[lo_ns, hi_ns)` (the clamped 0-ns
    /// sample lands in the first bucket, whose `lo_ns` is 0).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(bucket, &c)| {
                let (lo, hi) = hist_bucket_bounds(bucket);
                (lo, hi, c)
            })
    }

    /// Adds `count` samples to the bucket spanning `[lo_ns, hi_ns)` (the
    /// wire decoder's inverse of [`Self::buckets`]). Returns false when
    /// the pair is not an exact bucket boundary.
    pub(crate) fn add_bucket(&mut self, lo_ns: u64, hi_ns: u64, count: u64) -> bool {
        let bucket = hist_bucket(lo_ns.max(1));
        if hist_bucket_bounds(bucket) != (lo_ns, hi_ns) {
            return false;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.counts[bucket] = self.counts[bucket].saturating_add(count);
        true
    }
}

/// Lock-free counters one shard's submit path and driver bump.
#[derive(Debug, Default)]
pub(crate) struct AtomicCounters {
    reads_submitted: AtomicU64,
    writes_submitted: AtomicU64,
    reads_completed: AtomicU64,
    writes_completed: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    rejected: AtomicU64,
    steals: AtomicU64,
    stolen: AtomicU64,
    stolen_batches: AtomicU64,
    truncated_records: AtomicU64,
    rematerialized: AtomicU64,
    evicted_manual: AtomicU64,
    evicted_idle: AtomicU64,
    evicted_occupancy: AtomicU64,
    read_hit_ns: AtomicHistogram,
    read_remat_ns: AtomicHistogram,
    write_ns: AtomicHistogram,
    queue_wait_ns: AtomicHistogram,
    execute_ns: AtomicHistogram,
    wire_ns: AtomicHistogram,
}

impl AtomicCounters {
    pub(crate) fn note_read_submitted(&self) {
        bump(&self.reads_submitted, 1);
    }

    pub(crate) fn note_write_submitted(&self, payload_bytes: u64) {
        bump(&self.writes_submitted, 1);
        bump(&self.bytes_written, payload_bytes);
    }

    pub(crate) fn note_rejected(&self) {
        bump(&self.rejected, 1);
    }

    pub(crate) fn note_completion(&self, result: &OpResult) {
        match result {
            OpResult::Read(v) => {
                bump(&self.reads_completed, 1);
                bump(&self.bytes_read, v.len() as u64);
            }
            OpResult::Write => {
                bump(&self.writes_completed, 1);
            }
        }
    }

    pub(crate) fn note_steal(&self) {
        bump(&self.steals, 1);
    }

    pub(crate) fn note_stolen(&self) {
        bump(&self.stolen, 1);
    }

    /// Records one batch steal against the *victim* shard: a thief
    /// drained multiple ready keys from its queue in one pass. Per-key
    /// steal/stolen counters are bumped separately as each key runs.
    pub(crate) fn note_stolen_batch(&self) {
        bump(&self.stolen_batches, 1);
    }

    pub(crate) fn note_truncated(&self, records: u64) {
        if records > 0 {
            bump(&self.truncated_records, records);
        }
    }

    pub(crate) fn note_rematerialized(&self) {
        bump(&self.rematerialized, 1);
    }

    pub(crate) fn note_eviction(&self, cause: EvictionCause) {
        let counter = match cause {
            EvictionCause::Manual => &self.evicted_manual,
            EvictionCause::Idle => &self.evicted_idle,
            EvictionCause::Occupancy => &self.evicted_occupancy,
        };
        bump(counter, 1);
    }

    /// Records a completed read's end-to-end latency, bucketed by whether
    /// its submission had to rematerialize an evicted key.
    pub(crate) fn note_read_latency(&self, ns: u64, rematerialized: bool) {
        if rematerialized {
            self.read_remat_ns.record(ns);
        } else {
            self.read_hit_ns.record(ns);
        }
    }

    /// Records a completed write's end-to-end latency.
    pub(crate) fn note_write_latency(&self, ns: u64) {
        self.write_ns.record(ns);
    }

    /// Records one completed op's phase split: time spent waiting for a
    /// driver (submit → execute-start) and time inside the simulator
    /// batch that delivered it (execute-start → completion). Every
    /// completion records exactly one sample in each, so the phase
    /// histogram counts must agree with the end-to-end ones.
    pub(crate) fn note_phases(&self, queue_ns: u64, execute_ns: u64) {
        self.queue_wait_ns.record(queue_ns);
        self.execute_ns.record(execute_ns);
    }

    /// Records server-side wire time for one TCP op: frame decode →
    /// response flushed. Loopback ops never record here.
    pub(crate) fn note_wire_latency(&self, ns: u64) {
        self.wire_ns.record(ns);
    }

    pub(crate) fn read_hit_histogram(&self) -> LatencyHistogram {
        self.read_hit_ns.snapshot()
    }

    pub(crate) fn read_remat_histogram(&self) -> LatencyHistogram {
        self.read_remat_ns.snapshot()
    }

    pub(crate) fn write_histogram(&self) -> LatencyHistogram {
        self.write_ns.snapshot()
    }

    pub(crate) fn queue_wait_histogram(&self) -> LatencyHistogram {
        self.queue_wait_ns.snapshot()
    }

    pub(crate) fn execute_histogram(&self) -> LatencyHistogram {
        self.execute_ns.snapshot()
    }

    pub(crate) fn wire_histogram(&self) -> LatencyHistogram {
        self.wire_ns.snapshot()
    }

    pub(crate) fn snapshot(&self) -> OpCounters {
        OpCounters {
            reads_submitted: peek(&self.reads_submitted),
            writes_submitted: peek(&self.writes_submitted),
            reads_completed: peek(&self.reads_completed),
            writes_completed: peek(&self.writes_completed),
            bytes_read: peek(&self.bytes_read),
            bytes_written: peek(&self.bytes_written),
            rejected: peek(&self.rejected),
            steals: peek(&self.steals),
            stolen: peek(&self.stolen),
            stolen_batches: peek(&self.stolen_batches),
            truncated_records: peek(&self.truncated_records),
            rematerialized: peek(&self.rematerialized),
            evicted_manual: peek(&self.evicted_manual),
            evicted_idle: peek(&self.evicted_idle),
            evicted_occupancy: peek(&self.evicted_occupancy),
        }
    }
}

/// A snapshot of one shard's (or the whole store's) operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Reads accepted by the submit path.
    pub reads_submitted: u64,
    /// Writes accepted by the submit path.
    pub writes_submitted: u64,
    /// Reads whose result was delivered.
    pub reads_completed: u64,
    /// Writes whose ack was delivered.
    pub writes_completed: u64,
    /// Payload bytes returned by completed reads.
    pub bytes_read: u64,
    /// Payload bytes accepted by submitted writes.
    pub bytes_written: u64,
    /// Submissions the underlying simulation rejected.
    pub rejected: u64,
    /// Ready keys this shard's driver executed from *other* shards'
    /// queues (work-stealing, attributed to the thief's home shard).
    pub steals: u64,
    /// Ready keys of this shard executed by *other* shards' drivers.
    pub stolen: u64,
    /// Multi-key batch steals drained from this shard's queue (each
    /// represents one `pop_half` pass by a thief; the per-key `stolen`
    /// counter still counts every key those passes carried).
    pub stolen_batches: u64,
    /// Operation records dropped by history compaction.
    pub truncated_records: u64,
    /// Evicted keys brought back by a later operation.
    pub rematerialized: u64,
    /// Evictions performed by an explicit
    /// [`Store::evict_quiescent`](crate::Store::evict_quiescent) call.
    pub evicted_manual: u64,
    /// Evictions performed by the governor's idle-time sweep.
    pub evicted_idle: u64,
    /// Evictions performed by the governor's occupancy trigger.
    pub evicted_occupancy: u64,
}

impl OpCounters {
    /// Submitted operations of both kinds.
    pub fn submitted(&self) -> u64 {
        self.reads_submitted + self.writes_submitted
    }

    /// Completed operations of both kinds.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Evictions of every cause.
    pub fn evictions(&self) -> u64 {
        self.evicted_manual + self.evicted_idle + self.evicted_occupancy
    }

    /// Accumulates another snapshot (for aggregation).
    pub fn absorb(&mut self, other: &OpCounters) {
        self.reads_submitted += other.reads_submitted;
        self.writes_submitted += other.writes_submitted;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.rejected += other.rejected;
        self.steals += other.steals;
        self.stolen += other.stolen;
        self.stolen_batches += other.stolen_batches;
        self.truncated_records += other.truncated_records;
        self.rematerialized += other.rematerialized;
        self.evicted_manual += other.evicted_manual;
        self.evicted_idle += other.evicted_idle;
        self.evicted_occupancy += other.evicted_occupancy;
    }
}

/// One shard's metrics snapshot.
///
/// Owned data only (`protocol` is a `String`, histograms own their
/// buckets), so a snapshot decoded from a remote server's `StatsResp`
/// frame compares equal to the same snapshot taken in-process.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetrics {
    /// Shard index within the store.
    pub shard: usize,
    /// The register emulation the shard runs.
    pub protocol: String,
    /// Keys (registers) materialized on the shard so far.
    pub keys: usize,
    /// Operation counters.
    pub ops: OpCounters,
    /// Live storage occupancy across the shard's registers
    /// (the paper's Definition-2 cost, summed over keys).
    pub occupancy: StorageCost,
    /// Sum of each register's peak total storage in bits — an upper
    /// bound on the shard's true simultaneous peak.
    pub peak_register_bits: u64,
    /// Operation records currently held across the shard's registers
    /// (retained frontier + live tail; what [`HistoryPolicy`] bounds).
    ///
    /// [`HistoryPolicy`]: crate::HistoryPolicy
    pub live_records: u64,
    /// Keys currently evicted to snapshots (counted in `keys` too).
    pub evicted_keys: usize,
    /// Bits held by evicted keys' snapshots (not part of `occupancy`,
    /// which covers live simulations only).
    pub snapshot_bits: u64,
    /// Keys waiting in the shard's ready queue right now.
    pub ready_keys: usize,
    /// The shard's incrementally-maintained live-occupancy counter — the
    /// cheap value the eviction governor's occupancy trigger fires on.
    /// At quiescence it must equal `occupancy.total()` (asserted in
    /// tests); mid-traffic the two may be momentarily skewed because
    /// they are sampled at different instants.
    pub governed_bits: u64,
    /// End-to-end latency of completed reads whose key was live at
    /// submission.
    pub read_hit_latency: LatencyHistogram,
    /// End-to-end latency of completed reads whose submission had to
    /// rematerialize an evicted key first.
    pub read_remat_latency: LatencyHistogram,
    /// End-to-end latency of completed writes.
    pub write_latency: LatencyHistogram,
    /// Per-op time from submit to execute-start (waiting for a driver);
    /// one sample per completed op of either kind.
    pub queue_wait: LatencyHistogram,
    /// Per-op time inside the simulator batch that delivered the result
    /// (execute-start to completion); one sample per completed op.
    pub execute: LatencyHistogram,
    /// Server-side wire time per TCP op (frame decode to response
    /// flush). Empty on loopback-only stores; lags completions by the
    /// in-flight ops whose responses are still being written.
    pub wire: LatencyHistogram,
}

// Every field is integral (or a histogram of integral counts), so
// `PartialEq` is total and the marker holds.
impl Eq for ShardMetrics {}

/// A whole-store metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMetrics {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardMetrics>,
}

impl Eq for StoreMetrics {}

impl StoreMetrics {
    /// Aggregate operation counters over all shards.
    pub fn totals(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for s in &self.shards {
            total.absorb(&s.ops);
        }
        total
    }

    /// Aggregate live storage occupancy in bits.
    pub fn occupancy_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.occupancy.total()).sum()
    }

    /// Aggregate per-register peak storage bits.
    pub fn peak_register_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.peak_register_bits).sum()
    }

    /// Total keys materialized across shards.
    pub fn keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Total live operation records across shards (what the history
    /// policy bounds under sustained traffic).
    pub fn live_records(&self) -> u64 {
        self.shards.iter().map(|s| s.live_records).sum()
    }

    /// Keys currently evicted to snapshots, across shards.
    pub fn evicted_keys(&self) -> usize {
        self.shards.iter().map(|s| s.evicted_keys).sum()
    }

    /// Bits held by evicted keys' snapshots, across shards.
    pub fn snapshot_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot_bits).sum()
    }

    /// Merged hit-read latency histogram across shards.
    pub fn read_hit_latency(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.read_hit_latency);
        }
        out
    }

    /// Merged rematerialize-read latency histogram across shards.
    pub fn read_remat_latency(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.read_remat_latency);
        }
        out
    }

    /// Merged write end-to-end latency histogram across shards.
    pub fn write_latency(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.write_latency);
        }
        out
    }

    /// Merged submit→execute-start queue-wait histogram across shards.
    pub fn queue_wait(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.queue_wait);
        }
        out
    }

    /// Merged execute-start→completion histogram across shards.
    pub fn execute(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.execute);
        }
        out
    }

    /// Merged server-side wire-time histogram across shards.
    pub fn wire(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for s in &self.shards {
            out.merge(&s.wire);
        }
        out
    }

    /// Merged end-to-end latency over every completed op (reads of both
    /// kinds plus writes) — the histogram the phase pair
    /// ([`Self::queue_wait`], [`Self::execute`]) decomposes.
    pub fn end_to_end_latency(&self) -> LatencyHistogram {
        let mut out = self.read_hit_latency();
        out.merge(&self.read_remat_latency());
        out.merge(&self.write_latency());
        out
    }

    /// Renders the snapshot as Prometheus-style text exposition:
    /// `# TYPE`-annotated counters, gauges, and cumulative-`le`
    /// histograms, all prefixed `rsb_store_`.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = self.totals();
        let counters: [(&str, &str, u64); 15] = [
            (
                "reads_submitted",
                "Reads accepted by the submit path",
                t.reads_submitted,
            ),
            (
                "writes_submitted",
                "Writes accepted by the submit path",
                t.writes_submitted,
            ),
            (
                "reads_completed",
                "Reads whose result was delivered",
                t.reads_completed,
            ),
            (
                "writes_completed",
                "Writes whose ack was delivered",
                t.writes_completed,
            ),
            (
                "bytes_read",
                "Payload bytes returned by completed reads",
                t.bytes_read,
            ),
            (
                "bytes_written",
                "Payload bytes accepted by submitted writes",
                t.bytes_written,
            ),
            (
                "rejected",
                "Submissions the simulation rejected",
                t.rejected,
            ),
            (
                "steals",
                "Ready keys executed by non-home drivers",
                t.steals,
            ),
            (
                "truncated_records",
                "Records dropped by history compaction",
                t.truncated_records,
            ),
            (
                "rematerialized",
                "Evicted keys brought back by an op",
                t.rematerialized,
            ),
            ("evicted_manual", "Manual evictions", t.evicted_manual),
            ("evicted_idle", "Idle-sweep evictions", t.evicted_idle),
            (
                "evicted_occupancy",
                "Occupancy-trigger evictions",
                t.evicted_occupancy,
            ),
            (
                "stolen",
                "Ready keys of a shard run by other drivers",
                t.stolen,
            ),
            (
                "stolen_batches",
                "Multi-key batch steals drained from a shard's queue",
                t.stolen_batches,
            ),
        ];
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP rsb_store_{name}_total {help}");
            let _ = writeln!(out, "# TYPE rsb_store_{name}_total counter");
            let _ = writeln!(out, "rsb_store_{name}_total {value}");
        }
        let gauges: [(&str, &str, u64); 6] = [
            (
                "occupancy_bits",
                "Live storage occupancy (paper Definition-2 bits)",
                self.occupancy_bits(),
            ),
            (
                "peak_register_bits",
                "Sum of per-register peak storage bits",
                self.peak_register_bits(),
            ),
            (
                "snapshot_bits",
                "Bits held by evicted keys' snapshots",
                self.snapshot_bits(),
            ),
            (
                "keys",
                "Keys materialized across shards",
                self.keys() as u64,
            ),
            (
                "evicted_keys",
                "Keys currently evicted to snapshots",
                self.evicted_keys() as u64,
            ),
            (
                "live_records",
                "Operation records currently retained",
                self.live_records(),
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP rsb_store_{name} {help}");
            let _ = writeln!(out, "# TYPE rsb_store_{name} gauge");
            let _ = writeln!(out, "rsb_store_{name} {value}");
        }
        let _ = writeln!(
            out,
            "# HELP rsb_store_shard_ready_keys Keys waiting in a shard's ready queue"
        );
        let _ = writeln!(out, "# TYPE rsb_store_shard_ready_keys gauge");
        for s in &self.shards {
            let _ = writeln!(
                out,
                "rsb_store_shard_ready_keys{{shard=\"{}\",protocol=\"{}\"}} {}",
                s.shard, s.protocol, s.ready_keys
            );
        }
        let hists: [(&str, &str, LatencyHistogram); 6] = [
            (
                "read_hit_latency_ns",
                "End-to-end latency of live-key reads",
                self.read_hit_latency(),
            ),
            (
                "read_remat_latency_ns",
                "End-to-end latency of rematerializing reads",
                self.read_remat_latency(),
            ),
            (
                "write_latency_ns",
                "End-to-end latency of writes",
                self.write_latency(),
            ),
            (
                "queue_wait_ns",
                "Submit to execute-start wait",
                self.queue_wait(),
            ),
            ("execute_ns", "Execute-start to completion", self.execute()),
            (
                "wire_ns",
                "Server-side frame decode to response flush",
                self.wire(),
            ),
        ];
        for (name, help, hist) in hists {
            let _ = writeln!(out, "# HELP rsb_store_{name} {help}");
            let _ = writeln!(out, "# TYPE rsb_store_{name} histogram");
            let mut cumulative = 0u64;
            for (_, hi, count) in hist.buckets() {
                cumulative += count;
                let _ = writeln!(out, "rsb_store_{name}_bucket{{le=\"{hi}\"}} {cumulative}");
            }
            let _ = writeln!(out, "rsb_store_{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "rsb_store_{name}_count {cumulative}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotonic_and_quantiles_sane() {
        let mut prev = 0;
        for ns in 1..4096u64 {
            let b = hist_bucket(ns);
            assert!(b >= prev, "bucket must be monotonic in ns at {ns}");
            prev = b;
        }
        let h = AtomicHistogram::default();
        for _ in 0..90 {
            h.record(1_000); // ~1 µs
        }
        for _ in 0..10 {
            h.record(1_000_000); // ~1 ms
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.quantile_ns(0.50).unwrap();
        let p99 = snap.quantile_ns(0.99).unwrap();
        assert!((800.0..=1300.0).contains(&p50), "p50 ≈ 1µs, got {p50} ns");
        assert!(
            (800_000.0..=1_300_000.0).contains(&p99),
            "p99 ≈ 1ms, got {p99} ns"
        );
        assert!(LatencyHistogram::default().quantile_ns(0.5).is_none());
    }

    #[test]
    fn empty_histogram_equals_drained_histogram() {
        // Regression: the derived PartialEq compared the raw `counts`
        // vecs, so a default (empty-vec) histogram != an allocated
        // all-zeros one even though both mean "no samples".
        let mut recorded = LatencyHistogram::default();
        recorded.record_ns(500);
        // A snapshot of an untouched AtomicHistogram has the allocated
        // all-zeros shape a "recorded then drained" histogram would.
        let zeroed = AtomicHistogram::default().snapshot();
        assert_eq!(zeroed.count(), 0);
        assert_eq!(LatencyHistogram::default(), zeroed);
        assert_eq!(zeroed, LatencyHistogram::default());
        assert_ne!(LatencyHistogram::default(), recorded);
        assert_ne!(zeroed, recorded);
    }

    #[test]
    fn bucket_bounds_agree_with_hist_bucket() {
        // Every recorded sample must land in a bucket whose reported
        // bounds contain it, and the bounds must be the exact preimage:
        // lo maps to the bucket, hi maps to the next occupied one.
        let mut state = 0x0B5E_u64;
        let mut h = LatencyHistogram::default();
        let mut samples = Vec::new();
        for i in 0..2000u64 {
            // Mix uniform small values with exponentially-spread ones so
            // every octave range gets coverage, including u64::MAX.
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(i);
            let shift = (state >> 58) as u32; // 0..63
            let ns = match i % 4 {
                0 => i,
                1 => state >> shift.min(63),
                2 => 1u64 << shift,
                _ => u64::MAX - (state & 0xff),
            };
            h.record_ns(ns);
            samples.push(ns);
        }
        let total: u64 = h.buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, h.count(), "buckets() covers every sample");
        let mut prev_hi = 0u64;
        for (lo, hi, count) in h.buckets() {
            assert!(count > 0, "buckets() yields occupied buckets only");
            assert!(lo < hi, "non-empty range [{lo}, {hi})");
            assert!(lo >= prev_hi, "ranges ascend without overlap");
            prev_hi = hi;
            let bucket = hist_bucket(lo.max(1));
            assert_eq!(hist_bucket_bounds(bucket), (lo, hi));
            // The bucket's representative sits inside its own bounds.
            let rep = hist_representative_ns(bucket);
            assert!(
                rep >= lo as f64 && rep < hi as f64,
                "representative {rep} outside [{lo}, {hi})"
            );
            // Boundary samples: lo maps into this bucket; hi-1 as well
            // (unless hi saturated at u64::MAX, where hi-1 still must
            // not map below this bucket).
            assert_eq!(hist_bucket(lo.max(1)), bucket);
            assert!(hist_bucket(hi - 1) >= bucket);
            if hi < u64::MAX {
                assert!(hist_bucket(hi) > bucket, "hi is exclusive");
            }
        }
        for &ns in &samples {
            let bucket = hist_bucket(ns);
            let (lo, hi) = hist_bucket_bounds(bucket);
            assert!(
                ns.max(1) >= lo.max(1) && (ns < hi || hi == u64::MAX),
                "sample {ns} outside its bucket bounds [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn add_bucket_inverts_buckets_iteration() {
        let mut h = LatencyHistogram::default();
        for ns in [0, 1, 3, 17, 1_000, 1_000_000, u64::MAX] {
            h.record_ns(ns);
        }
        let mut rebuilt = LatencyHistogram::default();
        for (lo, hi, count) in h.buckets() {
            assert!(
                rebuilt.add_bucket(lo, hi, count),
                "({lo}, {hi}) is a bucket"
            );
        }
        assert_eq!(rebuilt, h);
        // Non-boundary bounds are rejected.
        assert!(!LatencyHistogram::default().add_bucket(1_001, 1_024, 1));
        assert!(!LatencyHistogram::default().add_bucket(1_024, 1_100, 1));
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = AtomicHistogram::default();
        let b = AtomicHistogram::default();
        a.record(100);
        b.record(100);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        // Representative of a bucket stays within its log-linear bounds.
        let p100 = m.quantile_ns(0.01).unwrap();
        assert!((80.0..=140.0).contains(&p100), "got {p100}");
    }
}
