//! Per-shard and aggregate service metrics.
//!
//! Operation/byte counters are lock-free atomics bumped by the submit
//! path and the driver threads; storage occupancy is read from the
//! shards' storage-cost-accounted simulations, so the paper's space
//! bounds are observable on the live service.

use rsb_fpsm::{OpResult, StorageCost};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters one shard's submit path and driver bump.
#[derive(Debug, Default)]
pub(crate) struct AtomicCounters {
    reads_submitted: AtomicU64,
    writes_submitted: AtomicU64,
    reads_completed: AtomicU64,
    writes_completed: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    rejected: AtomicU64,
    steals: AtomicU64,
    stolen: AtomicU64,
    truncated_records: AtomicU64,
    rematerialized: AtomicU64,
}

impl AtomicCounters {
    pub(crate) fn note_read_submitted(&self) {
        self.reads_submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_write_submitted(&self, payload_bytes: u64) {
        self.writes_submitted.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(payload_bytes, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_completion(&self, result: &OpResult) {
        match result {
            OpResult::Read(v) => {
                self.reads_completed.fetch_add(1, Ordering::Relaxed);
                self.bytes_read.fetch_add(v.len() as u64, Ordering::Relaxed);
            }
            OpResult::Write => {
                self.writes_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn note_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stolen(&self) {
        self.stolen.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_truncated(&self, records: u64) {
        if records > 0 {
            self.truncated_records.fetch_add(records, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_rematerialized(&self) {
        self.rematerialized.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> OpCounters {
        OpCounters {
            reads_submitted: self.reads_submitted.load(Ordering::Relaxed),
            writes_submitted: self.writes_submitted.load(Ordering::Relaxed),
            reads_completed: self.reads_completed.load(Ordering::Relaxed),
            writes_completed: self.writes_completed.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            truncated_records: self.truncated_records.load(Ordering::Relaxed),
            rematerialized: self.rematerialized.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one shard's (or the whole store's) operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Reads accepted by the submit path.
    pub reads_submitted: u64,
    /// Writes accepted by the submit path.
    pub writes_submitted: u64,
    /// Reads whose result was delivered.
    pub reads_completed: u64,
    /// Writes whose ack was delivered.
    pub writes_completed: u64,
    /// Payload bytes returned by completed reads.
    pub bytes_read: u64,
    /// Payload bytes accepted by submitted writes.
    pub bytes_written: u64,
    /// Submissions the underlying simulation rejected.
    pub rejected: u64,
    /// Ready keys this shard's driver executed from *other* shards'
    /// queues (work-stealing, attributed to the thief's home shard).
    pub steals: u64,
    /// Ready keys of this shard executed by *other* shards' drivers.
    pub stolen: u64,
    /// Operation records dropped by history compaction.
    pub truncated_records: u64,
    /// Evicted keys brought back by a later operation.
    pub rematerialized: u64,
}

impl OpCounters {
    /// Completed operations of both kinds.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed
    }

    /// Accumulates another snapshot (for aggregation).
    pub fn absorb(&mut self, other: &OpCounters) {
        self.reads_submitted += other.reads_submitted;
        self.writes_submitted += other.writes_submitted;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.rejected += other.rejected;
        self.steals += other.steals;
        self.stolen += other.stolen;
        self.truncated_records += other.truncated_records;
        self.rematerialized += other.rematerialized;
    }
}

/// One shard's metrics snapshot.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index within the store.
    pub shard: usize,
    /// The register emulation the shard runs.
    pub protocol: &'static str,
    /// Keys (registers) materialized on the shard so far.
    pub keys: usize,
    /// Operation counters.
    pub ops: OpCounters,
    /// Live storage occupancy across the shard's registers
    /// (the paper's Definition-2 cost, summed over keys).
    pub occupancy: StorageCost,
    /// Sum of each register's peak total storage in bits — an upper
    /// bound on the shard's true simultaneous peak.
    pub peak_register_bits: u64,
    /// Operation records currently held across the shard's registers
    /// (retained frontier + live tail; what [`HistoryPolicy`] bounds).
    ///
    /// [`HistoryPolicy`]: crate::HistoryPolicy
    pub live_records: u64,
    /// Keys currently evicted to snapshots (counted in `keys` too).
    pub evicted_keys: usize,
    /// Bits held by evicted keys' snapshots (not part of `occupancy`,
    /// which covers live simulations only).
    pub snapshot_bits: u64,
    /// Keys waiting in the shard's ready queue right now.
    pub ready_keys: usize,
}

/// A whole-store metrics snapshot.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// Per-shard snapshots, indexed by shard.
    pub shards: Vec<ShardMetrics>,
}

impl StoreMetrics {
    /// Aggregate operation counters over all shards.
    pub fn totals(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for s in &self.shards {
            total.absorb(&s.ops);
        }
        total
    }

    /// Aggregate live storage occupancy in bits.
    pub fn occupancy_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.occupancy.total()).sum()
    }

    /// Aggregate per-register peak storage bits.
    pub fn peak_register_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.peak_register_bits).sum()
    }

    /// Total keys materialized across shards.
    pub fn keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Total live operation records across shards (what the history
    /// policy bounds under sustained traffic).
    pub fn live_records(&self) -> u64 {
        self.shards.iter().map(|s| s.live_records).sum()
    }

    /// Keys currently evicted to snapshots, across shards.
    pub fn evicted_keys(&self) -> usize {
        self.shards.iter().map(|s| s.evicted_keys).sum()
    }
}
