//! One shard: a driver thread over a map of per-key register simulations.
//!
//! A shard reuses the driver/completion machinery of
//! `rsb_registers::threaded` — a [`DriverCore`] guards the shard's state
//! (every key's [`RegisterCell`]), and one spawned driver thread plays the
//! fair scheduler for all of them. The store holds shards behind the
//! object-safe [`ShardEngine`] trait so different shards can run
//! different register emulations.

use crate::config::ShardSpec;
use crate::metrics::{AtomicCounters, ShardMetrics};
use crate::store::StoreError;
use rsb_coding::Value;
use rsb_fpsm::{ClientId, OpRecord, OpRequest, StorageCost};
use rsb_registers::{
    spawn_driver, Abd, AbdAtomic, Adaptive, Coded, CompletionSlot, DriverCore, RegisterCell,
    RegisterProtocol, Safe, ThreadedError,
};
use std::collections::HashMap;
use std::sync::Arc;

use crate::config::ProtocolSpec;

/// One key's register: its simulation cell plus the sim-level clients
/// allocated for it so far (reused across operations when idle).
struct KeyEntry<P: RegisterProtocol + 'static> {
    cell: RegisterCell<P>,
    clients: Vec<ClientId>,
}

/// The state a shard's driver guards.
struct ShardState<P: RegisterProtocol + 'static> {
    proto: P,
    keys: HashMap<String, KeyEntry<P>>,
}

/// The object-safe surface the store drives a shard through.
pub(crate) trait ShardEngine: Send + Sync {
    /// Submits one operation on a key, returning its completion slot.
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError>;

    /// Asks the driver to stop (pending operations will be failed).
    fn request_stop(&self);

    /// Snapshot of the shard's metrics.
    fn metrics(&self, shard: usize) -> ShardMetrics;

    /// The register value length every write must match.
    fn value_len(&self) -> usize;

    /// The registers' initial value `v₀`.
    fn initial_value(&self) -> Value;

    /// The operation records of one key's register, if materialized.
    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>>;

    /// Keys materialized on this shard.
    fn keys(&self) -> Vec<String>;

    /// The protocol's stable name.
    fn protocol_name(&self) -> &'static str;
}

/// The typed shard implementation behind [`ShardEngine`].
struct ShardCore<P: RegisterProtocol + Send + 'static> {
    core: Arc<DriverCore<ShardState<P>>>,
    counters: Arc<AtomicCounters>,
    name: &'static str,
    value_len: usize,
    initial: Value,
}

impl<P: RegisterProtocol + Send + 'static> ShardEngine for ShardCore<P> {
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError> {
        let slot = {
            let mut st = self.core.lock();
            // Checked under the lock: the driver's shutdown cleanup also
            // runs under it, so a submission either sees the stop flag or
            // its pending slot is failed by that cleanup — never neither.
            if self.core.is_stopped() {
                return Err(StoreError::ShutDown);
            }
            let ShardState { proto, keys } = &mut *st;
            // Allocate the owned key only on first touch — the hot path
            // (existing key) stays allocation-free under the shard lock.
            if !keys.contains_key(key) {
                keys.insert(
                    key.to_owned(),
                    KeyEntry {
                        cell: RegisterCell::new(proto.new_sim()),
                        clients: Vec::new(),
                    },
                );
            }
            let entry = keys.get_mut(key).expect("inserted above");
            let client = entry
                .clients
                .iter()
                .copied()
                .find(|&c| entry.cell.sim.outstanding_op(c).is_none())
                .unwrap_or_else(|| {
                    let c = proto.add_client(&mut entry.cell.sim);
                    entry.clients.push(c);
                    c
                });
            let write_bytes = match &req {
                OpRequest::Write(v) => Some(v.len() as u64),
                OpRequest::Read => None,
            };
            match entry.cell.submit(client, req) {
                Ok(slot) => {
                    match write_bytes {
                        Some(bytes) => self.counters.note_write_submitted(bytes),
                        None => self.counters.note_read_submitted(),
                    }
                    // A protocol could in principle complete synchronously
                    // (the slot is then filled with no pending entry, so
                    // the driver never sees it); count it here, still
                    // under the lock so the driver cannot race us.
                    if let Some(Ok(result)) = slot.try_outcome() {
                        self.counters.note_completion(&result);
                    }
                    slot
                }
                Err(e) => {
                    self.counters.note_rejected();
                    return Err(e.into());
                }
            }
        };
        self.core.notify();
        Ok(slot)
    }

    fn request_stop(&self) {
        self.core.request_stop();
    }

    fn metrics(&self, shard: usize) -> ShardMetrics {
        let st = self.core.lock();
        let mut occupancy = StorageCost::default();
        let mut peak = 0u64;
        for entry in st.keys.values() {
            let cost = entry.cell.sim.storage_cost();
            occupancy.object_bits += cost.object_bits;
            occupancy.client_bits += cost.client_bits;
            occupancy.inflight_param_bits += cost.inflight_param_bits;
            occupancy.inflight_resp_bits += cost.inflight_resp_bits;
            peak += entry.cell.sim.peak_storage_bits();
        }
        ShardMetrics {
            shard,
            protocol: self.name,
            keys: st.keys.len(),
            ops: self.counters.snapshot(),
            occupancy,
            peak_register_bits: peak,
        }
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn initial_value(&self) -> Value {
        self.initial.clone()
    }

    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>> {
        let st = self.core.lock();
        st.keys.get(key).map(|e| e.cell.sim.history().to_vec())
    }

    fn keys(&self) -> Vec<String> {
        self.core.lock().keys.keys().cloned().collect()
    }

    fn protocol_name(&self) -> &'static str {
        self.name
    }
}

/// Builds a shard from its spec and spawns its driver thread.
pub(crate) fn build(
    index: usize,
    spec: &ShardSpec,
    batch: usize,
) -> (Arc<dyn ShardEngine>, std::thread::JoinHandle<()>) {
    match spec.protocol {
        ProtocolSpec::Abd => start_typed(index, Abd::new(spec.register), batch),
        ProtocolSpec::AbdAtomic => start_typed(index, AbdAtomic::new(spec.register), batch),
        ProtocolSpec::Safe => start_typed(index, Safe::new(spec.register), batch),
        ProtocolSpec::Coded => start_typed(index, Coded::new(spec.register), batch),
        ProtocolSpec::Adaptive => start_typed(index, Adaptive::new(spec.register), batch),
    }
}

fn start_typed<P: RegisterProtocol + Send + 'static>(
    index: usize,
    proto: P,
    batch: usize,
) -> (Arc<dyn ShardEngine>, std::thread::JoinHandle<()>) {
    let name = proto.name();
    let value_len = proto.config().value_len;
    let initial = proto.config().initial_value();
    let core = Arc::new(DriverCore::new(ShardState {
        proto,
        keys: HashMap::new(),
    }));
    let counters = Arc::new(AtomicCounters::default());

    let step_counters = Arc::clone(&counters);
    let stop_counters = Arc::clone(&counters);
    let driver = spawn_driver(
        &format!("store-shard-{index}"),
        Arc::clone(&core),
        move |st: &mut ShardState<P>| {
            let mut progressed = false;
            for entry in st.keys.values_mut() {
                if entry.cell.step_events(batch) > 0 {
                    progressed = true;
                    entry
                        .cell
                        .complete_pending_with(|r| step_counters.note_completion(r));
                }
            }
            progressed
        },
        move |st: &mut ShardState<P>| {
            // Flush results that are ready, then fail what remains so no
            // client blocks on a dead shard.
            for entry in st.keys.values_mut() {
                entry
                    .cell
                    .complete_pending_with(|r| stop_counters.note_completion(r));
                entry.cell.fail_pending(&ThreadedError::ShutDown);
            }
        },
    );

    let engine: Arc<dyn ShardEngine> = Arc::new(ShardCore {
        core,
        counters,
        name,
        value_len,
        initial,
    });
    (engine, driver)
}
