//! One shard: a map of per-key register simulations behind an
//! event-driven ready queue.
//!
//! The PR-2 shard driver rescanned every materialized key per batch —
//! O(keys) work even when one key was hot. A shard now keeps a
//! [`ReadyQueue`] of key slots with enabled simulator events: a key is
//! enqueued when a client operation arrives or a step leaves follow-on
//! events enabled, so a driver batch does O(enabled) work. Keys live
//! behind *per-key* locks (the shard map lock covers only placement and
//! lifecycle), and a popped slot is owned by exactly one driver until it
//! finishes — which is what lets an idle driver of another shard *steal*
//! a ready key and step it without breaking per-key serialization.
//!
//! On top of the same per-key lifecycle, a [`HistoryPolicy`] bounds each
//! register's `OpRecord` history (compaction keeps the frontier writes
//! the consistency checkers need), and a quiescent key can be *evicted*
//! to a [`SimSnapshot`] and rematerialized on its next operation.
//!
//! Eviction is *governed*: an [`EvictionPolicy`] makes the driver pool
//! itself run the reclamation — idle drivers sweep their shard for keys
//! quiescent past the idle threshold, and an occupancy trigger (one
//! atomic comparison against an incrementally-maintained per-shard
//! live-bits counter) evicts coldest-first down to a low watermark — so
//! bounded space holds under sustained traffic with zero dedicated
//! threads and without ever blocking a ready key.

use crate::config::ShardSpec;
use crate::config::{EvictionPolicy, HistoryPolicy, ProtocolSpec};
use crate::mcsync::{AtomicU64, Ordering};
use crate::metrics::{AtomicCounters, EvictionCause, ShardMetrics};
use crate::recorder::{FlightEventKind, FlightRecorder};
use crate::store::StoreError;
use rsb_coding::Value;
use rsb_fpsm::{
    ClientId, OpId, OpRecord, OpRequest, OpResult, SimSnapshot, Simulation, StorageCost,
};
use rsb_registers::lockorder::{ranks, tracked_lock, tracked_try};
use rsb_registers::{
    Abd, AbdAtomic, Adaptive, Coded, CompletionSlot, ReadyQueue, RegisterCell, RegisterProtocol,
    Safe, ThreadedError, WorkGroup,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Cap on eviction *attempts* (key locks taken) per occupancy-governor
/// pass, so a sweeping driver returns to ready keys quickly; the
/// trigger stays armed and the next pass continues where this one left
/// off.
const GOVERN_ATTEMPTS_PER_PASS: usize = 32;

/// After a futile occupancy pass (armed, but nothing was quiescent
/// enough to evict), the trigger stays disarmed for this many shard
/// ticks. Quiescent keys can only appear through traffic — which is
/// exactly what advances ticks — so the backoff self-clears the moment
/// eviction could plausibly succeed again, and an armed-but-stuck
/// governor stops paying a full cold-scan on every driver iteration.
const GOVERN_FUTILE_BACKOFF_TICKS: u64 = 64;

/// Submission-time bookkeeping for one in-flight operation, matched up
/// at completion to record end-to-end latency split by whether the
/// submission had to rematerialize an evicted key, plus the phase split
/// (queue wait vs execution).
struct InflightOp {
    op: OpId,
    started: Instant,
    /// First driver step batch that picked the key up after this op was
    /// submitted — the queue-wait → execute boundary. Phase attribution
    /// is batch-granular: every op in flight on a key shares the batch's
    /// execute-start stamp.
    exec_start: Option<Instant>,
    rematerialized: bool,
}

/// One key's live register: its simulation cell plus the sim-level
/// clients allocated for it so far (reused across operations when idle).
struct KeyCell<P: RegisterProtocol + 'static> {
    cell: RegisterCell<P>,
    clients: Vec<ClientId>,
    inflight: Vec<InflightOp>,
}

impl<P: RegisterProtocol + 'static> KeyCell<P> {
    fn new(sim: Simulation<P::Object, P::Client>) -> Self {
        KeyCell {
            cell: RegisterCell::new(sim),
            clients: Vec::new(),
            inflight: Vec::new(),
        }
    }
}

/// Visits one completed operation: bumps the op/byte counters, records
/// end-to-end latency (reads into the hit/rematerialize histograms,
/// writes into theirs), and splits the op's lifetime into queue-wait
/// (submit → first executing batch) and execute (batch → completion)
/// phase samples. `done` is the completion stamp, taken once per flush
/// so a large batch pays one clock read.
fn note_completed(
    counters: &AtomicCounters,
    inflight: &mut Vec<InflightOp>,
    op: OpId,
    result: &OpResult,
    done: Instant,
) {
    counters.note_completion(result);
    if let Some(i) = inflight.iter().position(|e| e.op == op) {
        let entry = inflight.swap_remove(i);
        let total_ns = done.saturating_duration_since(entry.started).as_nanos() as u64;
        let exec_start = entry.exec_start.unwrap_or(done);
        counters.note_phases(
            exec_start
                .saturating_duration_since(entry.started)
                .as_nanos() as u64,
            done.saturating_duration_since(exec_start).as_nanos() as u64,
        );
        match result {
            OpResult::Read(_) => counters.note_read_latency(total_ns, entry.rematerialized),
            OpResult::Write => counters.note_write_latency(total_ns),
        }
    }
}

/// A key is either materialized (live simulation) or evicted to a
/// quiescent snapshot. `Vacant` is a transient placeholder used to move
/// a snapshot out during rematerialization — it never outlives the key
/// lock's critical section in `submit`, so no other code path observes
/// it.
// `Live` dwarfs the other variants, but it is also the variant every hot
// operation touches — boxing it to please `large_enum_variant` would buy
// a smaller *evicted* footprint at the price of a pointer chase on every
// submit/step.
#[allow(clippy::large_enum_variant)]
enum KeyState<P: RegisterProtocol + 'static> {
    Live(KeyCell<P>),
    Evicted(SimSnapshot<P::Object>),
    Vacant,
}

/// One key's slot: the per-key lock every simulation access goes
/// through, plus governor-readable metadata kept *outside* the lock so
/// cold-scans never contend with a running driver. The shard map lock is
/// *not* needed to step a key.
struct KeySlot<P: RegisterProtocol + 'static> {
    state: crate::mcsync::Mutex<KeyState<P>>,
    /// Shard tick of the key's most recent activity (submission or step
    /// batch) — what the idle sweep and the coldest-first order read.
    /// Written under the key lock, read lock-free by the governor.
    last_active: AtomicU64,
    /// Milliseconds since the shard's epoch at the key's most recent
    /// activity — the wall-clock twin of `last_active`, stamped only
    /// when wall-clock aging is configured (ticks freeze without
    /// traffic; this does not).
    last_active_at: AtomicU64,
    /// Live-simulation bits this key currently contributes to the
    /// shard's `live_bits` aggregate; zero while evicted.
    cached_bits: AtomicU64,
}

impl<P: RegisterProtocol + 'static> KeySlot<P> {
    fn new(state: KeyState<P>) -> Self {
        KeySlot {
            state: crate::mcsync::Mutex::new(state),
            last_active: AtomicU64::new(0),
            last_active_at: AtomicU64::new(0),
            cached_bits: AtomicU64::new(0),
        }
    }
}

/// The object-safe surface the store (and its work-stealing driver pool)
/// drives a shard through.
pub(crate) trait ShardEngine: Send + Sync {
    /// Submits one operation on a key, returning its completion slot.
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError>;

    /// Submits a whole batch of operations in one pass: placement for
    /// every key under a single map-lock hold, one key-lock acquisition
    /// per distinct key (however many ops land on it), and one driver
    /// wakeup for the entire batch. Returns one completion slot (or
    /// error) per op, in submission order — per-op failures never poison
    /// their batchmates.
    fn submit_batch(
        &self,
        ops: Vec<(String, OpRequest)>,
    ) -> Vec<Result<Arc<CompletionSlot>, StoreError>>;

    /// Pops one ready key and drains its enabled events (the home
    /// driver's path). Returns whether any key was run.
    fn run_ready(&self) -> bool;

    /// Steals up to half this shard's ready queue in one `pop_half`
    /// pass, stamping all victim-side steal accounting (per-key `stolen`
    /// counts, the batch counter and flight events) *at pop time* — so
    /// metrics are stable the moment an operation's completion is
    /// observable, not only after the whole stolen batch ran. The caller
    /// owns the returned tokens and must hand them to
    /// [`ShardEngine::run_tokens`].
    fn steal_batch(&self) -> Vec<usize>;

    /// Runs a set of tokens previously taken with
    /// [`ShardEngine::steal_batch`].
    fn run_tokens(&self, tokens: Vec<usize>);

    /// Whether the shard's ready queue is non-empty.
    fn has_ready(&self) -> bool;

    /// Counts a steal performed *by* this shard's driver.
    fn note_steal(&self);

    /// Flushes completed results and fails what remains. Call only after
    /// every driver has stopped.
    fn fail_all_pending(&self);

    /// Evicts every quiescent key to a snapshot; returns how many.
    fn evict_quiescent(&self) -> usize;

    /// Cheap (single atomic comparison) check: does the occupancy
    /// trigger want a governor pass right now? Drivers call this every
    /// loop iteration, so it must stay O(1).
    fn wants_governing(&self) -> bool;

    /// Runs one governor pass under the configured [`EvictionPolicy`].
    /// `idle` marks a driver with no ready work (the idle-time sweep
    /// runs only then; the occupancy trigger fires either way). Returns
    /// how many keys were evicted.
    fn govern(&self, idle: bool) -> usize;

    /// Snapshot of the shard's metrics.
    fn metrics(&self) -> ShardMetrics;

    /// Records server-side wire time (frame decode → response flushed)
    /// for one TCP op homed on this shard.
    fn note_wire_latency(&self, ns: u64);

    /// The register value length every write must match.
    fn value_len(&self) -> usize;

    /// The registers' initial value `v₀`.
    fn initial_value(&self) -> Value;

    /// The operation records of one key's register, if materialized or
    /// evicted (snapshots preserve history).
    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>>;

    /// Keys materialized on this shard.
    fn keys(&self) -> Vec<String>;

    /// The protocol's stable name.
    fn protocol_name(&self) -> &'static str;
}

/// The typed shard implementation behind [`ShardEngine`].
struct ShardCore<P: RegisterProtocol + Send + Sync + 'static> {
    /// The shard's protocol (immutable configuration; `new_sim` /
    /// `add_client` take `&self`).
    proto: P,
    /// The placement map: key names to slot tokens. Guarded by its own
    /// lock, held only for the name lookup / first-touch insert — never
    /// across key locks or simulation work.
    map: parking_lot::Mutex<HashMap<String, usize>>,
    /// Append-only slot table, indexed by ready-queue token. Readers
    /// (the per-pop hot path, metrics) take the shared lock; the only
    /// writer is key materialization in `submit`, which already holds
    /// the map lock (lock order: map → slots, never reversed).
    slots: parking_lot::RwLock<Vec<Arc<KeySlot<P>>>>,
    ready: ReadyQueue,
    group: Arc<WorkGroup>,
    counters: Arc<AtomicCounters>,
    /// This shard's index within the store (stable event/metrics label).
    shard: usize,
    /// The store-wide flight recorder every shard stamps events into.
    recorder: Arc<FlightRecorder>,
    policy: HistoryPolicy,
    eviction: EvictionPolicy,
    batch: usize,
    /// Optional wall-clock idle-aging bound: keys untouched this long
    /// are sweep-eligible even with a frozen tick clock (see
    /// [`StoreConfig::with_idle_wall_clock`](crate::StoreConfig::with_idle_wall_clock)).
    idle_wall_clock: Option<std::time::Duration>,
    /// The instant the shard was built — the zero point `last_active_at`
    /// stamps are measured from.
    epoch: Instant,
    name: &'static str,
    value_len: usize,
    initial: Value,
    /// Logical shard clock: one tick per submission or driver step
    /// batch. Key idle ages are measured against it, so governance is
    /// wall-clock-free (deterministic under test schedules).
    ticks: AtomicU64,
    /// Incrementally-maintained sum of every live key's simulation bits
    /// — the O(1) value the occupancy trigger compares against its
    /// watermark (ground-truth occupancy is still re-measured by
    /// `metrics`, and tests assert the two agree at quiescence).
    live_bits: AtomicU64,
    /// Serializes governor sweeps: a second driver finding the lock held
    /// skips its pass instead of duplicating the cold-scan.
    govern_lock: parking_lot::Mutex<()>,
    /// Tick before which the occupancy trigger stays disarmed after a
    /// futile pass (see [`GOVERN_FUTILE_BACKOFF_TICKS`]).
    govern_backoff: AtomicU64,
}

impl<P: RegisterProtocol + Send + Sync + 'static> ShardCore<P>
where
    P::Object: Clone,
{
    /// Applies the history policy to a key after completions have been
    /// flushed (so no un-notified record can be compacted).
    fn apply_history_policy(&self, kc: &mut KeyCell<P>) {
        let compact = match self.policy {
            HistoryPolicy::Unbounded => false,
            HistoryPolicy::TruncateAfter(n) => kc.cell.sim.live_records() > n,
            HistoryPolicy::TruncateOnQuiescence => kc.cell.sim.is_quiescent(),
        };
        if compact {
            let dropped = kc.cell.sim.compact_history();
            self.counters.note_truncated(dropped);
            if dropped > 0 {
                self.recorder
                    .record(FlightEventKind::Compaction, Some(self.shard), dropped);
            }
        }
    }

    /// Advances the shard clock and returns the new tick.
    fn tick(&self) -> u64 {
        // audit:allow(atomics-relaxed) — the tick clock is advisory (idle-age
        // comparisons); it orders nothing and skew only shifts eviction timing.
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Re-measures one key's live-simulation bits into the shard
    /// aggregate. Call under the key lock whenever the key's state may
    /// have changed size (submission, step batch, evict,
    /// rematerialize); evicted/vacant keys account as zero.
    fn account_occupancy(&self, slot: &KeySlot<P>, state: &KeyState<P>) {
        let bits = match state {
            KeyState::Live(kc) => kc.cell.sim.storage_cost().total(),
            KeyState::Evicted(_) | KeyState::Vacant => 0,
        };
        // audit:allow(atomics-relaxed) — written under the key lock (the lock
        // orders it); lock-free readers (governor screens) tolerate staleness.
        let prev = slot.cached_bits.swap(bits, Ordering::Relaxed);
        if bits >= prev {
            // audit:allow(atomics-relaxed) — occupancy aggregate feeding an
            // advisory trigger threshold; no data is published through it.
            self.live_bits.fetch_add(bits - prev, Ordering::Relaxed);
        } else {
            // audit:allow(atomics-relaxed) — see the fetch_add above.
            self.live_bits.fetch_sub(prev - bits, Ordering::Relaxed);
        }
    }

    /// Tries to evict one key: under its lock, a live, fully-quiescent
    /// key (no pending completions, no in-flight simulator work) is
    /// compacted (under a truncating history policy) and snapshotted.
    /// Returns whether the key was evicted.
    fn try_evict(&self, slot: &KeySlot<P>, cause: EvictionCause) -> bool {
        let mut state = tracked_lock(ranks::KEY_STATE, "key_state", || slot.state.lock());
        let KeyState::Live(kc) = &mut *state else {
            return false;
        };
        if !kc.cell.pending.is_empty() || !kc.cell.sim.is_quiescent() {
            return false;
        }
        // Compact before snapshotting — but only under a truncating
        // policy: `Unbounded` promises the full history, which the
        // snapshot then carries whole.
        if self.policy != HistoryPolicy::Unbounded {
            let dropped = kc.cell.sim.compact_history();
            self.counters.note_truncated(dropped);
            if dropped > 0 {
                self.recorder
                    .record(FlightEventKind::Compaction, Some(self.shard), dropped);
            }
        }
        let Some(snap) = kc.cell.sim.snapshot() else {
            return false;
        };
        let snap_bits = snap.storage_bits();
        *state = KeyState::Evicted(snap);
        self.counters.note_eviction(cause);
        let kind = match cause {
            EvictionCause::Manual => FlightEventKind::EvictManual,
            EvictionCause::Idle => FlightEventKind::EvictIdle,
            EvictionCause::Occupancy => FlightEventKind::EvictOccupancy,
        };
        self.recorder.record(kind, Some(self.shard), snap_bits);
        self.account_occupancy(slot, &state);
        true
    }

    /// A snapshot of the slot table (cheap `Arc` clones), so sweeps
    /// never hold the table lock across key locks.
    fn slot_table(&self) -> Vec<Arc<KeySlot<P>>> {
        tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read()).clone()
    }

    /// Resolves a key to its slot token with the map lock already held,
    /// materializing the placement on first touch (lock order: map →
    /// slots, never reversed).
    fn place_locked(&self, index: &mut HashMap<String, usize>, key: &str) -> usize {
        if let Some(&t) = index.get(key) {
            return t;
        }
        let token = self.ready.register_slot();
        let mut slots = tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.write());
        debug_assert_eq!(token, slots.len());
        slots.push(Arc::new(KeySlot::new(KeyState::Live(KeyCell::new(
            self.proto.new_sim(),
        )))));
        drop(slots);
        index.insert(key.to_owned(), token);
        token
    }

    /// Rematerializes an evicted key in place (live keys are untouched);
    /// returns whether a snapshot was restored. Call under the key lock.
    fn materialize(&self, state: &mut KeyState<P>) -> bool {
        if !matches!(&*state, KeyState::Evicted(_)) {
            return false;
        }
        // Move the snapshot out (no deep copy): `Vacant` exists only
        // inside this key-lock critical section.
        let KeyState::Evicted(snap) = std::mem::replace(state, KeyState::Vacant) else {
            unreachable!("matched above");
        };
        *state = KeyState::Live(KeyCell::new(Simulation::restore(snap)));
        self.counters.note_rematerialized();
        self.recorder
            .record(FlightEventKind::Rematerialize, Some(self.shard), 0);
        true
    }

    /// The per-operation submit body shared by `submit` and
    /// `submit_batch`, run under the key lock: client reuse/allocation,
    /// counters and flight events, synchronous-completion accounting.
    fn submit_on_cell(
        &self,
        kc: &mut KeyCell<P>,
        rematerialized: bool,
        req: OpRequest,
        started: Instant,
    ) -> Result<Arc<CompletionSlot>, StoreError> {
        let client = kc
            .clients
            .iter()
            .copied()
            .find(|&c| kc.cell.sim.outstanding_op(c).is_none())
            .unwrap_or_else(|| {
                let c = self.proto.add_client(&mut kc.cell.sim);
                kc.clients.push(c);
                c
            });
        let write_bytes = match &req {
            OpRequest::Write(v) => Some(v.len() as u64),
            OpRequest::Read => None,
        };
        match kc.cell.submit(client, req) {
            Ok((op, slot)) => {
                if let Some(bytes) = write_bytes {
                    self.counters.note_write_submitted(bytes);
                    self.recorder
                        .record(FlightEventKind::SubmitWrite, Some(self.shard), bytes);
                } else {
                    self.counters.note_read_submitted();
                    self.recorder
                        .record(FlightEventKind::SubmitRead, Some(self.shard), 0);
                }
                // A protocol could in principle complete synchronously
                // (the slot is then filled with no pending entry, so no
                // driver ever sees it); count it here, still under the
                // key lock so a driver cannot race us. The op never
                // waited for a driver, so its queue-wait phase is zero
                // and its whole lifetime is execute.
                if let Some(Ok(result)) = slot.try_outcome() {
                    self.counters.note_completion(&result);
                    let total_ns = started.elapsed().as_nanos() as u64;
                    self.counters.note_phases(0, total_ns);
                    match result {
                        OpResult::Read(_) => {
                            self.counters.note_read_latency(total_ns, rematerialized);
                        }
                        OpResult::Write => self.counters.note_write_latency(total_ns),
                    }
                } else {
                    kc.inflight.push(InflightOp {
                        op,
                        started,
                        exec_start: None,
                        rematerialized,
                    });
                }
                Ok(slot)
            }
            Err(e) => {
                self.counters.note_rejected();
                self.recorder
                    .record(FlightEventKind::Rejected, Some(self.shard), 0);
                Err(e.into())
            }
        }
    }

    /// Fails everything pending on one live key (the shutdown path),
    /// flushing completed results first. Call under the key lock.
    fn shut_down_key(&self, kc: &mut KeyCell<P>) {
        let counters = &self.counters;
        let inflight = &mut kc.inflight;
        let done = Instant::now();
        kc.cell
            .complete_pending_with(|op, r| note_completed(counters, inflight, op, r, done));
        kc.cell.fail_pending(&ThreadedError::ShutDown);
        kc.inflight.clear();
    }

    /// Stamps a key's activity clocks: the logical tick always, the
    /// wall-clock twin only when aging is enabled (keeping the extra
    /// clock read off the default hot path). Call under the key lock.
    fn touch(&self, slot: &KeySlot<P>) {
        // audit:allow(atomics-relaxed) — activity stamps are read by the
        // governor for aging decisions only; a stale read delays one sweep.
        slot.last_active.store(self.tick(), Ordering::Relaxed);
        if self.idle_wall_clock.is_some() {
            slot.last_active_at
                // audit:allow(atomics-relaxed) — same as the tick stamp above.
                .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
        }
    }

    /// One ready key's turn, with the slot already popped (owned by the
    /// caller): drain *every* enabled simulator event for the key under
    /// a single lock hold — coalesced stepping. PR 7 stamped phases and
    /// ticked once per `batch`-sized pop; draining the whole key costs
    /// one exec-start stamp, one completion flush, one history pass, and
    /// one tick however many batch-loads the backlog needed. No new
    /// events can appear while the key lock is held, so the drain
    /// terminates (the backlog is bounded by in-flight ops).
    fn run_token(&self, token: usize) {
        let key_slot =
            Arc::clone(&tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read())[token]);
        let mut more = false;
        {
            let mut state = tracked_lock(ranks::KEY_STATE, "key_state", || key_slot.state.lock());
            if let KeyState::Live(kc) = &mut *state {
                // Everything in flight on this key leaves its queue-wait
                // phase now (batch-granular execute-start stamp; the
                // first batch wins for ops spanning several).
                let exec_start = Instant::now();
                for entry in &mut kc.inflight {
                    entry.exec_start.get_or_insert(exec_start);
                }
                let mut stepped = 0;
                loop {
                    let ran = kc.cell.step_events(self.batch);
                    stepped += ran;
                    if ran < self.batch {
                        break; // budget unspent ⇒ no enabled events left
                    }
                }
                if stepped > 0 {
                    let counters = &self.counters;
                    let inflight = &mut kc.inflight;
                    let done = Instant::now();
                    kc.cell.complete_pending_with(|op, r| {
                        note_completed(counters, inflight, op, r, done);
                    });
                    self.apply_history_policy(kc);
                    self.touch(&key_slot);
                }
                more = kc.cell.has_enabled();
                self.account_occupancy(&key_slot, &state);
            }
        }
        // Re-enqueueing without a notify is safe: the finishing driver is
        // awake, and a parking driver re-checks every queue first.
        self.ready.finish(token, more);
    }
}

impl<P: RegisterProtocol + Send + Sync + 'static> ShardEngine for ShardCore<P>
where
    P::Object: Clone,
{
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError> {
        let started = Instant::now();
        // Fast-path reject; the *authoritative* stop check happens under
        // the key lock below, ordered against the shutdown sweep.
        if self.group.is_stopped() {
            return Err(StoreError::ShutDown);
        }
        // Placement: the map lock is held only for the name lookup (and
        // first-touch slot creation) — never across simulation work, so
        // a driver's step batch on one key cannot stall other keys'
        // submissions behind this lock.
        let token = self.place_locked(
            &mut tracked_lock(ranks::SHARD_MAP, "shard_map", || self.map.lock()),
            key,
        );
        let key_slot =
            Arc::clone(&tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read())[token]);
        let slot = {
            let mut state = tracked_lock(ranks::KEY_STATE, "key_state", || key_slot.state.lock());
            let rematerialized = self.materialize(&mut state);
            let KeyState::Live(kc) = &mut *state else {
                unreachable!("rematerialized above");
            };
            let slot = self.submit_on_cell(kc, rematerialized, req, started)?;
            // Authoritative stop check, under the key lock: the shutdown
            // sweep (`fail_all_pending`, after every driver joined) takes
            // this same lock, so either our pending op was inserted
            // before the sweep (the sweep fails it), or the sweep ran
            // first and the stop flag — set before it — is visible here,
            // and we clean up this key ourselves. Never neither.
            if self.group.is_stopped() {
                self.shut_down_key(kc);
                return Err(StoreError::ShutDown);
            }
            self.touch(&key_slot);
            self.account_occupancy(&key_slot, &state);
            slot
        };
        // Out of every lock: publish the key to the ready queue and wake
        // a driver. (A racing stop at this point is harmless: the sweep
        // above already failed the slot, and the queue is dead.)
        if self.ready.enqueue(token) {
            self.group.notify();
        }
        Ok(slot)
    }

    fn submit_batch(
        &self,
        ops: Vec<(String, OpRequest)>,
    ) -> Vec<Result<Arc<CompletionSlot>, StoreError>> {
        let started = Instant::now();
        let n = ops.len();
        // Fast-path reject; the authoritative stop check happens per key
        // group below, same argument as `submit`.
        if self.group.is_stopped() {
            return ops.iter().map(|_| Err(StoreError::ShutDown)).collect();
        }
        // Placement for the whole batch under one map-lock hold.
        let mut tokens = Vec::with_capacity(n);
        let mut reqs: Vec<Option<OpRequest>> = Vec::with_capacity(n);
        {
            let mut index = tracked_lock(ranks::SHARD_MAP, "shard_map", || self.map.lock());
            for (key, req) in ops {
                tokens.push(self.place_locked(&mut index, &key));
                reqs.push(Some(req));
            }
        }
        // Submit key group by key group: every op sharing a key runs
        // under one key-lock hold with one activity stamp and one
        // occupancy re-measure for the lot.
        let mut results: Vec<Option<Result<Arc<CompletionSlot>, StoreError>>> =
            (0..n).map(|_| None).collect();
        let mut wake = false;
        for i in 0..n {
            if results[i].is_some() {
                continue;
            }
            let token = tokens[i];
            let key_slot = Arc::clone(
                &tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read())[token],
            );
            let mut state = tracked_lock(ranks::KEY_STATE, "key_state", || key_slot.state.lock());
            let mut rematerialized = self.materialize(&mut state);
            let KeyState::Live(kc) = &mut *state else {
                unreachable!("rematerialized above");
            };
            for j in i..n {
                if tokens[j] != token || results[j].is_some() {
                    continue;
                }
                let req = reqs[j].take().expect("each op submitted once");
                results[j] = Some(self.submit_on_cell(kc, rematerialized, req, started));
                // Only the group's first op paid the rematerialization.
                rematerialized = false;
            }
            if self.group.is_stopped() {
                self.shut_down_key(kc);
                for (j, r) in results.iter_mut().enumerate() {
                    if tokens[j] == token {
                        *r = Some(Err(StoreError::ShutDown));
                    }
                }
                continue;
            }
            self.touch(&key_slot);
            self.account_occupancy(&key_slot, &state);
            drop(state);
            wake |= self.ready.enqueue(token);
        }
        // One wakeup for the whole batch: a single driver drains the
        // enqueued keys (or neighbors steal them), instead of N notify
        // round-trips.
        if wake {
            self.group.notify();
        }
        results
            .into_iter()
            .map(|r| r.expect("every op visited"))
            .collect()
    }

    fn run_ready(&self) -> bool {
        let Some(token) = self.ready.pop() else {
            return false;
        };
        self.run_token(token);
        true
    }

    fn steal_batch(&self) -> Vec<usize> {
        let tokens = self.ready.pop_half();
        // All victim-side accounting happens here, before any stolen key
        // runs: once a client observes a completion, no steal counter
        // for the batch that produced it moves afterwards (two
        // back-to-back metrics snapshots at quiescence stay equal).
        for _ in &tokens {
            self.counters.note_stolen();
            self.recorder
                .record(FlightEventKind::Steal, Some(self.shard), 0);
        }
        if tokens.len() > 1 {
            self.counters.note_stolen_batch();
            self.recorder.record(
                FlightEventKind::StealBatch,
                Some(self.shard),
                tokens.len() as u64,
            );
        }
        tokens
    }

    fn run_tokens(&self, tokens: Vec<usize>) {
        for token in tokens {
            self.run_token(token);
        }
    }

    fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    fn note_steal(&self) {
        self.counters.note_steal();
    }

    fn fail_all_pending(&self) {
        // No placement lock needed: submissions re-check the stop flag
        // under each key lock (see `submit`), so a pending op either
        // landed before this sweep's key-lock acquisition (failed here)
        // or its submitter observes the stop and cleans up itself.
        let done = Instant::now();
        for slot in tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read()).iter() {
            let mut state = tracked_lock(ranks::KEY_STATE, "key_state", || slot.state.lock());
            if let KeyState::Live(kc) = &mut *state {
                // Flush results that are ready, then fail what remains so
                // no client blocks on a dead shard.
                let counters = &self.counters;
                let inflight = &mut kc.inflight;
                kc.cell
                    .complete_pending_with(|op, r| note_completed(counters, inflight, op, r, done));
                kc.cell.fail_pending(&ThreadedError::ShutDown);
                kc.inflight.clear();
            }
        }
    }

    fn evict_quiescent(&self) -> usize {
        self.slot_table()
            .iter()
            .filter(|slot| self.try_evict(slot, EvictionCause::Manual))
            .count()
    }

    fn wants_governing(&self) -> bool {
        match self.eviction {
            EvictionPolicy::OccupancyAbove { bits, .. } => {
                // audit:allow(atomics-relaxed) — advisory trigger: a stale read
                // delays (or briefly duplicates) one governor pass, never corrupts.
                self.live_bits.load(Ordering::Relaxed) > bits
                    // audit:allow(atomics-relaxed) — same trigger; see above.
                    && self.ticks.load(Ordering::Relaxed)
                        // audit:allow(atomics-relaxed) — same trigger; see above.
                        >= self.govern_backoff.load(Ordering::Relaxed)
            }
            EvictionPolicy::Manual | EvictionPolicy::IdleAfter(_) => false,
        }
    }

    fn govern(&self, idle: bool) -> usize {
        // One sweeper per shard at a time: a second driver skips instead
        // of duplicating the cold-scan (the trigger stays armed, so
        // nothing is lost).
        let Some(_sweep) = tracked_try(ranks::GOVERN, "govern", || self.govern_lock.try_lock())
        else {
            return 0;
        };
        match self.eviction {
            EvictionPolicy::Manual => 0,
            EvictionPolicy::IdleAfter(threshold) => {
                if !idle {
                    return 0;
                }
                // audit:allow(atomics-relaxed) — aging snapshot; skew shifts which
                // sweep reclaims a key, not whether it is safe to reclaim (the
                // authoritative quiescence check runs under the key lock).
                let now = self.ticks.load(Ordering::Relaxed);
                // Wall-clock aging (when configured): a key is also
                // sweep-eligible once untouched for the configured
                // duration, so a store with a frozen tick clock (no
                // traffic) still reclaims cold keys.
                let wall = self.idle_wall_clock.map(|age| {
                    (
                        self.epoch.elapsed().as_millis() as u64,
                        age.as_millis() as u64,
                    )
                });
                // `cached_bits > 0` screens out already-evicted keys
                // without touching their locks (every live register
                // holds at least its v₀ blocks, so live keys are never
                // zero-bit).
                self.slot_table()
                    .iter()
                    .filter(|slot| {
                        // audit:allow(atomics-relaxed) — lock-free screen only; try_evict
                        // re-checks everything under the key lock.
                        if slot.cached_bits.load(Ordering::Relaxed) == 0 {
                            return false;
                        }
                        let tick_aged = now
                            // audit:allow(atomics-relaxed) — aging comparison; see `now` above.
                            .saturating_sub(slot.last_active.load(Ordering::Relaxed))
                            >= threshold;
                        let wall_aged = wall.is_some_and(|(now_ms, age_ms)| {
                            // audit:allow(atomics-relaxed) — aging comparison; see `now` above.
                            now_ms.saturating_sub(slot.last_active_at.load(Ordering::Relaxed))
                                >= age_ms
                        });
                        (tick_aged || wall_aged) && self.try_evict(slot, EvictionCause::Idle)
                    })
                    .count()
            }
            EvictionPolicy::OccupancyAbove {
                bits,
                low_watermark,
            } => {
                // audit:allow(atomics-relaxed) — advisory trigger re-check; see
                // `wants_governing`.
                if self.live_bits.load(Ordering::Relaxed) <= bits {
                    return 0;
                }
                // Coldest-first: order live keys by their last-activity
                // tick and evict until the shard is back at (or below)
                // the low watermark. The per-pass *attempt* cap bounds
                // key-lock traffic even when nothing is evictable, so a
                // governing driver is back serving ready keys quickly;
                // the trigger re-fires on the next loop iteration if
                // more reclamation is needed.
                let table = self.slot_table();
                let mut cold: Vec<(u64, usize)> = table
                    .iter()
                    .enumerate()
                    // audit:allow(atomics-relaxed) — lock-free screen; try_evict
                    // re-checks under the key lock.
                    .filter(|(_, slot)| slot.cached_bits.load(Ordering::Relaxed) > 0)
                    // audit:allow(atomics-relaxed) — coldest-first ordering hint only.
                    .map(|(i, slot)| (slot.last_active.load(Ordering::Relaxed), i))
                    .collect();
                cold.sort_unstable();
                let mut evicted = 0;
                for (attempts, (_, i)) in cold.into_iter().enumerate() {
                    // audit:allow(atomics-relaxed) — watermark check is advisory; an
                    // extra or missed attempt is corrected next pass.
                    if self.live_bits.load(Ordering::Relaxed) <= low_watermark
                        || attempts >= GOVERN_ATTEMPTS_PER_PASS
                    {
                        break;
                    }
                    if self.try_evict(&table[i], EvictionCause::Occupancy) {
                        evicted += 1;
                    }
                }
                if evicted == 0 {
                    // Armed but stuck (everything cold enough to matter
                    // is busy): back off so the still-armed trigger does
                    // not re-pay this scan on every driver iteration.
                    // audit:allow(atomics-relaxed) — backoff arming is
                    // advisory; see `wants_governing`.
                    let until = self.ticks.load(Ordering::Relaxed) + GOVERN_FUTILE_BACKOFF_TICKS;
                    // audit:allow(atomics-relaxed) — see above.
                    self.govern_backoff.store(until, Ordering::Relaxed);
                }
                evicted
            }
        }
    }

    fn metrics(&self) -> ShardMetrics {
        let slots = tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read());
        let mut occupancy = StorageCost::default();
        let mut peak = 0u64;
        let mut live_records = 0u64;
        let mut evicted_keys = 0usize;
        let mut snapshot_bits = 0u64;
        for slot in slots.iter() {
            let state = tracked_lock(ranks::KEY_STATE, "key_state", || slot.state.lock());
            match &*state {
                KeyState::Live(kc) => {
                    let cost = kc.cell.sim.storage_cost();
                    occupancy.object_bits += cost.object_bits;
                    occupancy.client_bits += cost.client_bits;
                    occupancy.inflight_param_bits += cost.inflight_param_bits;
                    occupancy.inflight_resp_bits += cost.inflight_resp_bits;
                    peak += kc.cell.sim.peak_storage_bits();
                    live_records += kc.cell.sim.live_records() as u64;
                }
                KeyState::Evicted(snap) => {
                    evicted_keys += 1;
                    snapshot_bits += snap.storage_bits();
                    live_records += snap.record_count() as u64;
                    // Peaks survive eviction: the snapshot carries the
                    // register's observed peak, so the aggregate doesn't
                    // silently drop when a key leaves live memory.
                    peak += snap.peak_bits();
                }
                KeyState::Vacant => unreachable!("Vacant never escapes the key lock"),
            }
        }
        ShardMetrics {
            shard: self.shard,
            protocol: self.name.to_owned(),
            keys: slots.len(),
            ops: self.counters.snapshot(),
            occupancy,
            peak_register_bits: peak,
            live_records,
            evicted_keys,
            snapshot_bits,
            ready_keys: self.ready.len(),
            // audit:allow(atomics-relaxed) — metrics snapshot; racy by design.
            governed_bits: self.live_bits.load(Ordering::Relaxed),
            read_hit_latency: self.counters.read_hit_histogram(),
            read_remat_latency: self.counters.read_remat_histogram(),
            write_latency: self.counters.write_histogram(),
            queue_wait: self.counters.queue_wait_histogram(),
            execute: self.counters.execute_histogram(),
            wire: self.counters.wire_histogram(),
        }
    }

    fn note_wire_latency(&self, ns: u64) {
        self.counters.note_wire_latency(ns);
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn initial_value(&self) -> Value {
        self.initial.clone()
    }

    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>> {
        let token = *tracked_lock(ranks::SHARD_MAP, "shard_map", || self.map.lock()).get(key)?;
        let key_slot =
            Arc::clone(&tracked_lock(ranks::SLOT_TABLE, "slot_table", || self.slots.read())[token]);
        let state = tracked_lock(ranks::KEY_STATE, "key_state", || key_slot.state.lock());
        Some(match &*state {
            KeyState::Live(kc) => kc.cell.sim.full_history(),
            KeyState::Evicted(snap) => snap.records().to_vec(),
            KeyState::Vacant => unreachable!("Vacant never escapes the key lock"),
        })
    }

    fn keys(&self) -> Vec<String> {
        tracked_lock(ranks::SHARD_MAP, "shard_map", || self.map.lock())
            .keys()
            .cloned()
            .collect()
    }

    fn protocol_name(&self) -> &'static str {
        self.name
    }
}

/// Builds a shard engine from its spec. Driver threads are pooled at the
/// store level (see `store.rs`), not per shard.
pub(crate) fn build(spec: &ShardSpec, parts: EngineParts) -> Arc<dyn ShardEngine> {
    match spec.protocol {
        ProtocolSpec::Abd => engine(Abd::new(spec.register), parts),
        ProtocolSpec::AbdAtomic => engine(AbdAtomic::new(spec.register), parts),
        ProtocolSpec::Safe => engine(Safe::new(spec.register), parts),
        ProtocolSpec::Coded => engine(Coded::new(spec.register), parts),
        ProtocolSpec::Adaptive => engine(Adaptive::new(spec.register), parts),
    }
}

/// Protocol-independent construction parameters for one shard engine.
/// `shard` is the shard's index within the store; `recorder` the
/// store-wide flight recorder.
pub(crate) struct EngineParts {
    pub(crate) batch: usize,
    pub(crate) policy: HistoryPolicy,
    pub(crate) eviction: EvictionPolicy,
    pub(crate) idle_wall_clock: Option<std::time::Duration>,
    pub(crate) group: Arc<WorkGroup>,
    pub(crate) shard: usize,
    pub(crate) recorder: Arc<FlightRecorder>,
}

fn engine<P: RegisterProtocol + Send + Sync + 'static>(
    proto: P,
    parts: EngineParts,
) -> Arc<dyn ShardEngine>
where
    P::Object: Clone,
{
    let name = proto.name();
    let value_len = proto.config().value_len;
    let initial = proto.config().initial_value();
    Arc::new(ShardCore {
        proto,
        map: parking_lot::Mutex::new(HashMap::new()),
        slots: parking_lot::RwLock::new(Vec::new()),
        ready: ReadyQueue::new(),
        group: parts.group,
        counters: Arc::new(AtomicCounters::default()),
        shard: parts.shard,
        recorder: parts.recorder,
        policy: parts.policy,
        eviction: parts.eviction,
        batch: parts.batch,
        idle_wall_clock: parts.idle_wall_clock,
        epoch: Instant::now(),
        name,
        value_len,
        initial,
        ticks: AtomicU64::new(0),
        live_bits: AtomicU64::new(0),
        govern_lock: parking_lot::Mutex::new(()),
        govern_backoff: AtomicU64::new(0),
    })
}
