//! One shard: a map of per-key register simulations behind an
//! event-driven ready queue.
//!
//! The PR-2 shard driver rescanned every materialized key per batch —
//! O(keys) work even when one key was hot. A shard now keeps a
//! [`ReadyQueue`] of key slots with enabled simulator events: a key is
//! enqueued when a client operation arrives or a step leaves follow-on
//! events enabled, so a driver batch does O(enabled) work. Keys live
//! behind *per-key* locks (the shard map lock covers only placement and
//! lifecycle), and a popped slot is owned by exactly one driver until it
//! finishes — which is what lets an idle driver of another shard *steal*
//! a ready key and step it without breaking per-key serialization.
//!
//! On top of the same per-key lifecycle, a [`HistoryPolicy`] bounds each
//! register's `OpRecord` history (compaction keeps the frontier writes
//! the consistency checkers need), and a quiescent key can be *evicted*
//! to a [`SimSnapshot`] and rematerialized on its next operation.
//!
//! Eviction is *governed*: an [`EvictionPolicy`] makes the driver pool
//! itself run the reclamation — idle drivers sweep their shard for keys
//! quiescent past the idle threshold, and an occupancy trigger (one
//! atomic comparison against an incrementally-maintained per-shard
//! live-bits counter) evicts coldest-first down to a low watermark — so
//! bounded space holds under sustained traffic with zero dedicated
//! threads and without ever blocking a ready key.

use crate::config::ShardSpec;
use crate::config::{EvictionPolicy, HistoryPolicy, ProtocolSpec};
use crate::metrics::{AtomicCounters, EvictionCause, ShardMetrics};
use crate::recorder::{FlightEventKind, FlightRecorder};
use crate::store::StoreError;
use rsb_coding::Value;
use rsb_fpsm::{
    ClientId, OpId, OpRecord, OpRequest, OpResult, SimSnapshot, Simulation, StorageCost,
};
use rsb_registers::{
    Abd, AbdAtomic, Adaptive, Coded, CompletionSlot, ReadyQueue, RegisterCell, RegisterProtocol,
    Safe, ThreadedError, WorkGroup,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cap on eviction *attempts* (key locks taken) per occupancy-governor
/// pass, so a sweeping driver returns to ready keys quickly; the
/// trigger stays armed and the next pass continues where this one left
/// off.
const GOVERN_ATTEMPTS_PER_PASS: usize = 32;

/// After a futile occupancy pass (armed, but nothing was quiescent
/// enough to evict), the trigger stays disarmed for this many shard
/// ticks. Quiescent keys can only appear through traffic — which is
/// exactly what advances ticks — so the backoff self-clears the moment
/// eviction could plausibly succeed again, and an armed-but-stuck
/// governor stops paying a full cold-scan on every driver iteration.
const GOVERN_FUTILE_BACKOFF_TICKS: u64 = 64;

/// Submission-time bookkeeping for one in-flight operation, matched up
/// at completion to record end-to-end latency split by whether the
/// submission had to rematerialize an evicted key, plus the phase split
/// (queue wait vs execution).
struct InflightOp {
    op: OpId,
    started: Instant,
    /// First driver step batch that picked the key up after this op was
    /// submitted — the queue-wait → execute boundary. Phase attribution
    /// is batch-granular: every op in flight on a key shares the batch's
    /// execute-start stamp.
    exec_start: Option<Instant>,
    rematerialized: bool,
}

/// One key's live register: its simulation cell plus the sim-level
/// clients allocated for it so far (reused across operations when idle).
struct KeyCell<P: RegisterProtocol + 'static> {
    cell: RegisterCell<P>,
    clients: Vec<ClientId>,
    inflight: Vec<InflightOp>,
}

impl<P: RegisterProtocol + 'static> KeyCell<P> {
    fn new(sim: Simulation<P::Object, P::Client>) -> Self {
        KeyCell {
            cell: RegisterCell::new(sim),
            clients: Vec::new(),
            inflight: Vec::new(),
        }
    }
}

/// Visits one completed operation: bumps the op/byte counters, records
/// end-to-end latency (reads into the hit/rematerialize histograms,
/// writes into theirs), and splits the op's lifetime into queue-wait
/// (submit → first executing batch) and execute (batch → completion)
/// phase samples. `done` is the completion stamp, taken once per flush
/// so a large batch pays one clock read.
fn note_completed(
    counters: &AtomicCounters,
    inflight: &mut Vec<InflightOp>,
    op: OpId,
    result: &OpResult,
    done: Instant,
) {
    counters.note_completion(result);
    if let Some(i) = inflight.iter().position(|e| e.op == op) {
        let entry = inflight.swap_remove(i);
        let total_ns = done.saturating_duration_since(entry.started).as_nanos() as u64;
        let exec_start = entry.exec_start.unwrap_or(done);
        counters.note_phases(
            exec_start
                .saturating_duration_since(entry.started)
                .as_nanos() as u64,
            done.saturating_duration_since(exec_start).as_nanos() as u64,
        );
        match result {
            OpResult::Read(_) => counters.note_read_latency(total_ns, entry.rematerialized),
            OpResult::Write => counters.note_write_latency(total_ns),
        }
    }
}

/// A key is either materialized (live simulation) or evicted to a
/// quiescent snapshot. `Vacant` is a transient placeholder used to move
/// a snapshot out during rematerialization — it never outlives the key
/// lock's critical section in `submit`, so no other code path observes
/// it.
// `Live` dwarfs the other variants, but it is also the variant every hot
// operation touches — boxing it to please `large_enum_variant` would buy
// a smaller *evicted* footprint at the price of a pointer chase on every
// submit/step.
#[allow(clippy::large_enum_variant)]
enum KeyState<P: RegisterProtocol + 'static> {
    Live(KeyCell<P>),
    Evicted(SimSnapshot<P::Object>),
    Vacant,
}

/// One key's slot: the per-key lock every simulation access goes
/// through, plus governor-readable metadata kept *outside* the lock so
/// cold-scans never contend with a running driver. The shard map lock is
/// *not* needed to step a key.
struct KeySlot<P: RegisterProtocol + 'static> {
    state: parking_lot::Mutex<KeyState<P>>,
    /// Shard tick of the key's most recent activity (submission or step
    /// batch) — what the idle sweep and the coldest-first order read.
    /// Written under the key lock, read lock-free by the governor.
    last_active: AtomicU64,
    /// Live-simulation bits this key currently contributes to the
    /// shard's `live_bits` aggregate; zero while evicted.
    cached_bits: AtomicU64,
}

impl<P: RegisterProtocol + 'static> KeySlot<P> {
    fn new(state: KeyState<P>) -> Self {
        KeySlot {
            state: parking_lot::Mutex::new(state),
            last_active: AtomicU64::new(0),
            cached_bits: AtomicU64::new(0),
        }
    }
}

/// The object-safe surface the store (and its work-stealing driver pool)
/// drives a shard through.
pub(crate) trait ShardEngine: Send + Sync {
    /// Submits one operation on a key, returning its completion slot.
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError>;

    /// Pops one ready key and runs a step batch on it. `thief` marks a
    /// foreign driver (counted in the shard's `stolen` metric). Returns
    /// whether any key was run.
    fn run_ready(&self, thief: bool) -> bool;

    /// Whether the shard's ready queue is non-empty.
    fn has_ready(&self) -> bool;

    /// Counts a steal performed *by* this shard's driver.
    fn note_steal(&self);

    /// Flushes completed results and fails what remains. Call only after
    /// every driver has stopped.
    fn fail_all_pending(&self);

    /// Evicts every quiescent key to a snapshot; returns how many.
    fn evict_quiescent(&self) -> usize;

    /// Cheap (single atomic comparison) check: does the occupancy
    /// trigger want a governor pass right now? Drivers call this every
    /// loop iteration, so it must stay O(1).
    fn wants_governing(&self) -> bool;

    /// Runs one governor pass under the configured [`EvictionPolicy`].
    /// `idle` marks a driver with no ready work (the idle-time sweep
    /// runs only then; the occupancy trigger fires either way). Returns
    /// how many keys were evicted.
    fn govern(&self, idle: bool) -> usize;

    /// Snapshot of the shard's metrics.
    fn metrics(&self) -> ShardMetrics;

    /// Records server-side wire time (frame decode → response flushed)
    /// for one TCP op homed on this shard.
    fn note_wire_latency(&self, ns: u64);

    /// The register value length every write must match.
    fn value_len(&self) -> usize;

    /// The registers' initial value `v₀`.
    fn initial_value(&self) -> Value;

    /// The operation records of one key's register, if materialized or
    /// evicted (snapshots preserve history).
    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>>;

    /// Keys materialized on this shard.
    fn keys(&self) -> Vec<String>;

    /// The protocol's stable name.
    fn protocol_name(&self) -> &'static str;
}

/// The typed shard implementation behind [`ShardEngine`].
struct ShardCore<P: RegisterProtocol + Send + Sync + 'static> {
    /// The shard's protocol (immutable configuration; `new_sim` /
    /// `add_client` take `&self`).
    proto: P,
    /// The placement map: key names to slot tokens. Guarded by its own
    /// lock, held only for the name lookup / first-touch insert — never
    /// across key locks or simulation work.
    map: parking_lot::Mutex<HashMap<String, usize>>,
    /// Append-only slot table, indexed by ready-queue token. Readers
    /// (the per-pop hot path, metrics) take the shared lock; the only
    /// writer is key materialization in `submit`, which already holds
    /// the map lock (lock order: map → slots, never reversed).
    slots: parking_lot::RwLock<Vec<Arc<KeySlot<P>>>>,
    ready: ReadyQueue,
    group: Arc<WorkGroup>,
    counters: Arc<AtomicCounters>,
    /// This shard's index within the store (stable event/metrics label).
    shard: usize,
    /// The store-wide flight recorder every shard stamps events into.
    recorder: Arc<FlightRecorder>,
    policy: HistoryPolicy,
    eviction: EvictionPolicy,
    batch: usize,
    name: &'static str,
    value_len: usize,
    initial: Value,
    /// Logical shard clock: one tick per submission or driver step
    /// batch. Key idle ages are measured against it, so governance is
    /// wall-clock-free (deterministic under test schedules).
    ticks: AtomicU64,
    /// Incrementally-maintained sum of every live key's simulation bits
    /// — the O(1) value the occupancy trigger compares against its
    /// watermark (ground-truth occupancy is still re-measured by
    /// `metrics`, and tests assert the two agree at quiescence).
    live_bits: AtomicU64,
    /// Serializes governor sweeps: a second driver finding the lock held
    /// skips its pass instead of duplicating the cold-scan.
    govern_lock: parking_lot::Mutex<()>,
    /// Tick before which the occupancy trigger stays disarmed after a
    /// futile pass (see [`GOVERN_FUTILE_BACKOFF_TICKS`]).
    govern_backoff: AtomicU64,
}

impl<P: RegisterProtocol + Send + Sync + 'static> ShardCore<P>
where
    P::Object: Clone,
{
    /// Applies the history policy to a key after completions have been
    /// flushed (so no un-notified record can be compacted).
    fn apply_history_policy(&self, kc: &mut KeyCell<P>) {
        let compact = match self.policy {
            HistoryPolicy::Unbounded => false,
            HistoryPolicy::TruncateAfter(n) => kc.cell.sim.live_records() > n,
            HistoryPolicy::TruncateOnQuiescence => kc.cell.sim.is_quiescent(),
        };
        if compact {
            let dropped = kc.cell.sim.compact_history();
            self.counters.note_truncated(dropped);
            if dropped > 0 {
                self.recorder
                    .record(FlightEventKind::Compaction, Some(self.shard), dropped);
            }
        }
    }

    /// Advances the shard clock and returns the new tick.
    fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Re-measures one key's live-simulation bits into the shard
    /// aggregate. Call under the key lock whenever the key's state may
    /// have changed size (submission, step batch, evict,
    /// rematerialize); evicted/vacant keys account as zero.
    fn account_occupancy(&self, slot: &KeySlot<P>, state: &KeyState<P>) {
        let bits = match state {
            KeyState::Live(kc) => kc.cell.sim.storage_cost().total(),
            KeyState::Evicted(_) | KeyState::Vacant => 0,
        };
        let prev = slot.cached_bits.swap(bits, Ordering::Relaxed);
        if bits >= prev {
            self.live_bits.fetch_add(bits - prev, Ordering::Relaxed);
        } else {
            self.live_bits.fetch_sub(prev - bits, Ordering::Relaxed);
        }
    }

    /// Tries to evict one key: under its lock, a live, fully-quiescent
    /// key (no pending completions, no in-flight simulator work) is
    /// compacted (under a truncating history policy) and snapshotted.
    /// Returns whether the key was evicted.
    fn try_evict(&self, slot: &KeySlot<P>, cause: EvictionCause) -> bool {
        let mut state = slot.state.lock();
        let KeyState::Live(kc) = &mut *state else {
            return false;
        };
        if !kc.cell.pending.is_empty() || !kc.cell.sim.is_quiescent() {
            return false;
        }
        // Compact before snapshotting — but only under a truncating
        // policy: `Unbounded` promises the full history, which the
        // snapshot then carries whole.
        if self.policy != HistoryPolicy::Unbounded {
            let dropped = kc.cell.sim.compact_history();
            self.counters.note_truncated(dropped);
            if dropped > 0 {
                self.recorder
                    .record(FlightEventKind::Compaction, Some(self.shard), dropped);
            }
        }
        let Some(snap) = kc.cell.sim.snapshot() else {
            return false;
        };
        let snap_bits = snap.storage_bits();
        *state = KeyState::Evicted(snap);
        self.counters.note_eviction(cause);
        let kind = match cause {
            EvictionCause::Manual => FlightEventKind::EvictManual,
            EvictionCause::Idle => FlightEventKind::EvictIdle,
            EvictionCause::Occupancy => FlightEventKind::EvictOccupancy,
        };
        self.recorder.record(kind, Some(self.shard), snap_bits);
        self.account_occupancy(slot, &state);
        true
    }

    /// A snapshot of the slot table (cheap `Arc` clones), so sweeps
    /// never hold the table lock across key locks.
    fn slot_table(&self) -> Vec<Arc<KeySlot<P>>> {
        self.slots.read().clone()
    }
}

impl<P: RegisterProtocol + Send + Sync + 'static> ShardEngine for ShardCore<P>
where
    P::Object: Clone,
{
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError> {
        let started = Instant::now();
        // Fast-path reject; the *authoritative* stop check happens under
        // the key lock below, ordered against the shutdown sweep.
        if self.group.is_stopped() {
            return Err(StoreError::ShutDown);
        }
        // Placement: the map lock is held only for the name lookup (and
        // first-touch slot creation) — never across simulation work, so
        // a driver's step batch on one key cannot stall other keys'
        // submissions behind this lock.
        let token = {
            let mut index = self.map.lock();
            if let Some(&t) = index.get(key) {
                t
            } else {
                let token = self.ready.register_slot();
                let mut slots = self.slots.write();
                debug_assert_eq!(token, slots.len());
                slots.push(Arc::new(KeySlot::new(KeyState::Live(KeyCell::new(
                    self.proto.new_sim(),
                )))));
                drop(slots);
                index.insert(key.to_owned(), token);
                token
            }
        };
        let key_slot = Arc::clone(&self.slots.read()[token]);
        let slot = {
            let mut state = key_slot.state.lock();
            let rematerialized = matches!(&*state, KeyState::Evicted(_));
            if rematerialized {
                // Move the snapshot out (no deep copy): `Vacant` exists
                // only inside this key-lock critical section.
                let KeyState::Evicted(snap) = std::mem::replace(&mut *state, KeyState::Vacant)
                else {
                    unreachable!("matched above");
                };
                *state = KeyState::Live(KeyCell::new(Simulation::restore(snap)));
                self.counters.note_rematerialized();
                self.recorder
                    .record(FlightEventKind::Rematerialize, Some(self.shard), 0);
            }
            let KeyState::Live(kc) = &mut *state else {
                unreachable!("rematerialized above");
            };
            let client = kc
                .clients
                .iter()
                .copied()
                .find(|&c| kc.cell.sim.outstanding_op(c).is_none())
                .unwrap_or_else(|| {
                    let c = self.proto.add_client(&mut kc.cell.sim);
                    kc.clients.push(c);
                    c
                });
            let write_bytes = match &req {
                OpRequest::Write(v) => Some(v.len() as u64),
                OpRequest::Read => None,
            };
            let slot = match kc.cell.submit(client, req) {
                Ok((op, slot)) => {
                    if let Some(bytes) = write_bytes {
                        self.counters.note_write_submitted(bytes);
                        self.recorder
                            .record(FlightEventKind::SubmitWrite, Some(self.shard), bytes);
                    } else {
                        self.counters.note_read_submitted();
                        self.recorder
                            .record(FlightEventKind::SubmitRead, Some(self.shard), 0);
                    }
                    // A protocol could in principle complete synchronously
                    // (the slot is then filled with no pending entry, so
                    // no driver ever sees it); count it here, still under
                    // the key lock so a driver cannot race us. The op
                    // never waited for a driver, so its queue-wait phase
                    // is zero and its whole lifetime is execute.
                    if let Some(Ok(result)) = slot.try_outcome() {
                        self.counters.note_completion(&result);
                        let total_ns = started.elapsed().as_nanos() as u64;
                        self.counters.note_phases(0, total_ns);
                        match result {
                            OpResult::Read(_) => {
                                self.counters.note_read_latency(total_ns, rematerialized);
                            }
                            OpResult::Write => self.counters.note_write_latency(total_ns),
                        }
                    } else {
                        kc.inflight.push(InflightOp {
                            op,
                            started,
                            exec_start: None,
                            rematerialized,
                        });
                    }
                    slot
                }
                Err(e) => {
                    self.counters.note_rejected();
                    self.recorder
                        .record(FlightEventKind::Rejected, Some(self.shard), 0);
                    return Err(e.into());
                }
            };
            // Authoritative stop check, under the key lock: the shutdown
            // sweep (`fail_all_pending`, after every driver joined) takes
            // this same lock, so either our pending op was inserted
            // before the sweep (the sweep fails it), or the sweep ran
            // first and the stop flag — set before it — is visible here,
            // and we clean up this key ourselves. Never neither.
            if self.group.is_stopped() {
                let counters = &self.counters;
                let inflight = &mut kc.inflight;
                let done = Instant::now();
                kc.cell
                    .complete_pending_with(|op, r| note_completed(counters, inflight, op, r, done));
                kc.cell.fail_pending(&ThreadedError::ShutDown);
                kc.inflight.clear();
                return Err(StoreError::ShutDown);
            }
            key_slot.last_active.store(self.tick(), Ordering::Relaxed);
            self.account_occupancy(&key_slot, &state);
            slot
        };
        // Out of every lock: publish the key to the ready queue and wake
        // a driver. (A racing stop at this point is harmless: the sweep
        // above already failed the slot, and the queue is dead.)
        if self.ready.enqueue(token) {
            self.group.notify();
        }
        Ok(slot)
    }

    fn run_ready(&self, thief: bool) -> bool {
        let Some(token) = self.ready.pop() else {
            return false;
        };
        let key_slot = Arc::clone(&self.slots.read()[token]);
        let mut more = false;
        {
            let mut state = key_slot.state.lock();
            if let KeyState::Live(kc) = &mut *state {
                // Everything in flight on this key leaves its queue-wait
                // phase now (batch-granular execute-start stamp; the
                // first batch wins for ops spanning several).
                let exec_start = Instant::now();
                for entry in &mut kc.inflight {
                    entry.exec_start.get_or_insert(exec_start);
                }
                if kc.cell.step_events(self.batch) > 0 {
                    let counters = &self.counters;
                    let inflight = &mut kc.inflight;
                    let done = Instant::now();
                    kc.cell.complete_pending_with(|op, r| {
                        note_completed(counters, inflight, op, r, done);
                    });
                    self.apply_history_policy(kc);
                    key_slot.last_active.store(self.tick(), Ordering::Relaxed);
                }
                more = kc.cell.has_enabled();
                self.account_occupancy(&key_slot, &state);
            }
        }
        // Re-enqueueing without a notify is safe: the finishing driver is
        // awake, and a parking driver re-checks every queue first.
        self.ready.finish(token, more);
        if thief {
            self.counters.note_stolen();
            self.recorder
                .record(FlightEventKind::Steal, Some(self.shard), 0);
        }
        true
    }

    fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    fn note_steal(&self) {
        self.counters.note_steal();
    }

    fn fail_all_pending(&self) {
        // No placement lock needed: submissions re-check the stop flag
        // under each key lock (see `submit`), so a pending op either
        // landed before this sweep's key-lock acquisition (failed here)
        // or its submitter observes the stop and cleans up itself.
        let done = Instant::now();
        for slot in self.slots.read().iter() {
            let mut state = slot.state.lock();
            if let KeyState::Live(kc) = &mut *state {
                // Flush results that are ready, then fail what remains so
                // no client blocks on a dead shard.
                let counters = &self.counters;
                let inflight = &mut kc.inflight;
                kc.cell
                    .complete_pending_with(|op, r| note_completed(counters, inflight, op, r, done));
                kc.cell.fail_pending(&ThreadedError::ShutDown);
                kc.inflight.clear();
            }
        }
    }

    fn evict_quiescent(&self) -> usize {
        self.slot_table()
            .iter()
            .filter(|slot| self.try_evict(slot, EvictionCause::Manual))
            .count()
    }

    fn wants_governing(&self) -> bool {
        match self.eviction {
            EvictionPolicy::OccupancyAbove { bits, .. } => {
                self.live_bits.load(Ordering::Relaxed) > bits
                    && self.ticks.load(Ordering::Relaxed)
                        >= self.govern_backoff.load(Ordering::Relaxed)
            }
            EvictionPolicy::Manual | EvictionPolicy::IdleAfter(_) => false,
        }
    }

    fn govern(&self, idle: bool) -> usize {
        // One sweeper per shard at a time: a second driver skips instead
        // of duplicating the cold-scan (the trigger stays armed, so
        // nothing is lost).
        let Some(_sweep) = self.govern_lock.try_lock() else {
            return 0;
        };
        match self.eviction {
            EvictionPolicy::Manual => 0,
            EvictionPolicy::IdleAfter(threshold) => {
                if !idle {
                    return 0;
                }
                let now = self.ticks.load(Ordering::Relaxed);
                // `cached_bits > 0` screens out already-evicted keys
                // without touching their locks (every live register
                // holds at least its v₀ blocks, so live keys are never
                // zero-bit).
                self.slot_table()
                    .iter()
                    .filter(|slot| {
                        slot.cached_bits.load(Ordering::Relaxed) > 0
                            && now.saturating_sub(slot.last_active.load(Ordering::Relaxed))
                                >= threshold
                            && self.try_evict(slot, EvictionCause::Idle)
                    })
                    .count()
            }
            EvictionPolicy::OccupancyAbove {
                bits,
                low_watermark,
            } => {
                if self.live_bits.load(Ordering::Relaxed) <= bits {
                    return 0;
                }
                // Coldest-first: order live keys by their last-activity
                // tick and evict until the shard is back at (or below)
                // the low watermark. The per-pass *attempt* cap bounds
                // key-lock traffic even when nothing is evictable, so a
                // governing driver is back serving ready keys quickly;
                // the trigger re-fires on the next loop iteration if
                // more reclamation is needed.
                let table = self.slot_table();
                let mut cold: Vec<(u64, usize)> = table
                    .iter()
                    .enumerate()
                    .filter(|(_, slot)| slot.cached_bits.load(Ordering::Relaxed) > 0)
                    .map(|(i, slot)| (slot.last_active.load(Ordering::Relaxed), i))
                    .collect();
                cold.sort_unstable();
                let mut evicted = 0;
                for (attempts, (_, i)) in cold.into_iter().enumerate() {
                    if self.live_bits.load(Ordering::Relaxed) <= low_watermark
                        || attempts >= GOVERN_ATTEMPTS_PER_PASS
                    {
                        break;
                    }
                    if self.try_evict(&table[i], EvictionCause::Occupancy) {
                        evicted += 1;
                    }
                }
                if evicted == 0 {
                    // Armed but stuck (everything cold enough to matter
                    // is busy): back off so the still-armed trigger does
                    // not re-pay this scan on every driver iteration.
                    self.govern_backoff.store(
                        self.ticks.load(Ordering::Relaxed) + GOVERN_FUTILE_BACKOFF_TICKS,
                        Ordering::Relaxed,
                    );
                }
                evicted
            }
        }
    }

    fn metrics(&self) -> ShardMetrics {
        let slots = self.slots.read();
        let mut occupancy = StorageCost::default();
        let mut peak = 0u64;
        let mut live_records = 0u64;
        let mut evicted_keys = 0usize;
        let mut snapshot_bits = 0u64;
        for slot in slots.iter() {
            let state = slot.state.lock();
            match &*state {
                KeyState::Live(kc) => {
                    let cost = kc.cell.sim.storage_cost();
                    occupancy.object_bits += cost.object_bits;
                    occupancy.client_bits += cost.client_bits;
                    occupancy.inflight_param_bits += cost.inflight_param_bits;
                    occupancy.inflight_resp_bits += cost.inflight_resp_bits;
                    peak += kc.cell.sim.peak_storage_bits();
                    live_records += kc.cell.sim.live_records() as u64;
                }
                KeyState::Evicted(snap) => {
                    evicted_keys += 1;
                    snapshot_bits += snap.storage_bits();
                    live_records += snap.record_count() as u64;
                    // Peaks survive eviction: the snapshot carries the
                    // register's observed peak, so the aggregate doesn't
                    // silently drop when a key leaves live memory.
                    peak += snap.peak_bits();
                }
                KeyState::Vacant => unreachable!("Vacant never escapes the key lock"),
            }
        }
        ShardMetrics {
            shard: self.shard,
            protocol: self.name.to_owned(),
            keys: slots.len(),
            ops: self.counters.snapshot(),
            occupancy,
            peak_register_bits: peak,
            live_records,
            evicted_keys,
            snapshot_bits,
            ready_keys: self.ready.len(),
            governed_bits: self.live_bits.load(Ordering::Relaxed),
            read_hit_latency: self.counters.read_hit_histogram(),
            read_remat_latency: self.counters.read_remat_histogram(),
            write_latency: self.counters.write_histogram(),
            queue_wait: self.counters.queue_wait_histogram(),
            execute: self.counters.execute_histogram(),
            wire: self.counters.wire_histogram(),
        }
    }

    fn note_wire_latency(&self, ns: u64) {
        self.counters.note_wire_latency(ns);
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn initial_value(&self) -> Value {
        self.initial.clone()
    }

    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>> {
        let token = *self.map.lock().get(key)?;
        let key_slot = Arc::clone(&self.slots.read()[token]);
        let state = key_slot.state.lock();
        Some(match &*state {
            KeyState::Live(kc) => kc.cell.sim.full_history(),
            KeyState::Evicted(snap) => snap.records().to_vec(),
            KeyState::Vacant => unreachable!("Vacant never escapes the key lock"),
        })
    }

    fn keys(&self) -> Vec<String> {
        self.map.lock().keys().cloned().collect()
    }

    fn protocol_name(&self) -> &'static str {
        self.name
    }
}

/// Builds a shard engine from its spec. Driver threads are pooled at the
/// store level (see `store.rs`), not per shard. `shard` is the shard's
/// index within the store; `recorder` the store-wide flight recorder.
pub(crate) fn build(
    spec: &ShardSpec,
    batch: usize,
    policy: HistoryPolicy,
    eviction: EvictionPolicy,
    group: Arc<WorkGroup>,
    shard: usize,
    recorder: Arc<FlightRecorder>,
) -> Arc<dyn ShardEngine> {
    let parts = EngineParts {
        batch,
        policy,
        eviction,
        group,
        shard,
        recorder,
    };
    match spec.protocol {
        ProtocolSpec::Abd => engine(Abd::new(spec.register), parts),
        ProtocolSpec::AbdAtomic => engine(AbdAtomic::new(spec.register), parts),
        ProtocolSpec::Safe => engine(Safe::new(spec.register), parts),
        ProtocolSpec::Coded => engine(Coded::new(spec.register), parts),
        ProtocolSpec::Adaptive => engine(Adaptive::new(spec.register), parts),
    }
}

/// Protocol-independent construction parameters for one shard engine.
struct EngineParts {
    batch: usize,
    policy: HistoryPolicy,
    eviction: EvictionPolicy,
    group: Arc<WorkGroup>,
    shard: usize,
    recorder: Arc<FlightRecorder>,
}

fn engine<P: RegisterProtocol + Send + Sync + 'static>(
    proto: P,
    parts: EngineParts,
) -> Arc<dyn ShardEngine>
where
    P::Object: Clone,
{
    let name = proto.name();
    let value_len = proto.config().value_len;
    let initial = proto.config().initial_value();
    Arc::new(ShardCore {
        proto,
        map: parking_lot::Mutex::new(HashMap::new()),
        slots: parking_lot::RwLock::new(Vec::new()),
        ready: ReadyQueue::new(),
        group: parts.group,
        counters: Arc::new(AtomicCounters::default()),
        shard: parts.shard,
        recorder: parts.recorder,
        policy: parts.policy,
        eviction: parts.eviction,
        batch: parts.batch,
        name,
        value_len,
        initial,
        ticks: AtomicU64::new(0),
        live_bits: AtomicU64::new(0),
        govern_lock: parking_lot::Mutex::new(()),
        govern_backoff: AtomicU64::new(0),
    })
}
