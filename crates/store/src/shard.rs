//! One shard: a map of per-key register simulations behind an
//! event-driven ready queue.
//!
//! The PR-2 shard driver rescanned every materialized key per batch —
//! O(keys) work even when one key was hot. A shard now keeps a
//! [`ReadyQueue`] of key slots with enabled simulator events: a key is
//! enqueued when a client operation arrives or a step leaves follow-on
//! events enabled, so a driver batch does O(enabled) work. Keys live
//! behind *per-key* locks (the shard map lock covers only placement and
//! lifecycle), and a popped slot is owned by exactly one driver until it
//! finishes — which is what lets an idle driver of another shard *steal*
//! a ready key and step it without breaking per-key serialization.
//!
//! On top of the same per-key lifecycle, a [`HistoryPolicy`] bounds each
//! register's `OpRecord` history (compaction keeps the frontier writes
//! the consistency checkers need), and a quiescent key can be *evicted*
//! to a [`SimSnapshot`] and rematerialized on its next operation.

use crate::config::ShardSpec;
use crate::config::{HistoryPolicy, ProtocolSpec};
use crate::metrics::{AtomicCounters, ShardMetrics};
use crate::store::StoreError;
use rsb_coding::Value;
use rsb_fpsm::{ClientId, OpRecord, OpRequest, SimSnapshot, Simulation, StorageCost};
use rsb_registers::{
    Abd, AbdAtomic, Adaptive, Coded, CompletionSlot, ReadyQueue, RegisterCell, RegisterProtocol,
    Safe, ThreadedError, WorkGroup,
};
use std::collections::HashMap;
use std::sync::Arc;

/// One key's live register: its simulation cell plus the sim-level
/// clients allocated for it so far (reused across operations when idle).
struct KeyCell<P: RegisterProtocol + 'static> {
    cell: RegisterCell<P>,
    clients: Vec<ClientId>,
}

impl<P: RegisterProtocol + 'static> KeyCell<P> {
    fn new(sim: Simulation<P::Object, P::Client>) -> Self {
        KeyCell {
            cell: RegisterCell::new(sim),
            clients: Vec::new(),
        }
    }
}

/// A key is either materialized (live simulation) or evicted to a
/// quiescent snapshot. `Vacant` is a transient placeholder used to move
/// a snapshot out during rematerialization — it never outlives the key
/// lock's critical section in `submit`, so no other code path observes
/// it.
enum KeyState<P: RegisterProtocol + 'static> {
    Live(KeyCell<P>),
    Evicted(SimSnapshot<P::Object>),
    Vacant,
}

/// One key's slot: name plus the per-key lock every simulation access
/// goes through. The shard map lock is *not* needed to step a key.
struct KeySlot<P: RegisterProtocol + 'static> {
    state: parking_lot::Mutex<KeyState<P>>,
}

/// The object-safe surface the store (and its work-stealing driver pool)
/// drives a shard through.
pub(crate) trait ShardEngine: Send + Sync {
    /// Submits one operation on a key, returning its completion slot.
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError>;

    /// Pops one ready key and runs a step batch on it. `thief` marks a
    /// foreign driver (counted in the shard's `stolen` metric). Returns
    /// whether any key was run.
    fn run_ready(&self, thief: bool) -> bool;

    /// Whether the shard's ready queue is non-empty.
    fn has_ready(&self) -> bool;

    /// Counts a steal performed *by* this shard's driver.
    fn note_steal(&self);

    /// Flushes completed results and fails what remains. Call only after
    /// every driver has stopped.
    fn fail_all_pending(&self);

    /// Evicts every quiescent key to a snapshot; returns how many.
    fn evict_quiescent(&self) -> usize;

    /// Snapshot of the shard's metrics.
    fn metrics(&self, shard: usize) -> ShardMetrics;

    /// The register value length every write must match.
    fn value_len(&self) -> usize;

    /// The registers' initial value `v₀`.
    fn initial_value(&self) -> Value;

    /// The operation records of one key's register, if materialized or
    /// evicted (snapshots preserve history).
    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>>;

    /// Keys materialized on this shard.
    fn keys(&self) -> Vec<String>;

    /// The protocol's stable name.
    fn protocol_name(&self) -> &'static str;
}

/// The typed shard implementation behind [`ShardEngine`].
struct ShardCore<P: RegisterProtocol + Send + Sync + 'static> {
    /// The shard's protocol (immutable configuration; `new_sim` /
    /// `add_client` take `&self`).
    proto: P,
    /// The placement map: key names to slot tokens. Guarded by its own
    /// lock, held only for the name lookup / first-touch insert — never
    /// across key locks or simulation work.
    map: parking_lot::Mutex<HashMap<String, usize>>,
    /// Append-only slot table, indexed by ready-queue token. Readers
    /// (the per-pop hot path, metrics) take the shared lock; the only
    /// writer is key materialization in `submit`, which already holds
    /// the map lock (lock order: map → slots, never reversed).
    slots: parking_lot::RwLock<Vec<Arc<KeySlot<P>>>>,
    ready: ReadyQueue,
    group: Arc<WorkGroup>,
    counters: Arc<AtomicCounters>,
    policy: HistoryPolicy,
    batch: usize,
    name: &'static str,
    value_len: usize,
    initial: Value,
}

impl<P: RegisterProtocol + Send + Sync + 'static> ShardCore<P>
where
    P::Object: Clone,
{
    /// Applies the history policy to a key after completions have been
    /// flushed (so no un-notified record can be compacted).
    fn apply_history_policy(&self, kc: &mut KeyCell<P>) {
        let compact = match self.policy {
            HistoryPolicy::Unbounded => false,
            HistoryPolicy::TruncateAfter(n) => kc.cell.sim.live_records() > n,
            HistoryPolicy::TruncateOnQuiescence => kc.cell.sim.is_quiescent(),
        };
        if compact {
            let dropped = kc.cell.sim.compact_history();
            self.counters.note_truncated(dropped);
        }
    }
}

impl<P: RegisterProtocol + Send + Sync + 'static> ShardEngine for ShardCore<P>
where
    P::Object: Clone,
{
    fn submit(&self, key: &str, req: OpRequest) -> Result<Arc<CompletionSlot>, StoreError> {
        // Fast-path reject; the *authoritative* stop check happens under
        // the key lock below, ordered against the shutdown sweep.
        if self.group.is_stopped() {
            return Err(StoreError::ShutDown);
        }
        // Placement: the map lock is held only for the name lookup (and
        // first-touch slot creation) — never across simulation work, so
        // a driver's step batch on one key cannot stall other keys'
        // submissions behind this lock.
        let token = {
            let mut index = self.map.lock();
            if let Some(&t) = index.get(key) {
                t
            } else {
                let token = self.ready.register_slot();
                let mut slots = self.slots.write();
                debug_assert_eq!(token, slots.len());
                slots.push(Arc::new(KeySlot {
                    state: parking_lot::Mutex::new(KeyState::Live(KeyCell::new(
                        self.proto.new_sim(),
                    ))),
                }));
                drop(slots);
                index.insert(key.to_owned(), token);
                token
            }
        };
        let key_slot = Arc::clone(&self.slots.read()[token]);
        let slot = {
            let mut state = key_slot.state.lock();
            if matches!(&*state, KeyState::Evicted(_)) {
                // Move the snapshot out (no deep copy): `Vacant` exists
                // only inside this key-lock critical section.
                let KeyState::Evicted(snap) = std::mem::replace(&mut *state, KeyState::Vacant)
                else {
                    unreachable!("matched above");
                };
                *state = KeyState::Live(KeyCell::new(Simulation::restore(snap)));
                self.counters.note_rematerialized();
            }
            let KeyState::Live(kc) = &mut *state else {
                unreachable!("rematerialized above");
            };
            let client = kc
                .clients
                .iter()
                .copied()
                .find(|&c| kc.cell.sim.outstanding_op(c).is_none())
                .unwrap_or_else(|| {
                    let c = self.proto.add_client(&mut kc.cell.sim);
                    kc.clients.push(c);
                    c
                });
            let write_bytes = match &req {
                OpRequest::Write(v) => Some(v.len() as u64),
                OpRequest::Read => None,
            };
            let slot = match kc.cell.submit(client, req) {
                Ok(slot) => {
                    match write_bytes {
                        Some(bytes) => self.counters.note_write_submitted(bytes),
                        None => self.counters.note_read_submitted(),
                    }
                    // A protocol could in principle complete synchronously
                    // (the slot is then filled with no pending entry, so
                    // no driver ever sees it); count it here, still under
                    // the key lock so a driver cannot race us.
                    if let Some(Ok(result)) = slot.try_outcome() {
                        self.counters.note_completion(&result);
                    }
                    slot
                }
                Err(e) => {
                    self.counters.note_rejected();
                    return Err(e.into());
                }
            };
            // Authoritative stop check, under the key lock: the shutdown
            // sweep (`fail_all_pending`, after every driver joined) takes
            // this same lock, so either our pending op was inserted
            // before the sweep (the sweep fails it), or the sweep ran
            // first and the stop flag — set before it — is visible here,
            // and we clean up this key ourselves. Never neither.
            if self.group.is_stopped() {
                let counters = &self.counters;
                kc.cell
                    .complete_pending_with(|r| counters.note_completion(r));
                kc.cell.fail_pending(&ThreadedError::ShutDown);
                return Err(StoreError::ShutDown);
            }
            slot
        };
        // Out of every lock: publish the key to the ready queue and wake
        // a driver. (A racing stop at this point is harmless: the sweep
        // above already failed the slot, and the queue is dead.)
        if self.ready.enqueue(token) {
            self.group.notify();
        }
        Ok(slot)
    }

    fn run_ready(&self, thief: bool) -> bool {
        let Some(token) = self.ready.pop() else {
            return false;
        };
        let key_slot = Arc::clone(&self.slots.read()[token]);
        let mut more = false;
        {
            let mut state = key_slot.state.lock();
            if let KeyState::Live(kc) = &mut *state {
                if kc.cell.step_events(self.batch) > 0 {
                    let counters = &self.counters;
                    kc.cell
                        .complete_pending_with(|r| counters.note_completion(r));
                    self.apply_history_policy(kc);
                }
                more = kc.cell.has_enabled();
            }
        }
        // Re-enqueueing without a notify is safe: the finishing driver is
        // awake, and a parking driver re-checks every queue first.
        self.ready.finish(token, more);
        if thief {
            self.counters.note_stolen();
        }
        true
    }

    fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    fn note_steal(&self) {
        self.counters.note_steal();
    }

    fn fail_all_pending(&self) {
        // No placement lock needed: submissions re-check the stop flag
        // under each key lock (see `submit`), so a pending op either
        // landed before this sweep's key-lock acquisition (failed here)
        // or its submitter observes the stop and cleans up itself.
        for slot in self.slots.read().iter() {
            let mut state = slot.state.lock();
            if let KeyState::Live(kc) = &mut *state {
                // Flush results that are ready, then fail what remains so
                // no client blocks on a dead shard.
                let counters = &self.counters;
                kc.cell
                    .complete_pending_with(|r| counters.note_completion(r));
                kc.cell.fail_pending(&ThreadedError::ShutDown);
            }
        }
    }

    fn evict_quiescent(&self) -> usize {
        let mut evicted = 0;
        for slot in self.slots.read().iter() {
            let mut state = slot.state.lock();
            if let KeyState::Live(kc) = &mut *state {
                if kc.cell.pending.is_empty() && kc.cell.sim.is_quiescent() {
                    // Compact before snapshotting — but only under a
                    // truncating policy: `Unbounded` promises the full
                    // history, which the snapshot then carries whole.
                    if self.policy != HistoryPolicy::Unbounded {
                        let dropped = kc.cell.sim.compact_history();
                        self.counters.note_truncated(dropped);
                    }
                    if let Some(snap) = kc.cell.sim.snapshot() {
                        *state = KeyState::Evicted(snap);
                        evicted += 1;
                    }
                }
            }
        }
        evicted
    }

    fn metrics(&self, shard: usize) -> ShardMetrics {
        let slots = self.slots.read();
        let mut occupancy = StorageCost::default();
        let mut peak = 0u64;
        let mut live_records = 0u64;
        let mut evicted_keys = 0usize;
        let mut snapshot_bits = 0u64;
        for slot in slots.iter() {
            let state = slot.state.lock();
            match &*state {
                KeyState::Live(kc) => {
                    let cost = kc.cell.sim.storage_cost();
                    occupancy.object_bits += cost.object_bits;
                    occupancy.client_bits += cost.client_bits;
                    occupancy.inflight_param_bits += cost.inflight_param_bits;
                    occupancy.inflight_resp_bits += cost.inflight_resp_bits;
                    peak += kc.cell.sim.peak_storage_bits();
                    live_records += kc.cell.sim.live_records() as u64;
                }
                KeyState::Evicted(snap) => {
                    evicted_keys += 1;
                    snapshot_bits += snap.storage_bits();
                    live_records += snap.records().len() as u64;
                }
                KeyState::Vacant => unreachable!("Vacant never escapes the key lock"),
            }
        }
        ShardMetrics {
            shard,
            protocol: self.name,
            keys: slots.len(),
            ops: self.counters.snapshot(),
            occupancy,
            peak_register_bits: peak,
            live_records,
            evicted_keys,
            snapshot_bits,
            ready_keys: self.ready.len(),
        }
    }

    fn value_len(&self) -> usize {
        self.value_len
    }

    fn initial_value(&self) -> Value {
        self.initial.clone()
    }

    fn key_records(&self, key: &str) -> Option<Vec<OpRecord>> {
        let token = *self.map.lock().get(key)?;
        let key_slot = Arc::clone(&self.slots.read()[token]);
        let state = key_slot.state.lock();
        Some(match &*state {
            KeyState::Live(kc) => kc.cell.sim.full_history(),
            KeyState::Evicted(snap) => snap.records().to_vec(),
            KeyState::Vacant => unreachable!("Vacant never escapes the key lock"),
        })
    }

    fn keys(&self) -> Vec<String> {
        self.map.lock().keys().cloned().collect()
    }

    fn protocol_name(&self) -> &'static str {
        self.name
    }
}

/// Builds a shard engine from its spec. Driver threads are pooled at the
/// store level (see `store.rs`), not per shard.
pub(crate) fn build(
    spec: &ShardSpec,
    batch: usize,
    policy: HistoryPolicy,
    group: Arc<WorkGroup>,
) -> Arc<dyn ShardEngine> {
    match spec.protocol {
        ProtocolSpec::Abd => engine(Abd::new(spec.register), batch, policy, group),
        ProtocolSpec::AbdAtomic => engine(AbdAtomic::new(spec.register), batch, policy, group),
        ProtocolSpec::Safe => engine(Safe::new(spec.register), batch, policy, group),
        ProtocolSpec::Coded => engine(Coded::new(spec.register), batch, policy, group),
        ProtocolSpec::Adaptive => engine(Adaptive::new(spec.register), batch, policy, group),
    }
}

fn engine<P: RegisterProtocol + Send + Sync + 'static>(
    proto: P,
    batch: usize,
    policy: HistoryPolicy,
    group: Arc<WorkGroup>,
) -> Arc<dyn ShardEngine>
where
    P::Object: Clone,
{
    let name = proto.name();
    let value_len = proto.config().value_len;
    let initial = proto.config().initial_value();
    Arc::new(ShardCore {
        proto,
        map: parking_lot::Mutex::new(HashMap::new()),
        slots: parking_lot::RwLock::new(Vec::new()),
        ready: ReadyQueue::new(),
        group,
        counters: Arc::new(AtomicCounters::default()),
        policy,
        batch,
        name,
        value_len,
        initial,
    })
}
