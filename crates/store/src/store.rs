//! The store: shard fan-out, the work-stealing driver pool, client
//! handles, lifecycle.

use crate::config::{StoreConfig, StoreConfigError};
use crate::future::{OpFuture, ReadFuture, WriteFuture};
use crate::metrics::StoreMetrics;
use crate::net::{KeyMeta, Loopback, StoreServer, Transport};
use crate::recorder::FlightRecorder;
use crate::shard::{self, ShardEngine};
use rsb_coding::Value;
use rsb_fpsm::{OpRecord, OpRequest};
use rsb_registers::lockorder::{ranks, tracked_lock};
use rsb_registers::{ThreadedError, WorkGroup};
use std::sync::Arc;

/// Errors from the store's client surface — one type across every
/// transport, so loopback and TCP callers handle failures identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store (or the key's shard) has been shut down.
    ShutDown,
    /// The underlying simulation rejected the submission.
    Rejected(String),
    /// A written value did not match the shard's register value length.
    BadValueLength {
        /// Bytes submitted.
        got: usize,
        /// Bytes the shard's registers hold.
        want: usize,
    },
    /// A transport I/O failure (connect, read, or write on the wire).
    Io(String),
    /// A malformed frame: truncated, oversized, unknown tag, or a
    /// protocol violation. The connection is closed after one of these.
    Decode(String),
    /// The peer speaks a different wire protocol version.
    ProtocolVersion {
        /// The version the peer offered.
        got: u16,
        /// The version this side requires.
        want: u16,
    },
    /// A blocking wait outlived the transport's configured per-operation
    /// timeout ([`TcpTransport::connect_with`](crate::TcpTransport::connect_with)).
    Timeout,
    /// An invalid configuration reached [`Store::serve`] (never crosses
    /// the wire — serve-time only).
    Config(StoreConfigError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ShutDown => write!(f, "store has shut down"),
            StoreError::Rejected(msg) => write!(f, "submission rejected: {msg}"),
            StoreError::BadValueLength { got, want } => {
                write!(f, "value is {got} bytes, shard registers hold {want}")
            }
            StoreError::Io(msg) => write!(f, "transport i/o error: {msg}"),
            StoreError::Decode(msg) => write!(f, "wire decode error: {msg}"),
            StoreError::ProtocolVersion { got, want } => {
                write!(
                    f,
                    "peer speaks wire protocol v{got}, this side needs v{want}"
                )
            }
            StoreError::Timeout => write!(f, "operation timed out"),
            StoreError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ThreadedError> for StoreError {
    fn from(e: ThreadedError) -> Self {
        match e {
            ThreadedError::ShutDown => StoreError::ShutDown,
            ThreadedError::Rejected(msg) => StoreError::Rejected(msg),
        }
    }
}

impl From<StoreConfigError> for StoreError {
    fn from(e: StoreConfigError) -> Self {
        StoreError::Config(e)
    }
}

/// FNV-1a, hand-rolled so the key → shard placement is stable across
/// platforms and runs (unlike `DefaultHasher`, which is randomized).
fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) struct StoreInner {
    pub(crate) shards: Vec<Arc<dyn ShardEngine>>,
    pub(crate) recorder: Arc<FlightRecorder>,
}

impl StoreInner {
    pub(crate) fn index_for(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    pub(crate) fn shard_for(&self, key: &str) -> &Arc<dyn ShardEngine> {
        &self.shards[self.index_for(key)]
    }

    /// A metrics snapshot across all shards (shared by [`Store::metrics`]
    /// and the wire `StatsReq` path, so both expose identical data).
    pub(crate) fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            shards: self.shards.iter().map(|s| s.metrics()).collect(),
        }
    }
}

/// One operation of a client batch ([`StoreClient::submit_batch`]): the
/// key and what to do to it, owned so a batch can be built up and handed
/// off without borrowing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// `read(key)`.
    Read(String),
    /// `write(key, value)`.
    Write(String, Value),
}

impl BatchOp {
    /// The key the operation targets.
    pub fn key(&self) -> &str {
        match self {
            BatchOp::Read(key) | BatchOp::Write(key, _) => key,
        }
    }

    pub(crate) fn into_parts(self) -> (String, OpRequest) {
        match self {
            BatchOp::Read(key) => (key, OpRequest::Read),
            BatchOp::Write(key, value) => (key, OpRequest::Write(value)),
        }
    }
}

/// One key's recorded register history, for the consistency checkers.
#[derive(Debug, Clone)]
pub struct KeyHistory {
    /// The register's initial value `v₀`.
    pub initial: Value,
    /// The raw simulator records (convert with
    /// `rsb_consistency::History::from_fpsm`).
    pub records: Vec<OpRecord>,
}

/// The sharded storage service.
///
/// Owns the shard driver threads; [`Store::shutdown`] (or drop) stops and
/// joins them, failing any in-flight operations with
/// [`StoreError::ShutDown`]. Client handles may outlive the store — their
/// submissions return errors instead of hanging.
pub struct Store {
    inner: Arc<StoreInner>,
    group: Arc<WorkGroup>,
    /// Behind a mutex so teardown works from `&self` ([`Store::halt`]):
    /// the first stopper drains and joins the handles; latecomers find
    /// the list empty and only re-run the (idempotent) pending sweep.
    drivers: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field(
                "drivers",
                &tracked_lock(ranks::DRIVER_POOL, "driver_pool", || self.drivers.lock()).len(),
            )
            .finish_non_exhaustive()
    }
}

/// Spawns one pool driver. Its loop gives the home shard priority, then
/// scans the other shards for ready keys to steal — draining *half* the
/// first loaded victim's queue in one batched pass
/// ([`ShardEngine::steal_batch`]) — and parks on the group,
/// re-checking every queue under the group lock, when the whole store is
/// idle. Wakeups come from submissions ([`WorkGroup::notify`]) and
/// shutdown ([`WorkGroup::request_stop`]), and the lock-ordered re-check
/// makes both race-free. The park is untimed unless wall-clock idle
/// aging is configured, in which case it is bounded by the configured
/// age so a silent store still runs its eviction sweep.
///
/// The driver is also the home shard's *eviction governor*: a cheap
/// occupancy check runs every iteration (so an `OccupancyAbove` policy
/// reclaims even under sustained traffic, one bounded pass between
/// batches), and the idle-time sweep runs when the home queue drains —
/// reclamation costs zero dedicated threads and never blocks a ready
/// key.
fn spawn_pool_driver(
    home: usize,
    shards: Vec<Arc<dyn ShardEngine>>,
    group: Arc<WorkGroup>,
    work_stealing: bool,
    idle_park: Option<std::time::Duration>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("store-driver-{home}"))
        .spawn(move || {
            let n = shards.len();
            while !group.is_stopped() {
                // Occupancy trigger first (one atomic load when idle or
                // disarmed): a bounded coldest-first pass, then ready
                // keys run again.
                if shards[home].wants_governing() {
                    shards[home].govern(false);
                }
                // Home shard next: drain one ready key per iteration so
                // the stop flag is observed between batches.
                if shards[home].run_ready() {
                    continue;
                }
                // Idle at home: run the idle-time eviction sweep, then
                // steal a batch of ready keys from a neighbor.
                let evicted = shards[home].govern(true);
                let mut stole = false;
                if work_stealing {
                    for offset in 1..n {
                        let victim = (home + offset) % n;
                        let tokens = shards[victim].steal_batch();
                        if !tokens.is_empty() {
                            // Thief-side accounting also lands before the
                            // stolen keys run, mirroring the victim side.
                            for _ in &tokens {
                                shards[home].note_steal();
                            }
                            shards[victim].run_tokens(tokens);
                            stole = true;
                            break;
                        }
                    }
                }
                if stole || evicted > 0 {
                    // A sweep may have overlapped new submissions on the
                    // home queue; re-check before parking.
                    continue;
                }
                // The park predicate matches what this driver will run:
                // any queue when stealing, only home otherwise (a
                // foreign-queue wakeup would spin it fruitlessly).
                let has_work = || {
                    if work_stealing {
                        shards.iter().any(|s| s.has_ready())
                    } else {
                        shards[home].has_ready()
                    }
                };
                match idle_park {
                    // Wall-clock idle aging: wake on a bounded timer even
                    // with no traffic, so the sweep above still runs and
                    // a silent store sheds its aged keys.
                    Some(timeout) => group.park_timeout_unless(timeout, has_work),
                    None => group.park_unless(has_work),
                }
            }
        })
        .expect("spawning a store driver thread")
}

impl Store {
    /// Starts the service: builds every shard and spawns the driver pool
    /// (one driver thread per shard; idle drivers steal ready keys from
    /// loaded neighbors when work-stealing is enabled).
    ///
    /// # Errors
    ///
    /// Fails on an invalid configuration (no shards, zero batch, zero
    /// history bound).
    pub fn start(config: StoreConfig) -> Result<Self, crate::config::StoreConfigError> {
        config.validate()?;
        let StoreConfig {
            shards: specs,
            batch,
            history,
            work_stealing,
            eviction,
            idle_wall_clock,
            // An in-process store ignores the listen section (validated
            // above regardless); `Store::serve` is the path that binds.
            listen: _,
            recorder_capacity,
        } = config;
        let recorder = Arc::new(FlightRecorder::new(recorder_capacity));
        // With stealing, any single driver can run any ready key, so a
        // submission wakes one driver; without it, queues are disjoint
        // and the wakeup must broadcast to reach the right driver.
        let group = Arc::new(if work_stealing {
            WorkGroup::new()
        } else {
            WorkGroup::new_broadcast()
        });
        let shards: Vec<Arc<dyn ShardEngine>> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                shard::build(
                    spec,
                    shard::EngineParts {
                        batch,
                        policy: history,
                        eviction,
                        idle_wall_clock,
                        group: Arc::clone(&group),
                        shard: i,
                        recorder: Arc::clone(&recorder),
                    },
                )
            })
            .collect();
        let drivers = (0..shards.len())
            .map(|home| {
                spawn_pool_driver(
                    home,
                    shards.clone(),
                    Arc::clone(&group),
                    work_stealing,
                    idle_wall_clock,
                )
            })
            .collect();
        Ok(Store {
            inner: Arc::new(StoreInner { shards, recorder }),
            group,
            drivers: parking_lot::Mutex::new(drivers),
        })
    }

    /// Starts the service *and* its TCP front-end: validates the
    /// configuration (which must carry a listen section — see
    /// [`StoreConfig::with_listen`](crate::StoreConfig::with_listen)),
    /// starts the store exactly as [`Store::start`] would, binds the
    /// listener, and spawns the accept loop.
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] on an invalid or listen-less
    /// configuration; [`StoreError::Io`] when the bind fails.
    pub fn serve(config: StoreConfig) -> Result<StoreServer, StoreError> {
        config.validate()?;
        let spec = config
            .listen
            .clone()
            .ok_or(StoreError::Config(StoreConfigError::MissingListen))?;
        let store = Store::start(config)?;
        StoreServer::bind(store, &spec)
    }

    /// A new in-process client handle (cheap; usable from any thread,
    /// cloneable) — a [`StoreClient`] over the [`Loopback`] transport.
    pub fn client(&self) -> StoreClient {
        StoreClient::over(self.loopback())
    }

    /// The store's in-process [`Loopback`] transport, for callers that
    /// build clients explicitly ([`StoreClient::over`]) or feed a
    /// transport-generic harness.
    pub fn loopback(&self) -> Loopback {
        Loopback {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of shards (== driver threads).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard index a key is placed on.
    pub fn shard_of(&self, key: &str) -> usize {
        self.inner.index_for(key)
    }

    /// A metrics snapshot across all shards.
    pub fn metrics(&self) -> StoreMetrics {
        self.inner.metrics()
    }

    /// The store's flight recorder: the fixed-capacity, overwrite-oldest
    /// ring of structured events every shard (and the TCP front-end)
    /// stamps into. Dump it after an incident — or in a test — with
    /// [`FlightRecorder::dump`].
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// The recorded history of one key's register, if the key was ever
    /// touched — the input to the `rsb-consistency` checkers.
    pub fn key_history(&self, key: &str) -> Option<KeyHistory> {
        let shard = self.inner.shard_for(key);
        shard.key_records(key).map(|records| KeyHistory {
            initial: shard.initial_value(),
            records,
        })
    }

    /// All keys materialized so far, across shards.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.inner.shards.iter().flat_map(|s| s.keys()).collect();
        keys.sort();
        keys
    }

    /// Evicts every quiescent key (no in-flight work) to a compact
    /// snapshot, freeing its live simulation; the next operation on an
    /// evicted key transparently rematerializes it. Returns how many keys
    /// were evicted.
    pub fn evict_quiescent(&self) -> usize {
        self.inner.shards.iter().map(|s| s.evict_quiescent()).sum()
    }

    /// Stops every pool driver and joins them, then fails remaining
    /// in-flight operations with [`StoreError::ShutDown`]. Idempotent;
    /// also called on drop. Drivers parked on empty ready queues observe
    /// the stop promptly (no timed waits anywhere).
    pub fn shutdown(self) {
        self.stop_drivers();
    }

    /// [`Store::shutdown`] from a shared reference: stops and joins the
    /// driver pool and fails remaining in-flight operations, while other
    /// threads may still hold `&Store` (a metrics poller, an eviction
    /// loop racing the teardown, …). Idempotent, and safe to race with
    /// [`Store::evict_quiescent`] — the stress tests exercise exactly
    /// that interleaving.
    pub fn halt(&self) {
        self.stop_drivers();
    }

    fn stop_drivers(&self) {
        self.group.request_stop();
        let handles: Vec<_> =
            tracked_lock(ranks::DRIVER_POOL, "driver_pool", || self.drivers.lock())
                .drain(..)
                .collect();
        for h in handles {
            let _ = h.join();
        }
        // The *first* stopper joined every driver above, so its sweep
        // runs unraced. A concurrent second stopper may sweep while
        // drivers are still winding down — harmless: the sweep flushes
        // results that are ready and fails the rest, drivers only ever
        // fill slots (first outcome wins), and the first stopper's final
        // sweep is the authoritative one that leaves nothing pending.
        for s in &self.inner.shards {
            s.fail_all_pending();
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.stop_drivers();
    }
}

/// A handle for submitting operations, generic over how they reach the
/// store: [`Loopback`] (the default — in-process, what
/// [`Store::client`] returns) or
/// [`TcpTransport`](crate::TcpTransport) (the real wire). The async and
/// blocking surfaces are identical across transports, and so is the
/// error type.
///
/// Clone freely, share across threads, and keep past the store's
/// shutdown (submissions then error instead of hanging).
pub struct StoreClient<T: Transport = Loopback> {
    transport: Arc<T>,
}

// Hand-rolled so clones never require `T: Clone` (the transport is
// shared, not duplicated).
impl<T: Transport> Clone for StoreClient<T> {
    fn clone(&self) -> Self {
        StoreClient {
            transport: Arc::clone(&self.transport),
        }
    }
}

impl<T: Transport> std::fmt::Debug for StoreClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreClient").finish_non_exhaustive()
    }
}

impl<T: Transport> StoreClient<T> {
    /// A client over an explicit transport — the only way to build one
    /// (there is deliberately no constructor from raw store internals):
    /// `StoreClient::over(store.loopback())` in-process, or
    /// `StoreClient::over(TcpTransport::connect(addr)?)` across the wire.
    pub fn over(transport: T) -> Self {
        StoreClient {
            transport: Arc::new(transport),
        }
    }

    /// The transport this client submits through.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Starts an asynchronous `read(key)`.
    ///
    /// A key that was never written reads as the register's initial value
    /// `v₀` (all zeroes).
    pub fn read(&self, key: &str) -> ReadFuture {
        ReadFuture {
            ticket: self.transport.submit(key, OpRequest::Read),
        }
    }

    /// Starts an asynchronous `write(key, value)`.
    ///
    /// The value length must match the key's shard register length
    /// (`RegisterConfig::value_len`).
    pub fn write(&self, key: &str, value: Value) -> WriteFuture {
        WriteFuture {
            ticket: self.transport.submit(key, OpRequest::Write(value)),
        }
    }

    /// Submits a whole batch of operations in one transport round:
    /// one [`BatchReq`](crate::frame::Frame::BatchReq) frame over
    /// TCP, one grouped shard pass over [`Loopback`] (per shard, a
    /// single map-lock hold places every key and a single key-lock hold
    /// submits every operation on that key). Returns one future per
    /// operation, in submission order — await them individually, or
    /// resolve the lot with [`join_all`](crate::join_all).
    ///
    /// Per-operation failures (a bad value length, a rejected
    /// submission) resolve that operation's future with the error and
    /// never poison its batchmates. An empty batch returns an empty
    /// vector.
    pub fn submit_batch(&self, ops: Vec<BatchOp>) -> Vec<OpFuture> {
        self.transport
            .submit_batch(ops)
            .into_iter()
            .map(|ticket| OpFuture { ticket })
            .collect()
    }

    /// Blocking `read(key)`.
    ///
    /// # Errors
    ///
    /// Fails if the store shut down, the submission was rejected, or the
    /// transport failed ([`StoreError::Io`] and friends over TCP).
    pub fn read_blocking(&self, key: &str) -> Result<Value, StoreError> {
        self.read(key).wait()
    }

    /// Blocking `write(key, value)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoreClient::read_blocking`], plus a value
    /// length mismatch.
    pub fn write_blocking(&self, key: &str, value: Value) -> Result<(), StoreError> {
        self.write(key, value).wait()
    }

    /// What the transport knows about the key's shard (write value
    /// length, protocol name).
    ///
    /// # Errors
    ///
    /// Transport failures; infallible over [`Loopback`].
    pub fn key_meta(&self, key: &str) -> Result<KeyMeta, StoreError> {
        self.transport.key_meta(key)
    }

    /// The value length the key's shard expects for writes.
    ///
    /// # Errors
    ///
    /// Transport failures; infallible over [`Loopback`].
    pub fn value_len(&self, key: &str) -> Result<usize, StoreError> {
        Ok(self.key_meta(key)?.value_len)
    }

    /// The protocol name of the key's shard.
    ///
    /// # Errors
    ///
    /// Transport failures; infallible over [`Loopback`].
    pub fn protocol_of(&self, key: &str) -> Result<String, StoreError> {
        Ok(self.key_meta(key)?.protocol)
    }

    /// Scrapes the store's full [`StoreMetrics`] snapshot through the
    /// transport — in-process over [`Loopback`], or from a live remote
    /// server over TCP (the `StatsReq`/`StatsResp` frame pair). Render
    /// it for humans with
    /// [`StoreMetrics::render_prometheus`](crate::StoreMetrics::render_prometheus).
    ///
    /// # Errors
    ///
    /// Transport failures; infallible over [`Loopback`].
    pub fn stats(&self) -> Result<StoreMetrics, StoreError> {
        self.transport.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProtocolSpec, StoreConfig};
    use crate::future::block_on;
    use rsb_registers::RegisterConfig;

    fn small_store(shards: usize, protocol: ProtocolSpec) -> Store {
        let reg = RegisterConfig::paper(1, 2, 16).unwrap();
        Store::start(StoreConfig::uniform(shards, protocol, reg)).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let store = small_store(4, ProtocolSpec::Adaptive);
        let client = store.client();
        let v = Value::seeded(3, 16);
        block_on(client.write("alpha", v.clone())).unwrap();
        assert_eq!(block_on(client.read("alpha")).unwrap(), v);
        store.shutdown();
    }

    #[test]
    fn unwritten_key_reads_initial_value() {
        let store = small_store(2, ProtocolSpec::Abd);
        let client = store.client();
        assert_eq!(
            client.read_blocking("never-written").unwrap(),
            Value::zeroed(16)
        );
        store.shutdown();
    }

    #[test]
    fn distinct_keys_are_independent_registers() {
        let store = small_store(3, ProtocolSpec::Abd);
        let client = store.client();
        let va = Value::seeded(1, 16);
        let vb = Value::seeded(2, 16);
        client.write_blocking("a", va.clone()).unwrap();
        client.write_blocking("b", vb.clone()).unwrap();
        assert_eq!(client.read_blocking("a").unwrap(), va);
        assert_eq!(client.read_blocking("b").unwrap(), vb);
        store.shutdown();
    }

    #[test]
    fn wrong_value_length_is_rejected_immediately() {
        let store = small_store(1, ProtocolSpec::Safe);
        let client = store.client();
        let err = client
            .write_blocking("k", Value::seeded(1, 99))
            .unwrap_err();
        assert_eq!(err, StoreError::BadValueLength { got: 99, want: 16 });
        store.shutdown();
    }

    #[test]
    fn placement_is_deterministic_and_covers_shards() {
        let store = small_store(8, ProtocolSpec::Safe);
        let mut hit = [false; 8];
        for i in 0..200 {
            let key = format!("key-{i}");
            let s = store.shard_of(&key);
            assert_eq!(s, store.shard_of(&key));
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "200 keys cover all 8 shards");
        store.shutdown();
    }

    #[test]
    fn batch_submission_resolves_per_op_in_order() {
        let store = small_store(4, ProtocolSpec::Abd);
        let client = store.client();
        let va = Value::seeded(7, 16);
        let vb = Value::seeded(8, 16);
        let futs = client.submit_batch(vec![
            BatchOp::Write("a".into(), va.clone()),
            BatchOp::Write("b".into(), vb.clone()),
            // A bad length fails its own future without poisoning the
            // rest of the batch.
            BatchOp::Write("c".into(), Value::seeded(9, 5)),
        ]);
        let results = crate::future::join_all(futs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], Ok(rsb_fpsm::OpResult::Write));
        assert_eq!(results[1], Ok(rsb_fpsm::OpResult::Write));
        assert_eq!(
            results[2],
            Err(StoreError::BadValueLength { got: 5, want: 16 })
        );
        // A second batch (reads in a fresh transport round) observes the
        // first batch's completed writes.
        let reads = crate::future::join_all(
            client.submit_batch(vec![BatchOp::Read("a".into()), BatchOp::Read("b".into())]),
        );
        assert_eq!(reads[0], Ok(rsb_fpsm::OpResult::Read(va)));
        assert_eq!(reads[1], Ok(rsb_fpsm::OpResult::Read(vb)));
        store.shutdown();
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let store = small_store(1, ProtocolSpec::Safe);
        let client = store.client();
        assert!(client.submit_batch(Vec::new()).is_empty());
        store.shutdown();
    }

    #[test]
    fn metrics_count_ops_bytes_and_occupancy() {
        let store = small_store(4, ProtocolSpec::Abd);
        let client = store.client();
        for i in 0..10u64 {
            client
                .write_blocking(&format!("k{i}"), Value::seeded(i, 16))
                .unwrap();
        }
        for i in 0..10u64 {
            client.read_blocking(&format!("k{i}")).unwrap();
        }
        let m = store.metrics();
        let t = m.totals();
        assert_eq!(t.writes_completed, 10);
        assert_eq!(t.reads_completed, 10);
        assert_eq!(t.bytes_written, 160);
        assert_eq!(t.bytes_read, 160);
        assert_eq!(m.keys(), 10);
        // ABD keeps the full value on 2f+1 = 3 objects per register.
        assert!(m.occupancy_bits() >= 10 * 3 * 16 * 8);
        assert!(m.peak_register_bits() >= m.occupancy_bits());
        store.shutdown();
    }
}
