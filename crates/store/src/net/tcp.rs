//! The client side of the wire: a [`TcpTransport`] speaking the
//! length-prefixed frame protocol over one `TcpStream`.
//!
//! One connection multiplexes any number of client threads: submissions
//! assign a connection-unique request id, register a completion cell,
//! and write the request frame under a short writer lock; a single
//! reader thread demultiplexes response frames back into the cells by
//! id. Completions therefore arrive out of order — a slow key never
//! head-of-line-blocks a fast one — and the same futures the loopback
//! path returns work unchanged.
//!
//! When the connection dies (server gone, decode failure, socket error)
//! every in-flight operation fails with the connection's terminal
//! [`StoreError`], and later submissions fail fast with a clone of it.

use super::frame::{read_frame, write_frame, Frame, WireOp, WIRE_VERSION};
use super::{value_from_wire, KeyMeta, NetCell, OpCell, OpTicket, Transport};
use crate::metrics::StoreMetrics;
use crate::store::{BatchOp, StoreError};
use rsb_fpsm::{OpRequest, OpResult};
use rsb_registers::lockorder::{ranks, tracked_lock};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A pending request's completion cell, by kind.
enum Pending {
    Op(Arc<OpCell>),
    /// One cell per batched operation, in submission order; the whole
    /// batch shares one request id and resolves from one `BatchResp`.
    Batch(Vec<Arc<OpCell>>),
    Meta(Arc<NetCell<Result<KeyMeta, StoreError>>>),
    Stats(Arc<NetCell<Result<StoreMetrics, StoreError>>>),
}

/// Shared between submitters and the reader thread.
struct Shared {
    pending: parking_lot::Mutex<HashMap<u64, Pending>>,
    /// The connection's terminal error, once it has one: submissions
    /// fail fast with a clone instead of writing into a dead socket.
    dead: parking_lot::Mutex<Option<StoreError>>,
}

impl Shared {
    /// Marks the connection dead and fails every pending completion.
    fn fail_all(&self, err: &StoreError) {
        {
            let mut dead = tracked_lock(ranks::NET_DEAD, "net_dead", || self.dead.lock());
            if dead.is_none() {
                *dead = Some(err.clone());
            }
        }
        let drained: Vec<Pending> = {
            let mut pending =
                tracked_lock(ranks::NET_PENDING, "net_pending", || self.pending.lock());
            pending.drain().map(|(_, p)| p).collect()
        };
        for p in drained {
            match p {
                Pending::Op(cell) => cell.fill(Err(err.clone())),
                Pending::Batch(cells) => {
                    for cell in cells {
                        cell.fill(Err(err.clone()));
                    }
                }
                Pending::Meta(cell) => cell.fill(Err(err.clone())),
                Pending::Stats(cell) => cell.fill(Err(err.clone())),
            }
        }
    }
}

/// A connection to a [`StoreServer`](super::StoreServer): the TCP
/// implementation of [`Transport`].
///
/// Cheap to share behind the client's `Arc`; all methods take `&self`.
/// Dropping the transport closes the socket and joins the reader
/// thread, failing whatever was still in flight.
pub struct TcpTransport {
    writer: parking_lot::Mutex<TcpStream>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    timeout: Option<Duration>,
    reader: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field(
                "peer",
                &tracked_lock(ranks::NET_WRITER, "net_writer", || self.writer.lock())
                    .peer_addr()
                    .ok(),
            )
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the server is unreachable,
    /// [`StoreError::ProtocolVersion`] on a version mismatch,
    /// [`StoreError::Rejected`] when the server is at capacity,
    /// [`StoreError::Decode`] when the peer does not speak the protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, StoreError> {
        Self::connect_with(addr, None)
    }

    /// Like [`TcpTransport::connect`], with a per-operation timeout
    /// applied by the *blocking* wait paths (`read_blocking`,
    /// `ReadFuture::wait`, …): an operation whose response has not
    /// arrived within `timeout` fails with [`StoreError::Timeout`]. The
    /// pure-async poll path carries no timer and resolves whenever the
    /// response lands.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Self, StoreError> {
        let stream = TcpStream::connect(addr).map_err(|e| StoreError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        // Handshake, still single-threaded on this socket.
        write_frame(
            &mut &stream,
            &Frame::Hello {
                version: WIRE_VERSION,
            },
        )?;
        match read_frame(&mut &stream)? {
            Some(Frame::HelloAck { version }) if version == WIRE_VERSION => {}
            Some(Frame::HelloAck { version }) => {
                return Err(StoreError::ProtocolVersion {
                    got: version,
                    want: WIRE_VERSION,
                })
            }
            Some(Frame::ErrorResp { error, .. }) => return Err(error),
            Some(other) => {
                return Err(StoreError::Decode(format!(
                    "expected hello-ack, got {}",
                    other.kind()
                )))
            }
            None => return Err(StoreError::Io("connection closed during handshake".into())),
        }
        let reader_stream = stream
            .try_clone()
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let shared = Arc::new(Shared {
            pending: parking_lot::Mutex::new(HashMap::new()),
            dead: parking_lot::Mutex::new(None),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("store-tcp-reader".into())
                .spawn(move || read_loop(reader_stream, &shared))
                .map_err(|e| StoreError::Io(e.to_string()))?
        };
        Ok(TcpTransport {
            writer: parking_lot::Mutex::new(stream),
            shared,
            next_id: AtomicU64::new(1),
            timeout,
            reader: parking_lot::Mutex::new(Some(reader)),
        })
    }

    /// The connection's terminal error, if it has died.
    pub fn connection_error(&self) -> Option<StoreError> {
        tracked_lock(ranks::NET_DEAD, "net_dead", || self.shared.dead.lock()).clone()
    }

    /// Registers a pending entry and writes its request frame; on a
    /// write failure the entry is withdrawn and the error returned.
    fn send(&self, id: u64, entry: Pending, frame: &Frame) -> Result<(), StoreError> {
        if let Some(err) =
            tracked_lock(ranks::NET_DEAD, "net_dead", || self.shared.dead.lock()).clone()
        {
            return Err(err);
        }
        tracked_lock(ranks::NET_PENDING, "net_pending", || {
            self.shared.pending.lock()
        })
        .insert(id, entry);
        let result = {
            let mut w = tracked_lock(ranks::NET_WRITER, "net_writer", || self.writer.lock());
            write_frame(&mut *w, frame)
        };
        if let Err(e) = result {
            tracked_lock(ranks::NET_PENDING, "net_pending", || {
                self.shared.pending.lock()
            })
            .remove(&id);
            // A failed write means the socket is gone for everyone.
            self.shared.fail_all(&e);
            return Err(e);
        }
        Ok(())
    }

    fn next_id(&self) -> u64 {
        // audit:allow(atomics-relaxed) — ID allocation: uniqueness comes
        // from the atomic RMW; no data is published through the counter.
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

impl Transport for TcpTransport {
    fn submit(&self, key: &str, req: OpRequest) -> OpTicket {
        if key.len() > super::frame::MAX_KEY_LEN {
            return OpTicket::failed(StoreError::Rejected(format!(
                "key length {} exceeds the wire bound {}",
                key.len(),
                super::frame::MAX_KEY_LEN
            )));
        }
        let id = self.next_id();
        let cell: Arc<OpCell> = Arc::new(NetCell::new());
        let frame = match req {
            OpRequest::Read => Frame::ReadReq {
                id,
                key: key.to_owned(),
            },
            OpRequest::Write(value) => Frame::WriteReq {
                id,
                key: key.to_owned(),
                value: value.as_bytes().to_vec(),
            },
        };
        match self.send(id, Pending::Op(Arc::clone(&cell)), &frame) {
            Ok(()) => OpTicket::net(cell, self.timeout),
            Err(e) => OpTicket::failed(e),
        }
    }

    /// One `BatchReq` frame for the whole batch — one writer-lock hold
    /// and one wire round instead of one per operation. Oversized
    /// batches are chunked at the frame bound (`u16::MAX` operations);
    /// per-operation key-length violations fail only their own ticket
    /// and are excluded from the frame.
    fn submit_batch(&self, ops: Vec<BatchOp>) -> Vec<OpTicket> {
        let mut tickets: Vec<Option<OpTicket>> = (0..ops.len()).map(|_| None).collect();
        // (original index, wire op) for every op that passes the local
        // key-length check.
        let mut sendable: Vec<(usize, WireOp)> = Vec::with_capacity(ops.len());
        for (i, op) in ops.into_iter().enumerate() {
            if op.key().len() > super::frame::MAX_KEY_LEN {
                tickets[i] = Some(OpTicket::failed(StoreError::Rejected(format!(
                    "key length {} exceeds the wire bound {}",
                    op.key().len(),
                    super::frame::MAX_KEY_LEN
                ))));
                continue;
            }
            let wire = match op {
                BatchOp::Read(key) => WireOp::Read(key),
                BatchOp::Write(key, value) => WireOp::Write(key, value.as_bytes().to_vec()),
            };
            sendable.push((i, wire));
        }
        for chunk in sendable.chunks_mut(usize::from(u16::MAX)) {
            let id = self.next_id();
            let mut cells = Vec::with_capacity(chunk.len());
            let mut wire_ops = Vec::with_capacity(chunk.len());
            for (i, wire) in chunk.iter_mut() {
                let cell: Arc<OpCell> = Arc::new(NetCell::new());
                tickets[*i] = Some(OpTicket::net(Arc::clone(&cell), self.timeout));
                cells.push(cell);
                wire_ops.push(std::mem::replace(wire, WireOp::Read(String::new())));
            }
            let frame = Frame::BatchReq { id, ops: wire_ops };
            if let Err(e) = self.send(id, Pending::Batch(cells), &frame) {
                // The socket died: `send` already failed the registered
                // cells via `fail_all`; tickets for *later* chunks are
                // assigned below as failed-at-submission.
                for (i, _) in chunk.iter() {
                    tickets[*i] = Some(OpTicket::failed(e.clone()));
                }
            }
        }
        tickets
            .into_iter()
            // audit:allow(panic-path) — every chunk either registers a cell
            // (success arm) or marks its indices failed (error arm), so each
            // `tickets` slot is assigned exactly once.
            .map(|t| t.expect("every batched operation got a ticket"))
            .collect()
    }

    fn key_meta(&self, key: &str) -> Result<KeyMeta, StoreError> {
        let id = self.next_id();
        let cell: Arc<NetCell<Result<KeyMeta, StoreError>>> = Arc::new(NetCell::new());
        self.send(
            id,
            Pending::Meta(Arc::clone(&cell)),
            &Frame::MetaReq {
                id,
                key: key.to_owned(),
            },
        )?;
        cell.wait(self.timeout).unwrap_or(Err(StoreError::Timeout))
    }

    fn stats(&self) -> Result<StoreMetrics, StoreError> {
        let id = self.next_id();
        let cell: Arc<NetCell<Result<StoreMetrics, StoreError>>> = Arc::new(NetCell::new());
        self.send(
            id,
            Pending::Stats(Arc::clone(&cell)),
            &Frame::StatsReq { id },
        )?;
        cell.wait(self.timeout).unwrap_or(Err(StoreError::Timeout))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Closing the socket makes the reader's blocking read return,
        // which fails anything still pending and exits the thread.
        let _ = tracked_lock(ranks::NET_WRITER, "net_writer", || self.writer.lock())
            .shutdown(std::net::Shutdown::Both);
        if let Some(h) = tracked_lock(ranks::NET_READER, "net_reader", || self.reader.lock()).take()
        {
            let _ = h.join();
        }
    }
}

/// The per-connection reader: demultiplexes response frames into the
/// pending completion cells until the stream ends or breaks.
fn read_loop(stream: TcpStream, shared: &Shared) {
    let mut r = BufReader::new(stream);
    loop {
        match read_frame(&mut r) {
            Ok(Some(frame)) => {
                let (id, outcome): (u64, Result<OpResult, StoreError>) = match frame {
                    Frame::ReadResp { id, value } => {
                        (id, Ok(OpResult::Read(value_from_wire(value))))
                    }
                    Frame::WriteResp { id } => (id, Ok(OpResult::Write)),
                    Frame::ErrorResp { id, error } => (id, Err(error)),
                    Frame::MetaResp {
                        id,
                        value_len,
                        protocol,
                    } => {
                        match tracked_lock(ranks::NET_PENDING, "net_pending", || {
                            shared.pending.lock()
                        })
                        .remove(&id)
                        {
                            Some(Pending::Meta(cell)) => cell.fill(Ok(KeyMeta {
                                value_len: value_len as usize,
                                protocol,
                            })),
                            Some(Pending::Op(cell)) => cell.fill(Err(StoreError::Decode(
                                "meta response to an operation request".into(),
                            ))),
                            Some(Pending::Batch(cells)) => {
                                for cell in cells {
                                    cell.fill(Err(StoreError::Decode(
                                        "meta response to a batch request".into(),
                                    )));
                                }
                            }
                            Some(Pending::Stats(cell)) => cell.fill(Err(StoreError::Decode(
                                "meta response to a stats request".into(),
                            ))),
                            None => {}
                        }
                        continue;
                    }
                    Frame::BatchResp { id, results } => {
                        match tracked_lock(ranks::NET_PENDING, "net_pending", || {
                            shared.pending.lock()
                        })
                        .remove(&id)
                        {
                            Some(Pending::Batch(cells)) => {
                                if cells.len() == results.len() {
                                    for (cell, result) in cells.iter().zip(results) {
                                        cell.fill(match result {
                                            Ok(Some(bytes)) => {
                                                Ok(OpResult::Read(value_from_wire(bytes)))
                                            }
                                            Ok(None) => Ok(OpResult::Write),
                                            Err(e) => Err(e),
                                        });
                                    }
                                } else {
                                    // An arity mismatch is unrecoverable:
                                    // results can no longer be matched to
                                    // operations, so the whole batch fails.
                                    let err = StoreError::Decode(format!(
                                        "batch response carries {} results for {} operations",
                                        results.len(),
                                        cells.len()
                                    ));
                                    for cell in cells {
                                        cell.fill(Err(err.clone()));
                                    }
                                }
                            }
                            Some(Pending::Op(cell)) => cell.fill(Err(StoreError::Decode(
                                "batch response to a single-operation request".into(),
                            ))),
                            Some(Pending::Meta(cell)) => cell.fill(Err(StoreError::Decode(
                                "batch response to a meta request".into(),
                            ))),
                            Some(Pending::Stats(cell)) => cell.fill(Err(StoreError::Decode(
                                "batch response to a stats request".into(),
                            ))),
                            None => {}
                        }
                        continue;
                    }
                    Frame::StatsResp { id, metrics } => {
                        match tracked_lock(ranks::NET_PENDING, "net_pending", || {
                            shared.pending.lock()
                        })
                        .remove(&id)
                        {
                            Some(Pending::Stats(cell)) => cell.fill(Ok(metrics)),
                            Some(Pending::Op(cell)) => cell.fill(Err(StoreError::Decode(
                                "stats response to an operation request".into(),
                            ))),
                            Some(Pending::Batch(cells)) => {
                                for cell in cells {
                                    cell.fill(Err(StoreError::Decode(
                                        "stats response to a batch request".into(),
                                    )));
                                }
                            }
                            Some(Pending::Meta(cell)) => cell.fill(Err(StoreError::Decode(
                                "stats response to a meta request".into(),
                            ))),
                            None => {}
                        }
                        continue;
                    }
                    other => {
                        // A request frame (or hello) from the server is a
                        // protocol violation; kill the connection cleanly.
                        shared.fail_all(&StoreError::Decode(format!(
                            "unexpected {} frame from server",
                            other.kind()
                        )));
                        return;
                    }
                };
                match tracked_lock(ranks::NET_PENDING, "net_pending", || shared.pending.lock())
                    .remove(&id)
                {
                    Some(Pending::Op(cell)) => cell.fill(outcome),
                    Some(Pending::Batch(cells)) => {
                        // An `ErrorResp` on a batch id is a legitimate
                        // batch-wide failure; any other single-operation
                        // response to a batch is a protocol violation.
                        let fill = match outcome {
                            Err(e) => Err(e),
                            Ok(_) => Err(StoreError::Decode(
                                "single-operation response to a batch request".into(),
                            )),
                        };
                        for cell in cells {
                            cell.fill(fill.clone());
                        }
                    }
                    Some(Pending::Meta(cell)) => {
                        cell.fill(outcome.and(Err(StoreError::Decode(
                            "operation response to a meta request".into(),
                        ))));
                    }
                    Some(Pending::Stats(cell)) => {
                        cell.fill(outcome.and(Err(StoreError::Decode(
                            "operation response to a stats request".into(),
                        ))));
                    }
                    // Unknown id: a response to a timed-out-and-forgotten
                    // op, or a server bug — either way, nothing to fill.
                    None => {}
                }
            }
            Ok(None) => {
                shared.fail_all(&StoreError::Io("connection closed by server".into()));
                return;
            }
            Err(e) => {
                shared.fail_all(&e);
                return;
            }
        }
    }
}
