//! The TCP service surface: [`StoreServer`] accepts connections and
//! bridges their frames onto the store's existing async completion
//! machinery — no async runtime, no per-operation threads.
//!
//! Per connection, two threads:
//!
//! * a **reader** that decodes request frames and submits them through
//!   the in-process [`Loopback`](super::Loopback) transport, forwarding
//!   each returned [`OpTicket`](super::OpTicket) to the pump;
//! * a **pump** that polls every in-flight ticket with a thread-unpark
//!   waker and writes response frames as results land — out of order,
//!   so a slow key never blocks a fast one's response.
//!
//! Shutdown stops the accept loop (a self-connect unblocks it), shuts
//! down every live connection socket (unblocking the readers), and
//! halts the store — driver slots then fail with `ShutDown`, the pumps
//! flush those as error frames, and every thread joins.

use super::frame::{read_frame, write_frame, Frame, WireOp, WireOpResult, WIRE_VERSION};
use super::{result_frame, value_from_wire, Loopback, OpTicket, Transport};
use crate::config::ListenSpec;
use crate::recorder::FlightEventKind;
use crate::store::{BatchOp, Store, StoreError};
use rsb_fpsm::{OpRequest, OpResult};
use rsb_registers::lockorder::{ranks, tracked_lock};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;
use std::time::Instant;

/// Where one TCP op's wire time is attributed: the key's home shard,
/// stamped when the request frame finished decoding. The pump closes the
/// interval after flushing the response, so `wire` covers queueing
/// behind the store *plus* response serialization — everything
/// server-side that loopback clients never pay.
struct WireStamp {
    shard: usize,
    decoded: Instant,
}

/// What a connection's reader hands its pump.
enum ConnMsg {
    /// An operation in flight: respond with `id` when the ticket lands,
    /// then record its wire latency on the stamped shard.
    Ticket(u64, OpTicket, WireStamp),
    /// A whole client batch in flight: one `BatchResp` goes out when
    /// *every* ticket has landed, then each operation's wire latency is
    /// recorded on its own shard.
    Batch(u64, Vec<(OpTicket, WireStamp)>),
    /// A response that is already complete (meta, stats, protocol
    /// errors).
    Ready(Frame),
}

/// A batch the pump is still collecting results for: each slot holds
/// the ticket, the op's wire stamp, and the result once it lands.
struct BatchInFlight {
    id: u64,
    slots: Vec<(OpTicket, WireStamp, Option<WireOpResult>)>,
}

/// Converts a resolved server-side submission into its on-the-wire
/// batch-entry form.
fn wire_result(result: Result<OpResult, StoreError>) -> WireOpResult {
    match result {
        Ok(OpResult::Read(v)) => Ok(Some(v.as_bytes().to_vec())),
        Ok(OpResult::Write) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Wakes the pump thread so it re-polls its in-flight tickets.
struct PumpUnparker(std::thread::Thread);

impl Wake for PumpUnparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Book-keeping shared by the accept loop and the server handle.
struct ServerShared {
    stopping: AtomicBool,
    /// Live connection sockets by connection id, so shutdown can
    /// unblock every reader stuck in a blocking read.
    conns: parking_lot::Mutex<HashMap<u64, TcpStream>>,
    /// Reader-thread handles (each reader joins its own pump). Finished
    /// threads linger here until shutdown joins them — cheap, bounded
    /// by the connection cap.
    handles: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

/// A running TCP front-end over a [`Store`].
///
/// Built by [`Store::serve`]; [`StoreServer::shutdown`] (or drop) stops
/// accepting, severs live connections, and halts the store.
pub struct StoreServer {
    store: Store,
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl StoreServer {
    /// Binds the listener and spawns the accept loop over `store`.
    pub(crate) fn bind(store: Store, spec: &ListenSpec) -> Result<Self, StoreError> {
        let listener = TcpListener::bind(&spec.addr).map_err(|e| StoreError::Io(e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let shared = Arc::new(ServerShared {
            stopping: AtomicBool::new(false),
            conns: parking_lot::Mutex::new(HashMap::new()),
            handles: parking_lot::Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            let loopback = store.loopback();
            let spec = spec.clone();
            std::thread::Builder::new()
                .name("store-accept".into())
                .spawn(move || accept_loop(&listener, &loopback, &shared, &spec))
                .map_err(|e| StoreError::Io(e.to_string()))?
        };
        Ok(StoreServer {
            store,
            local_addr,
            shared,
            accept: parking_lot::Mutex::new(Some(accept)),
        })
    }

    /// The bound address — with an `:0` bind, the actual ephemeral port.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store being served: metrics, key histories, and the in-process
    /// [`Loopback`](super::Loopback) client path remain fully available
    /// while the server runs.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Stops accepting, severs live connections, and halts the store.
    /// In-flight operations fail with [`StoreError::ShutDown`] delivered
    /// as error frames before the sockets close. Idempotent; also runs
    /// on drop.
    pub fn shutdown(self) {
        self.stop();
    }

    fn stop(&self) {
        // Release publishes the stop to the accept loop's acquire load;
        // the returned prior value (idempotence) needs only RMW
        // atomicity. Nothing here requires a total order across other
        // atomics, so SeqCst (the former ordering) was overkill.
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop: it re-checks the stop flag per
        // iteration, so one throwaway local connection gets it to exit.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) =
            tracked_lock(ranks::ACCEPT_HANDLE, "accept_handle", || self.accept.lock()).take()
        {
            let _ = h.join();
        }
        // Halting the store fails every in-flight driver slot with
        // ShutDown; the pumps flush those results as error frames.
        self.store.halt();
        // Sever live sockets so readers blocked mid-read return.
        for (_, conn) in
            tracked_lock(ranks::CONN_TABLE, "conn_table", || self.shared.conns.lock()).drain()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = tracked_lock(ranks::CONN_HANDLES, "conn_handles", || {
            self.shared.handles.lock()
        })
        .drain(..)
        .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    loopback: &Loopback,
    shared: &Arc<ServerShared>,
    spec: &ListenSpec,
) {
    let next_conn = AtomicU64::new(0);
    loop {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        // Acquire pairs with the stopper's release swap: once the
        // stopper's throwaway connection lands here, this load observes
        // the flag (the accept syscall round-trip long outlasts store
        // visibility) and the loop exits before spawning more handlers.
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        // `backlog` bounds live connections: over it, answer the
        // client's pending hello with a rejection and close.
        if tracked_lock(ranks::CONN_TABLE, "conn_table", || shared.conns.lock()).len()
            >= spec.backlog
        {
            loopback
                .inner
                .recorder
                .record(FlightEventKind::Rejected, None, spec.backlog as u64);
            let _ = write_frame(
                &mut &stream,
                &Frame::ErrorResp {
                    id: 0,
                    error: StoreError::Rejected(format!(
                        "server at capacity ({} connections)",
                        spec.backlog
                    )),
                },
            );
            continue;
        }
        if spec.nodelay {
            let _ = stream.set_nodelay(true);
        }
        // audit:allow(atomics-relaxed) — ID allocation; single-threaded
        // accept loop, and uniqueness needs only RMW atomicity.
        let conn_id = next_conn.fetch_add(1, Ordering::Relaxed);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        tracked_lock(ranks::CONN_TABLE, "conn_table", || shared.conns.lock())
            .insert(conn_id, registered);
        let handle = {
            let loopback = loopback.clone();
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("store-conn-{conn_id}"))
                .spawn(move || {
                    connection(&stream, &loopback);
                    tracked_lock(ranks::CONN_TABLE, "conn_table", || shared.conns.lock())
                        .remove(&conn_id);
                })
        };
        match handle {
            Ok(h) => tracked_lock(ranks::CONN_HANDLES, "conn_handles", || {
                shared.handles.lock()
            })
            .push(h),
            Err(_) => {
                tracked_lock(ranks::CONN_TABLE, "conn_table", || shared.conns.lock())
                    .remove(&conn_id);
            }
        }
    }
}

/// One connection, start to finish: handshake, then decode-and-submit
/// until the stream ends, with a pump thread writing the responses.
fn connection(stream: &TcpStream, loopback: &Loopback) {
    // Handshake first, single-threaded on the socket.
    let mut io = stream;
    match read_frame(&mut io) {
        Ok(Some(Frame::Hello { version })) if version == WIRE_VERSION => {
            if write_frame(
                &mut io,
                &Frame::HelloAck {
                    version: WIRE_VERSION,
                },
            )
            .is_err()
            {
                return;
            }
        }
        Ok(Some(Frame::Hello { version })) => {
            let _ = write_frame(
                &mut io,
                &Frame::ErrorResp {
                    id: 0,
                    error: StoreError::ProtocolVersion {
                        got: version,
                        want: WIRE_VERSION,
                    },
                },
            );
            return;
        }
        Ok(Some(_) | None) | Err(_) => return,
    }
    let recorder = Arc::clone(&loopback.inner.recorder);
    recorder.record(FlightEventKind::ConnOpen, None, 0);

    let Ok(write_stream) = stream.try_clone() else {
        recorder.record(FlightEventKind::ConnClose, None, 0);
        return;
    };
    let (tx, rx) = std::sync::mpsc::channel::<ConnMsg>();
    let pump_loopback = loopback.clone();
    let Ok(pump) = std::thread::Builder::new()
        .name("store-conn-pump".into())
        .spawn(move || pump_loop(&write_stream, &rx, &pump_loopback))
    else {
        recorder.record(FlightEventKind::ConnClose, None, 0);
        return;
    };
    let pump_thread = pump.thread().clone();

    read_requests(stream, loopback, &tx, &pump_thread);

    // Dropping the sender tells the pump to exit once its in-flight
    // tickets have drained (each resolves eventually — completion or
    // ShutDown — per the Transport contract).
    drop(tx);
    pump_thread.unpark();
    let _ = pump.join();
    recorder.record(FlightEventKind::ConnClose, None, 0);
}

/// The reader half: decodes request frames and forwards work to the
/// pump until EOF, a decode error, or a protocol violation.
fn read_requests(
    stream: &TcpStream,
    loopback: &Loopback,
    tx: &Sender<ConnMsg>,
    pump: &std::thread::Thread,
) {
    let mut r = BufReader::new(stream);
    loop {
        let msg = match read_frame(&mut r) {
            Ok(Some(Frame::ReadReq { id, key })) => {
                let stamp = WireStamp {
                    shard: loopback.inner.index_for(&key),
                    decoded: Instant::now(),
                };
                ConnMsg::Ticket(id, loopback.submit(&key, OpRequest::Read), stamp)
            }
            Ok(Some(Frame::WriteReq { id, key, value })) => {
                let stamp = WireStamp {
                    shard: loopback.inner.index_for(&key),
                    decoded: Instant::now(),
                };
                ConnMsg::Ticket(
                    id,
                    loopback.submit(&key, OpRequest::Write(value_from_wire(value))),
                    stamp,
                )
            }
            Ok(Some(Frame::BatchReq { id, ops })) => {
                let decoded = Instant::now();
                let batch: Vec<BatchOp> = ops
                    .into_iter()
                    .map(|op| match op {
                        WireOp::Read(key) => BatchOp::Read(key),
                        WireOp::Write(key, value) => BatchOp::Write(key, value_from_wire(value)),
                    })
                    .collect();
                let stamps: Vec<WireStamp> = batch
                    .iter()
                    .map(|op| WireStamp {
                        shard: loopback.inner.index_for(op.key()),
                        decoded,
                    })
                    .collect();
                // The loopback batch path does the grouped submission;
                // per-op failures come back as failed tickets and turn
                // into error entries of the batch response.
                let tickets = loopback.submit_batch(batch);
                ConnMsg::Batch(id, tickets.into_iter().zip(stamps).collect())
            }
            Ok(Some(Frame::StatsReq { id })) => ConnMsg::Ready(Frame::StatsResp {
                id,
                metrics: loopback.inner.metrics(),
            }),
            Ok(Some(Frame::MetaReq { id, key })) => match loopback.key_meta(&key) {
                Ok(meta) => ConnMsg::Ready(Frame::MetaResp {
                    id,
                    value_len: u32::try_from(meta.value_len).unwrap_or(u32::MAX),
                    protocol: meta.protocol,
                }),
                Err(error) => ConnMsg::Ready(Frame::ErrorResp { id, error }),
            },
            Ok(Some(other)) => {
                // A hello or response frame mid-session is a protocol
                // violation: answer once, then drop the connection.
                loopback
                    .inner
                    .recorder
                    .record(FlightEventKind::DecodeError, None, 0);
                let frame = Frame::ErrorResp {
                    id: 0,
                    error: StoreError::Decode(format!(
                        "unexpected {} frame from client",
                        other.kind()
                    )),
                };
                let _ = tx.send(ConnMsg::Ready(frame));
                pump.unpark();
                return;
            }
            Ok(None) => return,
            Err(error) => {
                // Truncated/oversized/garbled input: answer with the
                // decode error (id 0 = not tied to a request), then close
                // — resynchronizing a corrupt length-prefixed stream is
                // not possible.
                loopback
                    .inner
                    .recorder
                    .record(FlightEventKind::DecodeError, None, 0);
                let _ = tx.send(ConnMsg::Ready(Frame::ErrorResp { id: 0, error }));
                pump.unpark();
                return;
            }
        };
        if tx.send(msg).is_err() {
            return;
        }
        pump.unpark();
    }
}

/// The writer half: polls in-flight tickets with an unpark waker and
/// writes each response frame the moment its result lands, closing each
/// op's wire-time interval afterwards.
fn pump_loop(stream: &TcpStream, rx: &Receiver<ConnMsg>, loopback: &Loopback) {
    let waker = Waker::from(Arc::new(PumpUnparker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut in_flight: Vec<(u64, OpTicket, WireStamp)> = Vec::new();
    let mut batches: Vec<BatchInFlight> = Vec::new();
    let mut reader_gone = false;
    let mut w = stream;
    loop {
        // Drain new work from the reader.
        loop {
            match rx.try_recv() {
                Ok(ConnMsg::Ticket(id, ticket, stamp)) => in_flight.push((id, ticket, stamp)),
                Ok(ConnMsg::Batch(id, ops)) => batches.push(BatchInFlight {
                    id,
                    slots: ops
                        .into_iter()
                        .map(|(ticket, stamp)| (ticket, stamp, None))
                        .collect(),
                }),
                Ok(ConnMsg::Ready(frame)) => {
                    if write_frame(&mut w, &frame).is_err() {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    reader_gone = true;
                    break;
                }
            }
        }
        // Poll every in-flight ticket; write results as they land.
        let mut i = 0;
        while i < in_flight.len() {
            match in_flight[i].1.poll_result(&mut cx) {
                Poll::Ready(result) => {
                    let (id, _, stamp) = in_flight.swap_remove(i);
                    if write_frame(&mut w, &result_frame(id, result)).is_err() {
                        // Client gone: drop remaining tickets (drivers
                        // fill their slots; nobody listens) and exit.
                        return;
                    }
                    loopback.inner.shards[stamp.shard]
                        .note_wire_latency(stamp.decoded.elapsed().as_nanos() as u64);
                }
                Poll::Pending => i += 1,
            }
        }
        // Poll batches; a batch responds only once *all* its tickets
        // have landed, as one vectored frame.
        let mut b = 0;
        while b < batches.len() {
            let batch = &mut batches[b];
            let mut done = true;
            for (ticket, _, result) in &mut batch.slots {
                if result.is_none() {
                    match ticket.poll_result(&mut cx) {
                        Poll::Ready(r) => *result = Some(wire_result(r)),
                        Poll::Pending => done = false,
                    }
                }
            }
            if done {
                let BatchInFlight { id, slots } = batches.swap_remove(b);
                let mut results = Vec::with_capacity(slots.len());
                let mut stamps = Vec::with_capacity(slots.len());
                for (_, stamp, result) in slots {
                    // audit:allow(panic-path) — `done` stays `true` only when every
                    // slot polled `Ready` this pass (pending slots clear it), so each
                    // `result` was filled before the batch is drained.
                    results.push(result.expect("all batch slots resolved"));
                    stamps.push(stamp);
                }
                if write_frame(&mut w, &Frame::BatchResp { id, results }).is_err() {
                    return;
                }
                for stamp in stamps {
                    loopback.inner.shards[stamp.shard]
                        .note_wire_latency(stamp.decoded.elapsed().as_nanos() as u64);
                }
            } else {
                b += 1;
            }
        }
        if reader_gone && in_flight.is_empty() && batches.is_empty() {
            return;
        }
        // Park until a waker fires or the reader unparks us with new
        // work; both re-enter the drain-and-poll loop above. A token
        // stored by an unpark that raced this check makes park return
        // immediately, so no wakeup is lost.
        std::thread::park();
    }
}
