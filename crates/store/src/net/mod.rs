//! The transport-generic client surface and its two wires.
//!
//! A [`Transport`] turns `submit(key, op)` into an eventual completion.
//! Two implementations ship:
//!
//! * [`Loopback`] — the in-process path: submissions go straight onto
//!   the store's shard engines and complete through the driver-filled
//!   condvar slots of `rsb_registers::threaded`. Zero copies beyond the
//!   operation itself, fully deterministic and hermetic — what tier-1
//!   tests and benches run against.
//! * [`TcpTransport`] — the real wire: a versioned length-prefixed
//!   binary protocol (see [`frame`]) over a std `TcpStream`, served by
//!   [`StoreServer`]. No async runtime anywhere: one reader thread per
//!   connection fills the same kind of completion cells the futures
//!   already poll.
//!
//! [`StoreClient`](crate::StoreClient) is generic over the transport
//! (defaulting to [`Loopback`]), so the whole async + blocking client
//! API — futures, `block_on`, `join_all`, the `*_blocking` shorthands —
//! is identical whether the store is in-process or across a socket.

pub mod frame;
mod server;
mod tcp;

pub use server::StoreServer;
pub use tcp::TcpTransport;

use crate::metrics::StoreMetrics;
use crate::store::{BatchOp, StoreError, StoreInner};
use rsb_coding::Value;
use rsb_fpsm::{OpRequest, OpResult};
use rsb_registers::lockorder::{ranks, tracked_lock};
use rsb_registers::CompletionSlot;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

/// What a transport knows about one key's shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyMeta {
    /// The value length the key's shard expects for writes.
    pub value_len: usize,
    /// The register protocol name of the key's shard.
    pub protocol: String,
}

/// A submission path from a client to a store: request in, completion
/// ticket out.
///
/// Implementations must be cheap to share (`&self` submission from many
/// threads) and must *eventually* resolve every returned ticket — with
/// the operation's result, or with a [`StoreError`] when the store shut
/// down or the wire broke. Tickets must never hang forever.
pub trait Transport: Send + Sync + 'static {
    /// Submits one operation on a key.
    fn submit(&self, key: &str, req: OpRequest) -> OpTicket;

    /// Submits a batch of operations in one transport round, returning
    /// one ticket per operation in submission order. The default
    /// implementation just loops [`Transport::submit`]; transports with
    /// a cheaper grouped path override it — [`Loopback`] submits each
    /// shard's operations under one lock hold, [`TcpTransport`] sends
    /// the whole batch as a single `BatchReq` frame.
    ///
    /// Per-operation failures resolve that operation's ticket and never
    /// affect its batchmates.
    fn submit_batch(&self, ops: Vec<BatchOp>) -> Vec<OpTicket> {
        ops.into_iter()
            .map(|op| {
                let (key, req) = op.into_parts();
                self.submit(&key, req)
            })
            .collect()
    }

    /// Describes the key's shard (write value length, protocol name).
    ///
    /// # Errors
    ///
    /// Transport failures ([`StoreError::Io`], …) for remote wires;
    /// infallible for [`Loopback`].
    fn key_meta(&self, key: &str) -> Result<KeyMeta, StoreError>;

    /// Scrapes the store's full metrics snapshot — in-process for
    /// [`Loopback`], over the `StatsReq`/`StatsResp` frame pair for
    /// remote wires.
    ///
    /// # Errors
    ///
    /// Transport failures ([`StoreError::Io`], …) for remote wires;
    /// infallible for [`Loopback`].
    fn stats(&self) -> Result<StoreMetrics, StoreError>;
}

/// A one-shot completion cell filled by a transport's delivery thread
/// (the TCP reader) rather than a shard driver. Mirrors
/// [`CompletionSlot`]: blocking wait on a condvar, or future-style poll
/// through a stored waker.
#[derive(Debug)]
pub(crate) struct NetCell<T> {
    inner: parking_lot::Mutex<NetCellInner<T>>,
    done: parking_lot::Condvar,
}

#[derive(Debug)]
struct NetCellInner<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

impl<T: Clone> NetCell<T> {
    pub(crate) fn new() -> Self {
        NetCell {
            inner: parking_lot::Mutex::new(NetCellInner {
                result: None,
                waker: None,
            }),
            done: parking_lot::Condvar::new(),
        }
    }

    /// Fills the cell (first outcome wins), waking waiters and wakers.
    pub(crate) fn fill(&self, value: T) {
        let waker = {
            let mut inner = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
            if inner.result.is_some() {
                return;
            }
            inner.result = Some(value);
            self.done.notify_all();
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Blocks until filled, or until `timeout` elapses (`None` = forever).
    /// Returns `None` on timeout.
    pub(crate) fn wait(&self, timeout: Option<Duration>) -> Option<T> {
        let mut inner = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
        match timeout {
            None => loop {
                if let Some(v) = inner.result.clone() {
                    return Some(v);
                }
                self.done.wait(inner.raw_mut());
            },
            Some(limit) => {
                let deadline = std::time::Instant::now() + limit;
                loop {
                    if let Some(v) = inner.result.clone() {
                        return Some(v);
                    }
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let _ = self.done.wait_for(inner.raw_mut(), deadline - now);
                }
            }
        }
    }

    /// Future-style poll: ready with the value, or registers the waker.
    pub(crate) fn poll(&self, cx: &mut Context<'_>) -> Poll<T> {
        let mut inner = tracked_lock(ranks::COMPLETION, "completion", || self.inner.lock());
        if let Some(v) = inner.result.clone() {
            Poll::Ready(v)
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// The completion cell TCP operations resolve through.
pub(crate) type OpCell = NetCell<Result<OpResult, StoreError>>;

/// A pending operation's completion handle, returned by
/// [`Transport::submit`] and wrapped by the client's
/// [`ReadFuture`](crate::ReadFuture) / [`WriteFuture`](crate::WriteFuture).
///
/// Transports construct tickets through [`OpTicket::from_slot`] (driver
/// completion slots, the loopback path), [`OpTicket::failed`]
/// (submission-time errors), or the crate-internal network variant.
#[derive(Debug)]
pub struct OpTicket {
    pub(crate) inner: TicketInner,
}

#[derive(Debug)]
pub(crate) enum TicketInner {
    /// A driver-filled completion slot (loopback).
    Slot(Arc<CompletionSlot>),
    /// A transport-filled completion cell (TCP reader thread), with an
    /// optional blocking-wait timeout.
    Net {
        cell: Arc<OpCell>,
        timeout: Option<Duration>,
    },
    /// Failed at submission; `None` after the error has been taken.
    Failed(Option<StoreError>),
}

impl OpTicket {
    /// A ticket backed by a driver completion slot.
    pub fn from_slot(slot: Arc<CompletionSlot>) -> Self {
        OpTicket {
            inner: TicketInner::Slot(slot),
        }
    }

    /// A ticket that already failed at submission time.
    pub fn failed(err: StoreError) -> Self {
        OpTicket {
            inner: TicketInner::Failed(Some(err)),
        }
    }

    pub(crate) fn net(cell: Arc<OpCell>, timeout: Option<Duration>) -> Self {
        OpTicket {
            inner: TicketInner::Net { cell, timeout },
        }
    }

    pub(crate) fn poll_result(
        &mut self,
        cx: &mut Context<'_>,
    ) -> Poll<Result<OpResult, StoreError>> {
        match &mut self.inner {
            TicketInner::Slot(slot) => slot.poll_outcome(cx).map_err(StoreError::from),
            TicketInner::Net { cell, .. } => cell.poll(cx),
            TicketInner::Failed(err) => Poll::Ready(Err(err
                .take()
                // audit:allow(panic-path) — standard future contract: the error is
                // taken exactly once when `Ready` is returned; polling again after
                // completion is a caller bug.
                .expect("operation future polled after completion"))),
        }
    }

    /// Blocking wait. The configured per-operation timeout (TCP
    /// transports only) applies here; the async path has no timer and
    /// resolves whenever the transport delivers.
    pub(crate) fn wait(self) -> Result<OpResult, StoreError> {
        match self.inner {
            TicketInner::Slot(slot) => slot.wait().map_err(StoreError::from),
            TicketInner::Net { cell, timeout } => {
                cell.wait(timeout).unwrap_or(Err(StoreError::Timeout))
            }
            // audit:allow(panic-path) — `Failed` tickets are built with
            // `Some(err)` and consumed by value here, so the error is present.
            TicketInner::Failed(mut err) => Err(err.take().expect("freshly constructed")),
        }
    }
}

/// The in-process transport: submissions go straight to the store's
/// shard engines, completions come from the driver pool — exactly the
/// pre-transport `StoreClient` path, unchanged in cost and semantics.
///
/// Obtained from [`Store::client`](crate::Store::client) (or
/// [`Store::loopback`](crate::Store::loopback)); clones share the store.
#[derive(Clone)]
pub struct Loopback {
    pub(crate) inner: Arc<StoreInner>,
}

impl std::fmt::Debug for Loopback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Loopback").finish_non_exhaustive()
    }
}

impl Transport for Loopback {
    fn submit(&self, key: &str, req: OpRequest) -> OpTicket {
        let shard = self.inner.shard_for(key);
        if let OpRequest::Write(value) = &req {
            // The write-length precheck stays client-side on loopback —
            // same immediate rejection as before the transport split.
            if value.len() != shard.value_len() {
                return OpTicket::failed(StoreError::BadValueLength {
                    got: value.len(),
                    want: shard.value_len(),
                });
            }
        }
        match shard.submit(key, req) {
            Ok(slot) => OpTicket::from_slot(slot),
            Err(e) => OpTicket::failed(e),
        }
    }

    /// The grouped fast path: operations are bucketed by shard, then
    /// each shard takes the whole bucket in one engine `submit_batch`
    /// call — one placement-map lock hold for the bucket, one key-lock
    /// hold per distinct key, one driver wakeup — instead of paying all
    /// three per operation.
    fn submit_batch(&self, ops: Vec<BatchOp>) -> Vec<OpTicket> {
        let n = ops.len();
        let mut tickets: Vec<Option<OpTicket>> = (0..n).map(|_| None).collect();
        let mut buckets: Vec<Vec<(usize, String, OpRequest)>> =
            (0..self.inner.shards.len()).map(|_| Vec::new()).collect();
        for (i, op) in ops.into_iter().enumerate() {
            let (key, req) = op.into_parts();
            let shard_idx = self.inner.index_for(&key);
            if let OpRequest::Write(value) = &req {
                // Same client-side write-length precheck as the per-op
                // path: reject immediately, fail only this operation.
                let want = self.inner.shards[shard_idx].value_len();
                if value.len() != want {
                    tickets[i] = Some(OpTicket::failed(StoreError::BadValueLength {
                        got: value.len(),
                        want,
                    }));
                    continue;
                }
            }
            buckets[shard_idx].push((i, key, req));
        }
        for (shard_idx, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut indices = Vec::with_capacity(bucket.len());
            let mut batch = Vec::with_capacity(bucket.len());
            for (i, key, req) in bucket {
                indices.push(i);
                batch.push((key, req));
            }
            let results = self.inner.shards[shard_idx].submit_batch(batch);
            for (i, result) in indices.into_iter().zip(results) {
                tickets[i] = Some(match result {
                    Ok(slot) => OpTicket::from_slot(slot),
                    Err(e) => OpTicket::failed(e),
                });
            }
        }
        tickets
            .into_iter()
            // audit:allow(panic-path) — the loops above assign every index of
            // `tickets` exactly once (hit, miss, and failed arms all write), so
            // no slot is `None`.
            .map(|t| t.expect("every batched operation resolved"))
            .collect()
    }

    fn key_meta(&self, key: &str) -> Result<KeyMeta, StoreError> {
        let shard = self.inner.shard_for(key);
        Ok(KeyMeta {
            value_len: shard.value_len(),
            protocol: shard.protocol_name().to_string(),
        })
    }

    fn stats(&self) -> Result<StoreMetrics, StoreError> {
        Ok(self.inner.metrics())
    }
}

/// Resolves a server-side submission result into a response frame body.
pub(crate) fn result_frame(id: u64, result: Result<OpResult, StoreError>) -> frame::Frame {
    match result {
        Ok(OpResult::Read(v)) => frame::Frame::ReadResp {
            id,
            value: v.as_bytes().to_vec(),
        },
        Ok(OpResult::Write) => frame::Frame::WriteResp { id },
        Err(error) => frame::Frame::ErrorResp { id, error },
    }
}

/// Converts wire value bytes into the store's [`Value`].
pub(crate) fn value_from_wire(bytes: Vec<u8>) -> Value {
    Value::from_bytes(bytes)
}
