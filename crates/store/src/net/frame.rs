//! The wire codec: versioned, length-prefixed binary frames.
//!
//! Every frame on the wire is `[len: u32 LE][tag: u8][body…]`, where
//! `len` counts the tag byte plus the body. Integers are little-endian;
//! strings are length-prefixed UTF-8. The protocol is versioned through
//! the [`Frame::Hello`]/[`Frame::HelloAck`] handshake (the hello also
//! carries a magic so a socket speaking something else entirely fails
//! with a clean [`StoreError::Decode`] instead of garbage):
//!
//! | frame       | dir | body |
//! |-------------|-----|------|
//! | `Hello`     | c→s | magic `RSBW`, `version: u16` |
//! | `HelloAck`  | s→c | `version: u16` |
//! | `ReadReq`   | c→s | `id: u64`, `key: str16` |
//! | `WriteReq`  | c→s | `id: u64`, `key: str16`, `value: bytes32` |
//! | `MetaReq`   | c→s | `id: u64`, `key: str16` |
//! | `ReadResp`  | s→c | `id: u64`, `value: bytes32` |
//! | `WriteResp` | s→c | `id: u64` |
//! | `MetaResp`  | s→c | `id: u64`, `value_len: u32`, `protocol: str16` |
//! | `ErrorResp` | s→c | `id: u64`, `code: u8`, `a: u64`, `b: u64`, `msg: str16` |
//! | `StatsReq`  | c→s | `id: u64` |
//! | `StatsResp` | s→c | `id: u64`, `shard_count: u32`, shards… |
//! | `BatchReq`  | c→s | `id: u64`, `count: u16`, then per op: `kind: u8` (0 = read, 1 = write), `key: str16`, and for writes `value: bytes32` |
//! | `BatchResp` | s→c | `id: u64`, `count: u16`, then per op: `status: u8` — 0 = read value (`bytes32`), 1 = write ack, 2 = error (`code: u8`, `a: u64`, `b: u64`, `msg: str16`) |
//!
//! (`str16` = `u16` length + bytes; `bytes32` = `u32` length + bytes.)
//!
//! A batch carries up to `u16::MAX` operations in one frame and its
//! response carries one result per operation *in submission order*; an
//! empty batch is a decode error, so the degenerate frame never reaches
//! the store.
//!
//! A `StatsResp` shard body is `shard: u64`, `protocol: str16`,
//! `keys: u64`, the 15 operation counters as `u64`s, the 4 storage-cost
//! components, 6 `u64` occupancy gauges, then 6 latency histograms, each
//! a `u16` entry count followed by `(lo_ns: u64, hi_ns: u64, count:
//! u64)` triples — bucket bounds travel explicitly, so a scraper needs
//! no knowledge of the server's bucketing scheme, and the decoder
//! re-validates each pair against its own.
//!
//! Decoding is total: truncated, oversized, trailing-garbage, and
//! unknown-tag frames all return [`StoreError::Decode`] — never a panic
//! — and the length prefix is bounded by [`MAX_FRAME_LEN`] before any
//! allocation, so a hostile peer cannot make the decoder reserve
//! gigabytes.

use crate::metrics::{LatencyHistogram, OpCounters, ShardMetrics, StoreMetrics};
use crate::store::StoreError;
use rsb_fpsm::StorageCost;
use std::io::{Read, Write};

/// Wire-protocol version carried in the hello handshake. Bump on any
/// incompatible frame change; the server rejects mismatches with
/// [`StoreError::ProtocolVersion`].
pub const WIRE_VERSION: u16 = 2;

/// Magic prefix of the client hello, so a peer speaking a different
/// protocol is rejected at the first frame.
pub const WIRE_MAGIC: [u8; 4] = *b"RSBW";

/// Upper bound on one frame's `len` field (tag + body). Larger prefixes
/// are rejected before any allocation happens.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on a key's byte length on the wire (`str16`).
pub const MAX_KEY_LEN: usize = u16::MAX as usize;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_READ_REQ: u8 = 3;
const TAG_WRITE_REQ: u8 = 4;
const TAG_META_REQ: u8 = 5;
const TAG_READ_RESP: u8 = 6;
const TAG_WRITE_RESP: u8 = 7;
const TAG_META_RESP: u8 = 8;
const TAG_ERROR_RESP: u8 = 9;
const TAG_STATS_REQ: u8 = 10;
const TAG_STATS_RESP: u8 = 11;
const TAG_BATCH_REQ: u8 = 12;
const TAG_BATCH_RESP: u8 = 13;

const BATCH_KIND_READ: u8 = 0;
const BATCH_KIND_WRITE: u8 = 1;

const BATCH_STATUS_READ: u8 = 0;
const BATCH_STATUS_WRITE: u8 = 1;
const BATCH_STATUS_ERROR: u8 = 2;

const ERR_SHUT_DOWN: u8 = 0;
const ERR_REJECTED: u8 = 1;
const ERR_BAD_VALUE_LENGTH: u8 = 2;
const ERR_IO: u8 = 3;
const ERR_DECODE: u8 = 4;
const ERR_PROTOCOL_VERSION: u8 = 5;
const ERR_TIMEOUT: u8 = 6;

/// One operation inside a [`Frame::BatchReq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOp {
    /// `read(key)`.
    Read(String),
    /// `write(key, value)`.
    Write(String, Vec<u8>),
}

impl WireOp {
    /// The key this operation targets.
    pub fn key(&self) -> &str {
        match self {
            WireOp::Read(key) | WireOp::Write(key, _) => key,
        }
    }
}

/// One per-op outcome inside a [`Frame::BatchResp`]: `Some(value)` for a
/// completed read, `None` for a write acknowledgement.
pub type WireOpResult = Result<Option<Vec<u8>>, StoreError>;

/// One protocol frame (either direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client hello: magic + the client's wire version.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// Server accept: the server's wire version (== the client's).
    HelloAck {
        /// The server's [`WIRE_VERSION`].
        version: u16,
    },
    /// `read(key)` request.
    ReadReq {
        /// Per-connection request id, echoed by the response.
        id: u64,
        /// The key to read.
        key: String,
    },
    /// `write(key, value)` request.
    WriteReq {
        /// Per-connection request id, echoed by the response.
        id: u64,
        /// The key to write.
        key: String,
        /// The value payload.
        value: Vec<u8>,
    },
    /// Key metadata request (value length + shard protocol).
    MetaReq {
        /// Per-connection request id, echoed by the response.
        id: u64,
        /// The key whose shard is described.
        key: String,
    },
    /// Successful read completion.
    ReadResp {
        /// The request id this responds to.
        id: u64,
        /// The value read.
        value: Vec<u8>,
    },
    /// Successful write acknowledgement.
    WriteResp {
        /// The request id this responds to.
        id: u64,
    },
    /// Key metadata response.
    MetaResp {
        /// The request id this responds to.
        id: u64,
        /// The value length the key's shard expects for writes.
        value_len: u32,
        /// The register protocol name of the key's shard.
        protocol: String,
    },
    /// Failed completion (any request kind), or — with `id == 0` before
    /// any request was accepted — a connection-level rejection (version
    /// mismatch, capacity, handshake garbage).
    ErrorResp {
        /// The request id this responds to (0 for connection-level).
        id: u64,
        /// The failure, folded into the unified client error type.
        error: StoreError,
    },
    /// Store-wide metrics scrape request.
    StatsReq {
        /// Per-connection request id, echoed by the response.
        id: u64,
    },
    /// Metrics snapshot response: the server's full [`StoreMetrics`],
    /// counters and histograms included, with explicit bucket bounds.
    StatsResp {
        /// The request id this responds to.
        id: u64,
        /// The snapshot, identical to what [`Store::metrics`]
        /// (`crate::Store::metrics`) returns in-process.
        metrics: StoreMetrics,
    },
    /// A batch of operations submitted in one transport round. The
    /// server answers with exactly one [`Frame::BatchResp`] carrying one
    /// result per operation, in order. At most `u16::MAX` operations;
    /// an empty batch never decodes.
    BatchReq {
        /// Per-connection request id, echoed by the response.
        id: u64,
        /// The operations, in submission order.
        ops: Vec<WireOp>,
    },
    /// The vectored response to a [`Frame::BatchReq`]: per-op outcomes
    /// in the batch's submission order (individual failures travel
    /// inline — one slow or rejected op never poisons its batchmates).
    BatchResp {
        /// The request id this responds to.
        id: u64,
        /// One outcome per submitted op, in order.
        results: Vec<WireOpResult>,
    },
}

impl Frame {
    /// Short stable name of the frame type (diagnostics, tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello-ack",
            Frame::ReadReq { .. } => "read-req",
            Frame::WriteReq { .. } => "write-req",
            Frame::MetaReq { .. } => "meta-req",
            Frame::ReadResp { .. } => "read-resp",
            Frame::WriteResp { .. } => "write-resp",
            Frame::MetaResp { .. } => "meta-resp",
            Frame::ErrorResp { .. } => "error-resp",
            Frame::StatsReq { .. } => "stats-req",
            Frame::StatsResp { .. } => "stats-resp",
            Frame::BatchReq { .. } => "batch-req",
            Frame::BatchResp { .. } => "batch-resp",
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    debug_assert!(u16::try_from(s.len()).is_ok(), "str16 overflow");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes32(out: &mut Vec<u8>, b: &[u8]) {
    debug_assert!(u32::try_from(b.len()).is_ok(), "bytes32 overflow");
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// (code, a, b, message) wire representation of a [`StoreError`].
///
/// Every transport-visible variant has its own code; the local-only
/// [`StoreError::Config`] never legitimately crosses the wire and is
/// folded into `Rejected(msg)` (the remote client can not act on a
/// server-side configuration type anyway).
fn error_parts(err: &StoreError) -> (u8, u64, u64, String) {
    match err {
        StoreError::ShutDown => (ERR_SHUT_DOWN, 0, 0, String::new()),
        StoreError::Rejected(msg) => (ERR_REJECTED, 0, 0, msg.clone()),
        StoreError::BadValueLength { got, want } => (
            ERR_BAD_VALUE_LENGTH,
            *got as u64,
            *want as u64,
            String::new(),
        ),
        StoreError::Io(msg) => (ERR_IO, 0, 0, msg.clone()),
        StoreError::Decode(msg) => (ERR_DECODE, 0, 0, msg.clone()),
        StoreError::ProtocolVersion { got, want } => (
            ERR_PROTOCOL_VERSION,
            u64::from(*got),
            u64::from(*want),
            String::new(),
        ),
        StoreError::Timeout => (ERR_TIMEOUT, 0, 0, String::new()),
        StoreError::Config(e) => (ERR_REJECTED, 0, 0, e.to_string()),
    }
}

fn error_from_parts(code: u8, a: u64, b: u64, msg: String) -> Result<StoreError, StoreError> {
    Ok(match code {
        ERR_SHUT_DOWN => StoreError::ShutDown,
        ERR_REJECTED => StoreError::Rejected(msg),
        ERR_BAD_VALUE_LENGTH => StoreError::BadValueLength {
            got: a as usize,
            want: b as usize,
        },
        ERR_IO => StoreError::Io(msg),
        ERR_DECODE => StoreError::Decode(msg),
        ERR_PROTOCOL_VERSION => StoreError::ProtocolVersion {
            got: a as u16,
            want: b as u16,
        },
        ERR_TIMEOUT => StoreError::Timeout,
        other => return Err(decode_err(format!("unknown error code {other}"))),
    })
}

fn decode_err(msg: impl Into<String>) -> StoreError {
    StoreError::Decode(msg.into())
}

fn put_histogram(out: &mut Vec<u8>, h: &LatencyHistogram) {
    let entries = h.buckets().count() as u16; // occupied buckets only
    put_u16(out, entries);
    for (lo, hi, count) in h.buckets() {
        put_u64(out, lo);
        put_u64(out, hi);
        put_u64(out, count);
    }
}

fn put_counters(out: &mut Vec<u8>, t: &OpCounters) {
    for v in [
        t.reads_submitted,
        t.writes_submitted,
        t.reads_completed,
        t.writes_completed,
        t.bytes_read,
        t.bytes_written,
        t.rejected,
        t.steals,
        t.stolen,
        t.stolen_batches,
        t.truncated_records,
        t.rematerialized,
        t.evicted_manual,
        t.evicted_idle,
        t.evicted_occupancy,
    ] {
        put_u64(out, v);
    }
}

fn put_shard_metrics(out: &mut Vec<u8>, s: &ShardMetrics) {
    put_u64(out, s.shard as u64);
    put_str16(out, &s.protocol);
    put_u64(out, s.keys as u64);
    put_counters(out, &s.ops);
    put_u64(out, s.occupancy.object_bits);
    put_u64(out, s.occupancy.client_bits);
    put_u64(out, s.occupancy.inflight_param_bits);
    put_u64(out, s.occupancy.inflight_resp_bits);
    put_u64(out, s.peak_register_bits);
    put_u64(out, s.live_records);
    put_u64(out, s.evicted_keys as u64);
    put_u64(out, s.snapshot_bits);
    put_u64(out, s.ready_keys as u64);
    put_u64(out, s.governed_bits);
    for h in [
        &s.read_hit_latency,
        &s.read_remat_latency,
        &s.write_latency,
        &s.queue_wait,
        &s.execute,
        &s.wire,
    ] {
        put_histogram(out, h);
    }
}

/// A bounds-checked little-endian cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| decode_err("truncated frame"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| decode_err("truncated frame"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Fixed-width read as an array, with the length mismatch surfaced
    /// as a decode error — untrusted input never reaches a panic path.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        self.take(N)?
            .try_into()
            .map_err(|_| decode_err("truncated frame"))
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(u8::from_le_bytes(self.array()?))
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn str16(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| decode_err("non-UTF-8 string field"))
    }

    fn bytes32(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(decode_err(format!(
                "{} trailing bytes after frame body",
                self.buf.len() - self.pos
            )))
        }
    }

    fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?).map_err(|_| decode_err("count overflows usize"))
    }

    fn histogram(&mut self) -> Result<LatencyHistogram, StoreError> {
        let entries = self.u16()?;
        let mut h = LatencyHistogram::default();
        for _ in 0..entries {
            let lo = self.u64()?;
            let hi = self.u64()?;
            let count = self.u64()?;
            if count == 0 {
                return Err(decode_err("histogram entry with zero count"));
            }
            if !h.add_bucket(lo, hi, count) {
                return Err(decode_err(format!(
                    "histogram entry [{lo}, {hi}) is not a bucket boundary"
                )));
            }
        }
        Ok(h)
    }

    fn counters(&mut self) -> Result<OpCounters, StoreError> {
        Ok(OpCounters {
            reads_submitted: self.u64()?,
            writes_submitted: self.u64()?,
            reads_completed: self.u64()?,
            writes_completed: self.u64()?,
            bytes_read: self.u64()?,
            bytes_written: self.u64()?,
            rejected: self.u64()?,
            steals: self.u64()?,
            stolen: self.u64()?,
            stolen_batches: self.u64()?,
            truncated_records: self.u64()?,
            rematerialized: self.u64()?,
            evicted_manual: self.u64()?,
            evicted_idle: self.u64()?,
            evicted_occupancy: self.u64()?,
        })
    }

    fn shard_metrics(&mut self) -> Result<ShardMetrics, StoreError> {
        Ok(ShardMetrics {
            shard: self.usize()?,
            protocol: self.str16()?,
            keys: self.usize()?,
            ops: self.counters()?,
            occupancy: StorageCost {
                object_bits: self.u64()?,
                client_bits: self.u64()?,
                inflight_param_bits: self.u64()?,
                inflight_resp_bits: self.u64()?,
            },
            peak_register_bits: self.u64()?,
            live_records: self.u64()?,
            evicted_keys: self.usize()?,
            snapshot_bits: self.u64()?,
            ready_keys: self.usize()?,
            governed_bits: self.u64()?,
            read_hit_latency: self.histogram()?,
            read_remat_latency: self.histogram()?,
            write_latency: self.histogram()?,
            queue_wait: self.histogram()?,
            execute: self.histogram()?,
            wire: self.histogram()?,
        })
    }
}

/// Appends one frame — `[len][tag][body]` — to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    match frame {
        Frame::Hello { version } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&WIRE_MAGIC);
            put_u16(out, *version);
        }
        Frame::HelloAck { version } => {
            out.push(TAG_HELLO_ACK);
            put_u16(out, *version);
        }
        Frame::ReadReq { id, key } => {
            out.push(TAG_READ_REQ);
            put_u64(out, *id);
            put_str16(out, key);
        }
        Frame::WriteReq { id, key, value } => {
            out.push(TAG_WRITE_REQ);
            put_u64(out, *id);
            put_str16(out, key);
            put_bytes32(out, value);
        }
        Frame::MetaReq { id, key } => {
            out.push(TAG_META_REQ);
            put_u64(out, *id);
            put_str16(out, key);
        }
        Frame::ReadResp { id, value } => {
            out.push(TAG_READ_RESP);
            put_u64(out, *id);
            put_bytes32(out, value);
        }
        Frame::WriteResp { id } => {
            out.push(TAG_WRITE_RESP);
            put_u64(out, *id);
        }
        Frame::MetaResp {
            id,
            value_len,
            protocol,
        } => {
            out.push(TAG_META_RESP);
            put_u64(out, *id);
            put_u32(out, *value_len);
            put_str16(out, protocol);
        }
        Frame::ErrorResp { id, error } => {
            let (code, a, b, msg) = error_parts(error);
            out.push(TAG_ERROR_RESP);
            put_u64(out, *id);
            out.push(code);
            put_u64(out, a);
            put_u64(out, b);
            put_str16(out, &msg);
        }
        Frame::StatsReq { id } => {
            out.push(TAG_STATS_REQ);
            put_u64(out, *id);
        }
        Frame::StatsResp { id, metrics } => {
            out.push(TAG_STATS_RESP);
            put_u64(out, *id);
            put_u32(out, metrics.shards.len() as u32);
            for s in &metrics.shards {
                put_shard_metrics(out, s);
            }
        }
        Frame::BatchReq { id, ops } => {
            debug_assert!(!ops.is_empty(), "empty batch frame");
            debug_assert!(u16::try_from(ops.len()).is_ok(), "batch count overflow");
            out.push(TAG_BATCH_REQ);
            put_u64(out, *id);
            put_u16(out, ops.len() as u16);
            for op in ops {
                match op {
                    WireOp::Read(key) => {
                        out.push(BATCH_KIND_READ);
                        put_str16(out, key);
                    }
                    WireOp::Write(key, value) => {
                        out.push(BATCH_KIND_WRITE);
                        put_str16(out, key);
                        put_bytes32(out, value);
                    }
                }
            }
        }
        Frame::BatchResp { id, results } => {
            debug_assert!(!results.is_empty(), "empty batch response");
            debug_assert!(u16::try_from(results.len()).is_ok(), "batch count overflow");
            out.push(TAG_BATCH_RESP);
            put_u64(out, *id);
            put_u16(out, results.len() as u16);
            for result in results {
                match result {
                    Ok(Some(value)) => {
                        out.push(BATCH_STATUS_READ);
                        put_bytes32(out, value);
                    }
                    Ok(None) => out.push(BATCH_STATUS_WRITE),
                    Err(error) => {
                        let (code, a, b, msg) = error_parts(error);
                        out.push(BATCH_STATUS_ERROR);
                        out.push(code);
                        put_u64(out, a);
                        put_u64(out, b);
                        put_str16(out, &msg);
                    }
                }
            }
        }
    }
    let frame_len = (out.len() - len_at - 4) as u32;
    debug_assert!(
        frame_len <= MAX_FRAME_LEN,
        "encoded frame exceeds MAX_FRAME_LEN"
    );
    match out.get_mut(len_at..len_at + 4) {
        Some(slot) => slot.copy_from_slice(&frame_len.to_le_bytes()),
        // audit:allow(panic-path) — `len_at..len_at + 4` was reserved by
        // the `extend_from_slice` above and `out` only grows, so the slice
        // is always in bounds.
        None => unreachable!("length slot was reserved above"),
    }
}

/// Decodes one frame payload (`[tag][body]`, the bytes the length prefix
/// counted).
///
/// # Errors
///
/// [`StoreError::Decode`] on truncation, trailing bytes, unknown tags,
/// bad magic, or malformed string fields — never a panic.
pub fn decode_payload(payload: &[u8]) -> Result<Frame, StoreError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let tag = c.u8()?;
    let frame = match tag {
        TAG_HELLO => {
            let magic = c.take(4)?;
            if magic != WIRE_MAGIC {
                return Err(decode_err("bad hello magic"));
            }
            Frame::Hello { version: c.u16()? }
        }
        TAG_HELLO_ACK => Frame::HelloAck { version: c.u16()? },
        TAG_READ_REQ => Frame::ReadReq {
            id: c.u64()?,
            key: c.str16()?,
        },
        TAG_WRITE_REQ => Frame::WriteReq {
            id: c.u64()?,
            key: c.str16()?,
            value: c.bytes32()?,
        },
        TAG_META_REQ => Frame::MetaReq {
            id: c.u64()?,
            key: c.str16()?,
        },
        TAG_READ_RESP => Frame::ReadResp {
            id: c.u64()?,
            value: c.bytes32()?,
        },
        TAG_WRITE_RESP => Frame::WriteResp { id: c.u64()? },
        TAG_META_RESP => Frame::MetaResp {
            id: c.u64()?,
            value_len: c.u32()?,
            protocol: c.str16()?,
        },
        TAG_ERROR_RESP => {
            let id = c.u64()?;
            let code = c.u8()?;
            let a = c.u64()?;
            let b = c.u64()?;
            let msg = c.str16()?;
            Frame::ErrorResp {
                id,
                error: error_from_parts(code, a, b, msg)?,
            }
        }
        TAG_STATS_REQ => Frame::StatsReq { id: c.u64()? },
        TAG_STATS_RESP => {
            let id = c.u64()?;
            let shard_count = c.u32()?;
            // No `with_capacity(shard_count)`: a hostile count must not
            // drive an allocation — growth is bounded by real bytes.
            let mut shards = Vec::new();
            for _ in 0..shard_count {
                shards.push(c.shard_metrics()?);
            }
            Frame::StatsResp {
                id,
                metrics: StoreMetrics { shards },
            }
        }
        TAG_BATCH_REQ => {
            let id = c.u64()?;
            let count = c.u16()?;
            if count == 0 {
                return Err(decode_err("empty batch"));
            }
            // No `with_capacity(count)`: a hostile count must not drive
            // an allocation — growth is bounded by real bytes.
            let mut ops = Vec::new();
            for _ in 0..count {
                let op = match c.u8()? {
                    BATCH_KIND_READ => WireOp::Read(c.str16()?),
                    BATCH_KIND_WRITE => WireOp::Write(c.str16()?, c.bytes32()?),
                    other => return Err(decode_err(format!("unknown batch op kind {other}"))),
                };
                ops.push(op);
            }
            Frame::BatchReq { id, ops }
        }
        TAG_BATCH_RESP => {
            let id = c.u64()?;
            let count = c.u16()?;
            if count == 0 {
                return Err(decode_err("empty batch response"));
            }
            let mut results = Vec::new();
            for _ in 0..count {
                let result = match c.u8()? {
                    BATCH_STATUS_READ => Ok(Some(c.bytes32()?)),
                    BATCH_STATUS_WRITE => Ok(None),
                    BATCH_STATUS_ERROR => {
                        let code = c.u8()?;
                        let a = c.u64()?;
                        let b = c.u64()?;
                        let msg = c.str16()?;
                        Err(error_from_parts(code, a, b, msg)?)
                    }
                    other => return Err(decode_err(format!("unknown batch status {other}"))),
                };
                results.push(result);
            }
            Frame::BatchResp { id, results }
        }
        other => return Err(decode_err(format!("unknown frame tag {other}"))),
    };
    c.finish()?;
    Ok(frame)
}

/// Writes one frame to a stream (single `write_all`, then flush is the
/// caller's choice — `TcpStream` is unbuffered so no flush is needed).
///
/// # Errors
///
/// [`StoreError::Io`] when the peer is gone or the write fails.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(64);
    encode_frame(frame, &mut buf);
    w.write_all(&buf).map_err(|e| StoreError::Io(e.to_string()))
}

/// Reads one frame from a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed before
/// any byte of a next frame).
///
/// # Errors
///
/// [`StoreError::Io`] on mid-frame EOF or socket errors,
/// [`StoreError::Decode`] on an oversized length prefix or a malformed
/// payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, StoreError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first-byte read so a clean close between frames is
    // distinguishable from truncation inside one.
    let mut got = 0;
    while let Some(dst) = len_buf.get_mut(got..).filter(|d| !d.is_empty()) {
        match r.read(dst) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(StoreError::Io("connection closed mid-frame".into()));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(decode_err("zero-length frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(decode_err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Io("connection closed mid-frame".into())
        } else {
            StoreError::Io(e.to_string())
        }
    })?;
    decode_payload(&payload).map(Some)
}
